//! End-to-end integration tests spanning the whole pipeline: QGL parsing → symbolic
//! differentiation → e-graph simplification → expression compilation → tensor-network
//! lowering → TNVM execution → numerical instantiation, cross-checked against the
//! baseline engine — plus the compiler-pass pipeline contracts: the default
//! `Compiler` pipeline reproduces the legacy monolithic entry point byte for byte,
//! and the partitioned pipeline synthesizes a 4-qubit target the monolith cannot
//! practically reach.

use openqudit::network::{compile_network, TensorNetwork};
use openqudit::prelude::*;

fn params_for(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 2.0
        })
        .collect()
}

#[test]
fn qgl_definition_to_tnvm_round_trip() {
    // A gate defined here, from scratch, flows through the whole stack.
    let gate = UnitaryExpression::new(
        "Mix(alpha, beta) {
            [[cos(alpha)*cos(beta), ~sin(alpha), ~cos(alpha)*sin(beta), 0],
             [sin(alpha)*cos(beta), cos(alpha), ~sin(alpha)*sin(beta), 0],
             [sin(beta), 0, cos(beta), 0],
             [0, 0, 0, e^(i*(alpha+beta))]]
        }",
    )
    .unwrap();
    let mut circuit = QuditCircuit::qubits(3);
    let mix = circuit.cache_operation(gate).unwrap();
    let u3 = circuit.cache_operation(gates::u3()).unwrap();
    circuit.append_ref(u3, vec![2]).unwrap();
    circuit.append_ref(mix, vec![0, 1]).unwrap();
    circuit.append_ref(mix, vec![1, 2]).unwrap();

    let params = params_for(circuit.num_params(), 11);
    let code = compile_network(&TensorNetwork::from_circuit(&circuit));
    let cache = ExpressionCache::new();
    let mut vm: Tnvm<f64> = Tnvm::new(&code, DiffMode::Gradient, &cache);
    let result = vm.evaluate(&params);
    let reference = circuit.unitary::<f64>(&params).unwrap();
    assert!(result.unitary.max_elementwise_distance(&reference) < 1e-10);
    assert!(result.unitary.is_unitary(1e-10));

    // Gradient agrees with central finite differences of the reference evaluator.
    let h = 1e-6;
    for k in 0..circuit.num_params() {
        let mut plus = params.clone();
        let mut minus = params.clone();
        plus[k] += h;
        minus[k] -= h;
        let fd = circuit
            .unitary::<f64>(&plus)
            .unwrap()
            .sub(&circuit.unitary::<f64>(&minus).unwrap())
            .unwrap()
            .scale(C64::from_real(1.0 / (2.0 * h)));
        assert!(result.gradient[k].max_elementwise_distance(&fd) < 1e-5, "param {k}");
    }
}

#[test]
fn tnvm_and_baseline_agree_on_all_fig5_workloads() {
    use openqudit::circuit::builders;
    let workloads = vec![
        builders::pqc_qubit_ladder(2, 1).unwrap(),
        builders::pqc_qubit_ladder(3, 3).unwrap(),
        builders::pqc_qutrit_ladder(2, 1).unwrap(),
    ];
    let cache = ExpressionCache::new();
    for (i, circuit) in workloads.into_iter().enumerate() {
        let params = params_for(circuit.num_params(), 100 + i as u64);
        let mut tnvm_eval = TnvmEvaluator::new(&circuit, &cache);
        let mut base_eval = BaselineEvaluator::from_qudit_circuit(&circuit).unwrap();
        let (tu, tg) = tnvm_eval.evaluate(&params);
        let (bu, bg) = base_eval.evaluate(&params);
        assert!(tu.max_elementwise_distance(&bu) < 1e-9, "workload {i} unitary");
        for (a, b) in tg.iter().zip(bg.iter()) {
            assert!(a.max_elementwise_distance(b) < 1e-9, "workload {i} gradient");
        }
    }
}

#[test]
fn instantiation_agrees_between_backends() {
    use openqudit::circuit::builders;
    let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
    let target = reachable_target(&circuit, 77);
    let config = InstantiateConfig { starts: 4, seed: 5, ..Default::default() };
    let cache = ExpressionCache::new();
    let oq = instantiate_circuit(&circuit, &target, &config, &cache);
    let mut baseline = BaselineEvaluator::from_qudit_circuit(&circuit).unwrap();
    let bl = instantiate(&mut baseline, &target, &config);
    assert!(oq.infidelity < 1e-6, "openqudit infidelity {}", oq.infidelity);
    assert!(bl.infidelity < 1e-6, "baseline infidelity {}", bl.infidelity);
}

#[test]
fn expression_cache_amortizes_across_circuits() {
    use openqudit::circuit::builders;
    let cache = ExpressionCache::new();
    let a = builders::pqc_qubit_ladder(3, 2).unwrap();
    let b = builders::pqc_qubit_ladder(3, 6).unwrap();
    let _ = TnvmEvaluator::new(&a, &cache);
    let misses = cache.stats().misses;
    // The deeper circuit uses the same gate set, so no new compilations are needed.
    let _ = TnvmEvaluator::new(&b, &cache);
    assert_eq!(cache.stats().misses, misses);
}

#[test]
fn qft_on_tnvm_matches_closed_form() {
    use openqudit::circuit::builders;
    let circuit = builders::qft(3).unwrap();
    let code = compile_network(&TensorNetwork::from_circuit(&circuit));
    let cache = ExpressionCache::new();
    let mut vm: Tnvm<f64> = Tnvm::new(&code, DiffMode::None, &cache);
    let u = vm.evaluate_unitary(&[]);
    let dim = 8usize;
    let omega = 2.0 * std::f64::consts::PI / dim as f64;
    for j in 0..dim {
        for k in 0..dim {
            let expect = C64::cis(omega * (j * k) as f64).scale(1.0 / (dim as f64).sqrt());
            assert!(u.get(j, k).dist(expect) < 1e-10);
        }
    }
}

#[test]
fn default_pipeline_is_byte_identical_to_the_legacy_entry_point() {
    // The api_redesign acceptance pin: at the same seed, `Compiler::default_pipeline`
    // (synthesis → refine → fold) must reproduce the deprecated
    // `synthesize_with_cache` wrapper byte for byte — blocks, parameters, infidelity,
    // node counts, and the refinement/fold metrics. A multi-edge 3-qubit target
    // exercises the racy frontier path.
    use openqudit::circuit::builders;
    let template = builders::pqc_template(&[2, 2, 2], &[(0, 1), (1, 2)]).unwrap();
    let target = reachable_target(&template, 404);
    let mut config = SynthesisConfig::qubits(3);
    config.max_blocks = 3;

    #[allow(deprecated)]
    let legacy = synthesize_with_cache(&target, &config, &ExpressionCache::new()).unwrap();
    let report = Compiler::with_cache(ExpressionCache::new())
        .default_passes()
        .compile(CompilationTask::new(target.clone(), config.clone()))
        .unwrap();
    let piped = &report.result;

    assert_eq!(legacy.blocks, piped.blocks, "block sequences diverged");
    assert_eq!(legacy.nodes_expanded, piped.nodes_expanded);
    assert_eq!(legacy.blocks_deleted, piped.blocks_deleted);
    assert_eq!(legacy.params_folded, piped.params_folded);
    assert_eq!(legacy.gates_constified, piped.gates_constified);
    let legacy_bits: Vec<u64> = legacy.params.iter().map(|p| p.to_bits()).collect();
    let piped_bits: Vec<u64> = piped.params.iter().map(|p| p.to_bits()).collect();
    assert_eq!(legacy_bits, piped_bits, "parameters diverged");
    assert_eq!(legacy.infidelity.to_bits(), piped.infidelity.to_bits());
    assert_eq!(
        legacy.refined_infidelity.map(f64::to_bits),
        piped.refined_infidelity.map(f64::to_bits)
    );
    assert_eq!(legacy.circuit.num_ops(), piped.circuit.num_ops());
    assert_eq!(legacy.circuit.num_params(), piped.circuit.num_params());
    // The report carries per-pass structure the monolith never exposed.
    let passes: Vec<&str> = report.timings.iter().map(|t| t.pass.as_str()).collect();
    assert_eq!(passes, vec!["synthesis", "refine", "fold"]);
    assert!(report.data.get_usize("synthesis.nodes_expanded").is_some());
}

#[test]
fn partitioned_pipeline_synthesizes_a_four_qubit_target() {
    // The workload the monolithic search cannot practically reach: a 4-qubit unitary
    // entangling across the [0,1]|[2,3] cut (its template carries a block on the cut
    // edge (1, 2)). The target is reachable by a one-round partitioned template, so
    // the sketch phase must drive the infidelity below the threshold and the
    // stitched result must hold it under 1e-6 end to end. (The CI benchmark report
    // runs a deeper two-round partitioned workload in release mode.)
    use openqudit::circuit::builders;
    let round = [(0, 1), (2, 3), (1, 2)];
    let template = builders::pqc_template(&[2, 2, 2, 2], &round).unwrap();
    let target = reachable_target(&template, 71);

    let mut config = SynthesisConfig::qubits(4);
    config.instantiate.starts = 8;
    let compiler = Compiler::with_cache(ExpressionCache::new()).partitioned_passes();
    let report = compiler.compile(CompilationTask::new(target.clone(), config)).unwrap();
    let result = &report.result;
    assert!(result.success, "partitioned compile failed: infidelity {}", result.infidelity);
    assert!(result.infidelity < 1e-6, "infidelity {}", result.infidelity);
    assert_eq!(result.circuit.radices(), &[2, 2, 2, 2]);
    // The partition pass did the work; the search pass must have skipped.
    assert_eq!(report.data.get_bool("synthesis.skipped"), Some(true));
    assert_eq!(report.data.get_usize("partition.groups"), Some(2));
    assert_eq!(report.data.get_usize("partition.cut_edges"), Some(1));
    assert!(report.data.get_usize("partition.rounds").unwrap() >= 1);
    // Every block stays on a coupling edge of the 4-qubit line.
    for &(a, b) in &result.blocks {
        assert!(b == a + 1, "block ({a},{b}) is not a line edge");
    }
    // Cross-check on the independent full-width matrix accumulator.
    let unitary = result.circuit.unitary::<f64>(&result.params).unwrap();
    assert!(
        hs_infidelity(&target, &unitary) < 1e-6,
        "reference evaluation disagrees with the partitioned result"
    );
}

#[test]
fn partitioned_pipeline_passes_narrow_targets_through_unchanged() {
    // On a ≤3-qudit task the partition pass must skip and the tail of the pipeline
    // must produce exactly what the default pipeline produces.
    let target = openqudit::circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
    let config = SynthesisConfig::qubits(2);
    let partitioned = Compiler::with_cache(ExpressionCache::new())
        .partitioned_passes()
        .compile(CompilationTask::new(target.clone(), config.clone()))
        .unwrap();
    let standard = Compiler::with_cache(ExpressionCache::new())
        .default_passes()
        .compile(CompilationTask::new(target, config))
        .unwrap();
    assert_eq!(partitioned.data.get_bool("partition.skipped_narrow"), Some(true));
    assert_eq!(partitioned.result.blocks, standard.result.blocks);
    assert_eq!(partitioned.result.infidelity.to_bits(), standard.result.infidelity.to_bits());
    let a: Vec<u64> = partitioned.result.params.iter().map(|p| p.to_bits()).collect();
    let b: Vec<u64> = standard.result.params.iter().map(|p| p.to_bits()).collect();
    assert_eq!(a, b);
}

#[test]
fn mixed_radix_circuit_end_to_end() {
    // A qubit–qutrit system exercising mixed radices through the whole stack.
    let mut circuit = QuditCircuit::pure(vec![2, 3]);
    let rx = circuit.cache_operation(gates::rx()).unwrap();
    let p3 = circuit.cache_operation(gates::qutrit_phase()).unwrap();
    let ctrl = {
        // A custom qubit-controlled qutrit phase defined via the symbolic control transform.
        let controlled = openqudit::qgl::transform::control(&gates::qutrit_phase(), 2);
        circuit.cache_operation(controlled).unwrap()
    };
    circuit.append_ref(rx, vec![0]).unwrap();
    circuit.append_ref(p3, vec![1]).unwrap();
    circuit.append_ref(ctrl, vec![0, 1]).unwrap();
    let params = params_for(circuit.num_params(), 55);
    let code = compile_network(&TensorNetwork::from_circuit(&circuit));
    let cache = ExpressionCache::new();
    let mut vm: Tnvm<f64> = Tnvm::new(&code, DiffMode::Gradient, &cache);
    let result = vm.evaluate(&params);
    let reference = circuit.unitary::<f64>(&params).unwrap();
    assert_eq!(result.unitary.rows(), 6);
    assert!(result.unitary.max_elementwise_distance(&reference) < 1e-10);
}
