//! End-to-end integration tests spanning the whole pipeline: QGL parsing → symbolic
//! differentiation → e-graph simplification → expression compilation → tensor-network
//! lowering → TNVM execution → numerical instantiation, cross-checked against the
//! baseline engine.

use openqudit::network::{compile_network, TensorNetwork};
use openqudit::prelude::*;

fn params_for(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 2.0
        })
        .collect()
}

#[test]
fn qgl_definition_to_tnvm_round_trip() {
    // A gate defined here, from scratch, flows through the whole stack.
    let gate = UnitaryExpression::new(
        "Mix(alpha, beta) {
            [[cos(alpha)*cos(beta), ~sin(alpha), ~cos(alpha)*sin(beta), 0],
             [sin(alpha)*cos(beta), cos(alpha), ~sin(alpha)*sin(beta), 0],
             [sin(beta), 0, cos(beta), 0],
             [0, 0, 0, e^(i*(alpha+beta))]]
        }",
    )
    .unwrap();
    let mut circuit = QuditCircuit::qubits(3);
    let mix = circuit.cache_operation(gate).unwrap();
    let u3 = circuit.cache_operation(gates::u3()).unwrap();
    circuit.append_ref(u3, vec![2]).unwrap();
    circuit.append_ref(mix, vec![0, 1]).unwrap();
    circuit.append_ref(mix, vec![1, 2]).unwrap();

    let params = params_for(circuit.num_params(), 11);
    let code = compile_network(&TensorNetwork::from_circuit(&circuit));
    let cache = ExpressionCache::new();
    let mut vm: Tnvm<f64> = Tnvm::new(&code, DiffMode::Gradient, &cache);
    let result = vm.evaluate(&params);
    let reference = circuit.unitary::<f64>(&params).unwrap();
    assert!(result.unitary.max_elementwise_distance(&reference) < 1e-10);
    assert!(result.unitary.is_unitary(1e-10));

    // Gradient agrees with central finite differences of the reference evaluator.
    let h = 1e-6;
    for k in 0..circuit.num_params() {
        let mut plus = params.clone();
        let mut minus = params.clone();
        plus[k] += h;
        minus[k] -= h;
        let fd = circuit
            .unitary::<f64>(&plus)
            .unwrap()
            .sub(&circuit.unitary::<f64>(&minus).unwrap())
            .unwrap()
            .scale(C64::from_real(1.0 / (2.0 * h)));
        assert!(result.gradient[k].max_elementwise_distance(&fd) < 1e-5, "param {k}");
    }
}

#[test]
fn tnvm_and_baseline_agree_on_all_fig5_workloads() {
    use openqudit::circuit::builders;
    let workloads = vec![
        builders::pqc_qubit_ladder(2, 1).unwrap(),
        builders::pqc_qubit_ladder(3, 3).unwrap(),
        builders::pqc_qutrit_ladder(2, 1).unwrap(),
    ];
    let cache = ExpressionCache::new();
    for (i, circuit) in workloads.into_iter().enumerate() {
        let params = params_for(circuit.num_params(), 100 + i as u64);
        let mut tnvm_eval = TnvmEvaluator::new(&circuit, &cache);
        let mut base_eval = BaselineEvaluator::from_qudit_circuit(&circuit).unwrap();
        let (tu, tg) = tnvm_eval.evaluate(&params);
        let (bu, bg) = base_eval.evaluate(&params);
        assert!(tu.max_elementwise_distance(&bu) < 1e-9, "workload {i} unitary");
        for (a, b) in tg.iter().zip(bg.iter()) {
            assert!(a.max_elementwise_distance(b) < 1e-9, "workload {i} gradient");
        }
    }
}

#[test]
fn instantiation_agrees_between_backends() {
    use openqudit::circuit::builders;
    let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
    let target = reachable_target(&circuit, 77);
    let config = InstantiateConfig { starts: 4, seed: 5, ..Default::default() };
    let cache = ExpressionCache::new();
    let oq = instantiate_circuit(&circuit, &target, &config, &cache);
    let mut baseline = BaselineEvaluator::from_qudit_circuit(&circuit).unwrap();
    let bl = instantiate(&mut baseline, &target, &config);
    assert!(oq.infidelity < 1e-6, "openqudit infidelity {}", oq.infidelity);
    assert!(bl.infidelity < 1e-6, "baseline infidelity {}", bl.infidelity);
}

#[test]
fn expression_cache_amortizes_across_circuits() {
    use openqudit::circuit::builders;
    let cache = ExpressionCache::new();
    let a = builders::pqc_qubit_ladder(3, 2).unwrap();
    let b = builders::pqc_qubit_ladder(3, 6).unwrap();
    let _ = TnvmEvaluator::new(&a, &cache);
    let misses = cache.stats().misses;
    // The deeper circuit uses the same gate set, so no new compilations are needed.
    let _ = TnvmEvaluator::new(&b, &cache);
    assert_eq!(cache.stats().misses, misses);
}

#[test]
fn qft_on_tnvm_matches_closed_form() {
    use openqudit::circuit::builders;
    let circuit = builders::qft(3).unwrap();
    let code = compile_network(&TensorNetwork::from_circuit(&circuit));
    let cache = ExpressionCache::new();
    let mut vm: Tnvm<f64> = Tnvm::new(&code, DiffMode::None, &cache);
    let u = vm.evaluate_unitary(&[]);
    let dim = 8usize;
    let omega = 2.0 * std::f64::consts::PI / dim as f64;
    for j in 0..dim {
        for k in 0..dim {
            let expect = C64::cis(omega * (j * k) as f64).scale(1.0 / (dim as f64).sqrt());
            assert!(u.get(j, k).dist(expect) < 1e-10);
        }
    }
}

#[test]
fn mixed_radix_circuit_end_to_end() {
    // A qubit–qutrit system exercising mixed radices through the whole stack.
    let mut circuit = QuditCircuit::pure(vec![2, 3]);
    let rx = circuit.cache_operation(gates::rx()).unwrap();
    let p3 = circuit.cache_operation(gates::qutrit_phase()).unwrap();
    let ctrl = {
        // A custom qubit-controlled qutrit phase defined via the symbolic control transform.
        let controlled = openqudit::qgl::transform::control(&gates::qutrit_phase(), 2);
        circuit.cache_operation(controlled).unwrap()
    };
    circuit.append_ref(rx, vec![0]).unwrap();
    circuit.append_ref(p3, vec![1]).unwrap();
    circuit.append_ref(ctrl, vec![0, 1]).unwrap();
    let params = params_for(circuit.num_params(), 55);
    let code = compile_network(&TensorNetwork::from_circuit(&circuit));
    let cache = ExpressionCache::new();
    let mut vm: Tnvm<f64> = Tnvm::new(&code, DiffMode::Gradient, &cache);
    let result = vm.evaluate(&params);
    let reference = circuit.unitary::<f64>(&params).unwrap();
    assert_eq!(result.unitary.rows(), 6);
    assert!(result.unitary.max_elementwise_distance(&reference) < 1e-10);
}
