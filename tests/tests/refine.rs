//! End-to-end tests for the post-synthesis refinement pass: deleting redundant
//! entangling blocks from a deliberately over-deep template must preserve the
//! solution, and an already-minimal result must come back structurally untouched.

use openqudit::circuit::builders;
use openqudit::prelude::*;
use openqudit_integration_tests::compile_default;

/// Instantiates a pqc template against `target` and wraps it as a synthesis result,
/// the shape `refine` consumes.
fn instantiated_result(
    radices: &[usize],
    blocks: &[(usize, usize)],
    target: &Matrix<f64>,
    cache: &ExpressionCache,
    seed: u64,
) -> SynthesisResult {
    let circuit = builders::pqc_template(radices, blocks).unwrap();
    let outcome = instantiate_circuit(
        &circuit,
        target,
        &InstantiateConfig { starts: 8, seed, ..Default::default() },
        cache,
    );
    assert!(outcome.success, "template instantiation failed: {}", outcome.infidelity);
    SynthesisResult {
        blocks: blocks.to_vec(),
        params: outcome.params,
        infidelity: outcome.infidelity,
        success: true,
        nodes_expanded: 0,
        blocks_deleted: 0,
        refined_infidelity: None,
        params_folded: 0,
        gates_constified: 0,
        circuit,
    }
}

#[test]
fn refine_shrinks_an_over_deep_two_qubit_template() {
    // The target is reachable at one entangling block; the result carries three.
    // Refinement must delete at least one block (it typically removes both padded
    // ones) while the final infidelity stays below the success threshold.
    let cache = ExpressionCache::new();
    let lean = builders::pqc_template(&[2, 2], &[(0, 1)]).unwrap();
    let target = reachable_target(&lean, 2026);
    let padded = instantiated_result(&[2, 2], &[(0, 1), (0, 1), (0, 1)], &target, &cache, 9);

    let refined = refine(&padded, &target, &RefineConfig::default(), &cache).unwrap();
    assert!(refined.blocks_deleted >= 1, "refine deleted nothing from the padded template");
    assert!(refined.infidelity < 1e-8, "refined infidelity {}", refined.infidelity);
    assert_eq!(refined.blocks.len() + refined.blocks_deleted, 3);
    assert_eq!(refined.params.len(), refined.circuit.num_params());
    assert_eq!(refined.refined_infidelity, Some(refined.infidelity));
    assert!(refined.success);

    // Cross-check the refined circuit on the independent baseline engine.
    let mut evaluator = BaselineEvaluator::from_qudit_circuit(&refined.circuit).unwrap();
    let (unitary, _) = evaluator.evaluate(&refined.params);
    assert!(
        hs_infidelity(&target, &unitary) < 1e-7,
        "baseline cross-check disagrees with the refined TNVM result"
    );
}

#[test]
fn refine_shrinks_an_over_deep_mixed_radix_template() {
    // A qubit–qutrit target reachable at one (2, 3) block, instantiated on a padded
    // two-block template: the padded block collapses to near-identity, refinement
    // must delete it, and the warm-start re-instantiation of the shrunken template
    // must stay under the success threshold.
    let cache = ExpressionCache::new();
    let lean = builders::pqc_template(&[2, 3], &[(0, 1)]).unwrap();
    let target = reachable_target(&lean, 2033);
    let padded = instantiated_result(&[2, 3], &[(0, 1), (0, 1)], &target, &cache, 11);

    let refined = refine(&padded, &target, &RefineConfig::default(), &cache).unwrap();
    assert!(refined.blocks_deleted >= 1, "refine deleted no mixed-radix block");
    assert_eq!(refined.blocks.len() + refined.blocks_deleted, 2);
    assert!(refined.infidelity < 1e-8, "refined infidelity {}", refined.infidelity);
    assert!(refined.success);
    assert_eq!(refined.params.len(), refined.circuit.num_params());
    assert_eq!(refined.circuit.radices(), &[2, 3]);

    // Cross-check on the independent full-width accumulator (the baseline engine has
    // no CSHIFT23 implementation).
    let unitary = refined.circuit.unitary::<f64>(&refined.params).unwrap();
    assert!(
        hs_infidelity(&target, &unitary) < 1e-7,
        "reference evaluation disagrees with the refined TNVM result"
    );
}

#[test]
fn refine_scores_reversed_mixed_blocks_with_op_order_dimensions() {
    // On [3, 2] the (2, 3)-registered entangler is applied with reversed wires; the
    // Schmidt scoring must follow the op's wire order (a 2×3 cut, not 3×2 — swapped
    // dimensions realign the wrong matrix and mis-rank the deletion candidates). The
    // padded block must be detected and deleted.
    let cache = ExpressionCache::new();
    let lean = builders::pqc_template(&[3, 2], &[(0, 1)]).unwrap();
    let target = reachable_target(&lean, 909);
    let padded = instantiated_result(&[3, 2], &[(0, 1), (0, 1)], &target, &cache, 13);

    let refined = refine(&padded, &target, &RefineConfig::default(), &cache).unwrap();
    assert!(refined.blocks_deleted >= 1, "refine deleted no reversed mixed-radix block");
    assert!(refined.infidelity < 1e-8, "refined infidelity {}", refined.infidelity);
}

#[test]
fn refine_never_touches_a_minimal_cnot_result() {
    let cache = ExpressionCache::new();
    let target = openqudit::circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
    let minimal = instantiated_result(&[2, 2], &[(0, 1)], &target, &cache, 4);

    let refined = refine(&minimal, &target, &RefineConfig::default(), &cache).unwrap();
    assert_eq!(refined.blocks_deleted, 0, "a CNOT cannot be synthesized without its block");
    assert_eq!(refined.blocks, minimal.blocks);
    assert_eq!(refined.circuit.num_ops(), minimal.circuit.num_ops());
    assert_eq!(refined.circuit.num_params(), minimal.circuit.num_params());
    assert!(refined.infidelity < 1e-8);
}

#[test]
fn pipeline_runs_refine_automatically() {
    // With `SynthesisConfig::refine` (the default), the search result reports the
    // refinement fields; disabling it leaves `refined_infidelity` unset. Same seed,
    // so the two runs explore identical search trees.
    let template = builders::pqc_template(&[2, 2], &[(0, 1)]).unwrap();
    let target = reachable_target(&template, 31);
    let mut config = SynthesisConfig::qubits(2);
    config.max_blocks = 2;

    let refined = compile_default(&target, &config).unwrap();
    assert!(refined.success);
    assert!(refined.refined_infidelity.is_some());
    assert!(refined.infidelity < 1e-8);

    config.refine = false;
    let unrefined = compile_default(&target, &config).unwrap();
    assert!(unrefined.success);
    assert!(unrefined.refined_infidelity.is_none());
    assert_eq!(unrefined.blocks_deleted, 0);
    // Refinement never leaves the result deeper than the raw search found it.
    assert!(refined.blocks.len() <= unrefined.blocks.len());
}

#[test]
fn pipeline_reports_measured_unitarity_deviation() {
    // A slightly-off target is rejected with the measured deviation in the message;
    // widening `unitary_tolerance` accepts the same matrix.
    let target = openqudit::circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
    let off = target.scale(C64::from_real(1.0 + 3e-7));
    let config = SynthesisConfig::qubits(2);
    let err = compile_default(&off, &config).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("not unitary"), "unexpected message: {message}");
    assert!(message.contains("e-"), "message lacks the measured deviation: {message}");

    let mut relaxed = config.clone();
    relaxed.unitary_tolerance = 1e-5;
    let result = compile_default(&off, &relaxed).unwrap();
    assert!(result.success, "infidelity {}", result.infidelity);
}
