//! Gate-set conformance suite: the contract any [`GateSet`] — default or
//! user-registered — must satisfy to plug into the synthesis pipeline.
//!
//! * every template built from a registry evaluates to a unitary at arbitrary
//!   parameters (pure qubit, pure qutrit, and mixed qubit–qutrit systems),
//! * a mixed-radix `[2, 3]` target synthesizes end to end through the registry's
//!   embedded controlled-shift entangler,
//! * custom registrations round-trip: the gates a user registers are exactly the
//!   gates the synthesized circuit is made of,
//! * synthesis with a custom registry is deterministic (same seed → byte-identical
//!   results),
//! * registry validation rejects malformed gates (wrong arity, non-unitary), covered
//!   by proptest over scaled matrices.

use openqudit::circuit::{builders, gates};
use openqudit::prelude::*;
use openqudit_integration_tests::compile_default;
use proptest::prelude::*;

/// A deterministic pseudo-random parameter vector (golden-ratio low-discrepancy
/// stream over (−π, π)).
fn param_vector(count: usize, salt: u64) -> Vec<f64> {
    (0..count)
        .map(|k| {
            let step = (salt as usize * count + k + 1) as f64;
            let frac = (step * 0.6180339887498949) % 1.0;
            std::f64::consts::PI * (2.0 * frac - 1.0)
        })
        .collect()
}

#[test]
fn default_registry_templates_are_unitary_across_radix_mixes() {
    // Conformance: a two-block template over every supported radix mix must be
    // numerically unitary at arbitrary parameter points.
    for radices in [vec![2, 2], vec![3, 3], vec![2, 3], vec![3, 2], vec![2, 3, 2]] {
        let set = GateSet::default_for(&radices);
        let edges: Vec<(usize, usize)> = (0..radices.len() - 1).map(|q| (q, q + 1)).collect();
        let circuit = builders::pqc_template_with(&radices, &edges, &set).unwrap();
        for salt in 0..4u64 {
            let params = param_vector(circuit.num_params(), salt);
            let unitary = circuit.unitary::<f64>(&params).unwrap();
            assert!(
                unitary.unitary_deviation() < 1e-10,
                "template over {radices:?} is not unitary at salt {salt}"
            );
        }
    }
}

#[test]
fn mixed_radix_embedded_csum_synthesizes_end_to_end() {
    // The acceptance target: an embedded-CSUM (controlled-shift) unitary on a
    // qubit–qutrit pair with linear coupling must synthesize below 1e-8 infidelity
    // through the default registry's (2, 3) entangler.
    let target = gates::cshift23().to_matrix::<f64>(&[]).unwrap();
    let config = SynthesisConfig::with_radices(vec![2, 3]);
    let result = compile_default(&target, &config).unwrap();
    assert!(result.success, "mixed-radix search failed: infidelity {}", result.infidelity);
    assert!(result.infidelity < 1e-8);
    assert_eq!(result.circuit.radices(), &[2, 3]);
    assert_eq!(result.blocks, vec![(0, 1)], "one controlled-shift block suffices");

    // Cross-check on the independent full-width matrix accumulator (the baseline
    // engine has no CSHIFT23 implementation, so the reference evaluator stands in).
    let unitary = result.circuit.unitary::<f64>(&result.params).unwrap();
    assert!(
        hs_infidelity(&target, &unitary) < 1e-7,
        "reference evaluation disagrees with the TNVM result"
    );
}

#[test]
fn reversed_mixed_radices_synthesize_too() {
    // [3, 2] exercises the orientation path: the (2, 3)-registered entangler is
    // applied with its wires reversed so its expression radices match the wires.
    let template = builders::pqc_template(&[3, 2], &[(0, 1)]).unwrap();
    let target = reachable_target(&template, 61);
    let mut config = SynthesisConfig::with_radices(vec![3, 2]);
    config.max_blocks = 2;
    let result = compile_default(&target, &config).unwrap();
    assert!(result.success, "reversed mixed search failed: infidelity {}", result.infidelity);
    assert_eq!(result.circuit.radices(), &[3, 2]);
    let entangler_ops: Vec<&str> = result
        .circuit
        .ops()
        .iter()
        .filter(|op| op.location.len() == 2)
        .map(|op| result.circuit.expression(op.expr).unwrap().name())
        .collect();
    assert!(entangler_ops.iter().all(|&name| name == "CSHIFT23"), "{entangler_ops:?}");
}

#[test]
fn custom_gate_registration_round_trips_through_synthesis() {
    // Register a custom qubit gate set — RZZ entangler, U3 locals — and check the
    // synthesized circuit is built from exactly those gates.
    let mut set = GateSet::new();
    set.register_local(gates::u3()).unwrap();
    set.register_entangler(gates::rzz()).unwrap();
    assert_eq!(set.local(2).unwrap().name(), "U3");
    assert_eq!(set.entangler(2, 2).unwrap().name(), "RZZ");

    // CZ = RZZ(π) up to local phases, so it is reachable with one RZZ block.
    let target = gates::cz().to_matrix::<f64>(&[]).unwrap();
    let mut config = SynthesisConfig::qubits(2);
    config.gate_set = set;
    let result = compile_default(&target, &config).unwrap();
    assert!(result.success, "custom-set search failed: infidelity {}", result.infidelity);
    assert!(result.infidelity < 1e-8);
    let names: std::collections::BTreeSet<&str> =
        result.circuit.expressions().iter().map(|e| e.name()).collect();
    assert!(
        names.iter().all(|&n| n == "U3" || n == "RZZ"),
        "synthesized circuit used gates outside the registry: {names:?}"
    );
}

#[test]
fn same_seed_custom_gate_set_runs_are_byte_identical() {
    // The determinism guarantee must survive a user-supplied registry.
    let mut set = GateSet::new();
    set.register_local(gates::u3()).unwrap();
    set.register_entangler(gates::rzz()).unwrap();
    let template = builders::pqc_template(&[2, 2], &[(0, 1)]).unwrap();
    let target = reachable_target(&template, 88);
    let mut config = SynthesisConfig::qubits(2);
    config.gate_set = set;
    config.max_blocks = 3;

    let first = compile_default(&target, &config).unwrap();
    let second = compile_default(&target, &config).unwrap();
    assert_eq!(first.blocks, second.blocks);
    assert_eq!(first.blocks_deleted, second.blocks_deleted);
    let first_bits: Vec<u64> = first.params.iter().map(|p| p.to_bits()).collect();
    let second_bits: Vec<u64> = second.params.iter().map(|p| p.to_bits()).collect();
    assert_eq!(first_bits, second_bits, "parameters diverged between identical runs");
    assert_eq!(first.infidelity.to_bits(), second.infidelity.to_bits());
    assert_eq!(first.nodes_expanded, second.nodes_expanded);
}

#[test]
fn refine_recovers_a_custom_registry_from_the_result_circuit() {
    // A result synthesized over a custom registry must refine with a *default*
    // `RefineConfig` (no gate_set supplied): the pass derives the registry from the
    // circuit's own expressions instead of assuming the built-in gates — a CNOT-based
    // fallback would mis-shape the rebuild check against this RZZ template.
    let cache = ExpressionCache::new();
    let mut set = GateSet::new();
    set.register_local(gates::u3()).unwrap();
    set.register_entangler(gates::rzz()).unwrap();
    let lean = builders::pqc_template_with(&[2, 2], &[(0, 1)], &set).unwrap();
    let target = reachable_target(&lean, 42);
    let padded = builders::pqc_template_with(&[2, 2], &[(0, 1), (0, 1)], &set).unwrap();
    let outcome = instantiate_circuit(
        &padded,
        &target,
        &InstantiateConfig { starts: 8, seed: 5, ..Default::default() },
        &cache,
    );
    assert!(outcome.success, "padded custom template failed: {}", outcome.infidelity);
    let result = SynthesisResult {
        blocks: vec![(0, 1), (0, 1)],
        params: outcome.params,
        infidelity: outcome.infidelity,
        success: true,
        nodes_expanded: 0,
        blocks_deleted: 0,
        refined_infidelity: None,
        params_folded: 0,
        gates_constified: 0,
        circuit: padded,
    };

    let refined = refine(&result, &target, &RefineConfig::default(), &cache).unwrap();
    assert!(refined.blocks_deleted >= 1, "padded RZZ block was not deleted");
    assert!(refined.infidelity < 1e-8, "refined infidelity {}", refined.infidelity);
    let names: std::collections::BTreeSet<&str> =
        refined.circuit.expressions().iter().map(|e| e.name()).collect();
    assert!(
        names.iter().all(|&n| n == "U3" || n == "RZZ"),
        "refined circuit left the registry: {names:?}"
    );
}

#[test]
fn explicit_default_registry_matches_the_implicit_one_byte_for_byte() {
    // `GateSet::default_for` must reproduce the built-in behavior exactly: a config
    // whose registry is set explicitly returns bit-identical results to the stock
    // constructor, on pure-qubit and pure-qutrit systems.
    for radices in [vec![2, 2], vec![3, 3]] {
        let template = builders::pqc_template(&radices, &[(0, 1)]).unwrap();
        let target = reachable_target(&template, 19);
        let implicit_cfg = SynthesisConfig::with_radices(radices.clone());
        let mut explicit_cfg = SynthesisConfig::with_radices(radices.clone());
        explicit_cfg.gate_set = GateSet::default_for(&radices);

        let implicit = compile_default(&target, &implicit_cfg).unwrap();
        let explicit = compile_default(&target, &explicit_cfg).unwrap();
        assert!(implicit.success, "radices {radices:?}: {}", implicit.infidelity);
        assert_eq!(implicit.blocks, explicit.blocks, "radices {radices:?}");
        let implicit_bits: Vec<u64> = implicit.params.iter().map(|p| p.to_bits()).collect();
        let explicit_bits: Vec<u64> = explicit.params.iter().map(|p| p.to_bits()).collect();
        assert_eq!(implicit_bits, explicit_bits, "radices {radices:?}");
        assert_eq!(implicit.infidelity.to_bits(), explicit.infidelity.to_bits());
    }
}

#[test]
fn registry_misses_surface_as_structured_errors() {
    // A registry with locals but no entangler for the edge pair names the lookup key.
    let mut locals_only = GateSet::new();
    locals_only.register_local(gates::u3()).unwrap();
    locals_only.register_local(gates::qutrit_u()).unwrap();
    let mut config = SynthesisConfig::with_radices(vec![2, 3]);
    config.gate_set = locals_only;
    let target = gates::cshift23().to_matrix::<f64>(&[]).unwrap();
    match compile_default(&target, &config) {
        Err(CompileError::Synthesis(SynthesisError::InvalidCoupling(detail))) => {
            assert!(detail.contains("radix pair (2, 3)"), "{detail}");
        }
        other => panic!("expected InvalidCoupling, got {other:?}"),
    }

    // An empty registry fails on the first radix lookup.
    let mut empty_cfg = SynthesisConfig::qubits(2);
    empty_cfg.gate_set = GateSet::new();
    let cnot = gates::cnot().to_matrix::<f64>(&[]).unwrap();
    assert!(matches!(
        compile_default(&cnot, &empty_cfg),
        Err(CompileError::Synthesis(SynthesisError::UnsupportedRadix(2)))
    ));
}

#[test]
fn ququart_registry_synthesizes_end_to_end_with_no_engine_changes() {
    // The ROADMAP claim made concrete: registering radix-4 building blocks —
    // `QuquartU` locals and the mod-4 `CSUM4` entangler — is the only change ququarts
    // need; search, instantiation, refinement, and folding run unchanged.
    let set = GateSet::default_for(&[4, 4]);
    assert_eq!(set.local(4).unwrap().name(), "QuquartU");
    assert_eq!(set.entangler(4, 4).unwrap().name(), "CSUM4");

    let target = gates::csum4().to_matrix::<f64>(&[]).unwrap();
    let mut config = SynthesisConfig::with_radices(vec![4, 4]);
    config.max_blocks = 1;
    config.max_nodes = 4;
    let result = compile_default(&target, &config).unwrap();
    assert!(result.success, "ququart search failed: infidelity {}", result.infidelity);
    assert!(result.infidelity < 1e-8);
    assert_eq!(result.circuit.radices(), &[4, 4]);
    assert_eq!(result.blocks, vec![(0, 1)], "one CSUM4 block suffices");

    // Cross-check on the independent full-width matrix accumulator.
    let unitary = result.circuit.unitary::<f64>(&result.params).unwrap();
    assert!(
        hs_infidelity(&target, &unitary) < 1e-7,
        "reference evaluation disagrees with the TNVM result"
    );
}

#[test]
fn qubit_ququart_entangler_synthesizes_end_to_end() {
    // The (2, 4) embedded controlled-shift: its own unitary must synthesize in one
    // block through the default registry, exactly like cshift23 does for (2, 3).
    let target = gates::cshift24().to_matrix::<f64>(&[]).unwrap();
    let mut config = SynthesisConfig::with_radices(vec![2, 4]);
    config.max_blocks = 1;
    config.max_nodes = 4;
    assert_eq!(config.gate_set.entangler(2, 4).unwrap().name(), "CSHIFT24");
    let result = compile_default(&target, &config).unwrap();
    assert!(result.success, "(2,4) search failed: infidelity {}", result.infidelity);
    assert!(result.infidelity < 1e-8);
    assert_eq!(result.circuit.radices(), &[2, 4]);
    assert_eq!(result.blocks, vec![(0, 1)], "one CSHIFT24 block suffices");

    // Cross-check on the independent full-width matrix accumulator.
    let unitary = result.circuit.unitary::<f64>(&result.params).unwrap();
    assert!(
        hs_infidelity(&target, &unitary) < 1e-7,
        "reference evaluation disagrees with the TNVM result"
    );
}

#[test]
fn qutrit_ququart_entangler_synthesizes_end_to_end() {
    // The (3, 4) embedded controlled-shift closes the last built-in mixed-radix gap:
    // every pair over radices {2, 3, 4} now has a registered entangler.
    let target = gates::cshift34().to_matrix::<f64>(&[]).unwrap();
    let mut config = SynthesisConfig::with_radices(vec![3, 4]);
    config.max_blocks = 1;
    config.max_nodes = 4;
    assert_eq!(config.gate_set.entangler(3, 4).unwrap().name(), "CSHIFT34");
    let result = compile_default(&target, &config).unwrap();
    assert!(result.success, "(3,4) search failed: infidelity {}", result.infidelity);
    assert!(result.infidelity < 1e-8);
    assert_eq!(result.circuit.radices(), &[3, 4]);
    assert_eq!(result.blocks, vec![(0, 1)], "one CSHIFT34 block suffices");

    // Cross-check on the independent full-width matrix accumulator.
    let unitary = result.circuit.unitary::<f64>(&result.params).unwrap();
    assert!(
        hs_infidelity(&target, &unitary) < 1e-7,
        "reference evaluation disagrees with the TNVM result"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn registry_rejects_scaled_non_unitary_gates(scale in 1.05..4.0f64, slot in 0usize..2) {
        // A scaled identity is the minimal non-unitary gate: |s²·I − I| = s² − 1 > 0.
        // Registration must reject it for every scale bounded away from 1, at both
        // arities.
        let mut set = GateSet::new();
        let entangler = slot == 1;
        if entangler {
            let source = format!(
                "BadEnt() {{ [[{scale},0,0,0],[0,{scale},0,0],[0,0,{scale},0],[0,0,0,{scale}]] }}"
            );
            let expr = UnitaryExpression::new(&source).unwrap();
            prop_assert!(set.register_entangler(expr).is_err());
        } else {
            let source = format!("BadLocal() {{ [[{scale}, 0], [0, {scale}]] }}");
            let expr = UnitaryExpression::new(&source).unwrap();
            prop_assert!(set.register_local(expr).is_err());
        }
    }

    #[test]
    fn registry_rejects_arity_mismatches(slot in 0usize..2) {
        let mut set = GateSet::new();
        let use_local_slot = slot == 0;
        if use_local_slot {
            // Two-qudit gates cannot be locals.
            prop_assert!(set.register_local(gates::cnot()).is_err());
            prop_assert!(set.register_local(gates::csum()).is_err());
        } else {
            // One-qudit gates cannot be entanglers.
            prop_assert!(set.register_entangler(gates::u3()).is_err());
            prop_assert!(set.register_entangler(gates::qutrit_u()).is_err());
        }
        // Nothing slipped into the registry.
        prop_assert_eq!(set.locals().count(), 0);
        prop_assert_eq!(set.entanglers().count(), 0);
    }

    #[test]
    fn registry_accepts_every_builtin_unitary_in_its_slot(index in 0usize..64) {
        // The whole built-in gate library passes validation in the slot matching its
        // arity — the registry is no stricter than the gates the paper ships.
        let mut all = gates::all_gates();
        let at = index % all.len();
        let (name, gate) = all.swap_remove(at);
        let mut set = GateSet::new();
        let outcome = match gate.num_qudits() {
            1 => set.register_local(gate),
            2 => set.register_entangler(gate),
            _ => return Ok(()),
        };
        prop_assert!(outcome.is_ok(), "builtin {name} rejected: {outcome:?}");
    }
}
