//! Property-based tests over the core data structures and invariants, using proptest.

use openqudit::egraph::simplify::simplify_batch;
use openqudit::prelude::*;
use openqudit::qgl::diff::{diff, finite_difference};
use openqudit::qvm::{CompileOptions, CompiledExpression};
use proptest::prelude::*;

/// A strategy producing small random real-valued expression trees over up to three
/// variables.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-3.0..3.0f64).prop_map(Expr::constant),
        Just(Expr::Pi),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            inner.clone().prop_map(Expr::sin),
            inner.clone().prop_map(Expr::cos),
            inner.clone().prop_map(Expr::neg),
        ]
    })
}

fn names() -> Vec<String> {
    vec!["x".to_string(), "y".to_string(), "z".to_string()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn symbolic_derivative_matches_finite_differences(e in arb_expr(), x in -1.5..1.5f64, y in -1.5..1.5f64, z in -1.5..1.5f64) {
        let ns = names();
        let point = [x, y, z];
        let value = e.eval_with(&ns, &point);
        prop_assume!(value.is_finite());
        for var in ["x", "y", "z"] {
            let d = diff(&e, var).eval_with(&ns, &point);
            let fd = finite_difference(&e, &ns, &point, var, 1e-5);
            prop_assume!(d.is_finite() && fd.is_finite());
            // Scale-aware tolerance: trees can produce values in the hundreds.
            let tol = 1e-3 * (1.0 + d.abs().max(fd.abs()));
            prop_assert!((d - fd).abs() < tol, "d/d{var} of {e}: {d} vs {fd}");
        }
    }

    #[test]
    fn egraph_simplification_preserves_value(e in arb_expr(), x in -1.5..1.5f64, y in -1.5..1.5f64, z in -1.5..1.5f64) {
        let ns = names();
        let point = [x, y, z];
        let before = e.eval_with(&ns, &point);
        prop_assume!(before.is_finite());
        let simplified = simplify_batch(std::slice::from_ref(&e)).remove(0);
        let after = simplified.eval_with(&ns, &point);
        let tol = 1e-6 * (1.0 + before.abs());
        prop_assert!((before - after).abs() < tol, "{e} -> {simplified}: {before} vs {after}");
    }

    #[test]
    fn substitution_then_eval_equals_eval_then_substitute(e in arb_expr(), x in -1.0..1.0f64, y in -1.0..1.0f64) {
        let ns = names();
        // Substitute z := y and check consistency.
        let substituted = e.substitute("z", &Expr::var("y"));
        let a = substituted.eval_with(&ns, &[x, y, f64::NAN]);
        let b = e.eval_with(&ns, &[x, y, y]);
        prop_assume!(a.is_finite() && b.is_finite());
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn matrix_kron_dimension_and_unitarity(theta in -3.0..3.0f64, phi in -3.0..3.0f64) {
        let a = gates::rx().to_matrix::<f64>(&[theta]).unwrap();
        let b = gates::rz().to_matrix::<f64>(&[phi]).unwrap();
        let k = a.kron(&b);
        prop_assert_eq!(k.rows(), 4);
        prop_assert!(k.is_unitary(1e-10));
        // (A ⊗ B)† = A† ⊗ B†
        let lhs = k.dagger();
        let rhs = a.dagger().kron(&b.dagger());
        prop_assert!(lhs.max_elementwise_distance(&rhs) < 1e-12);
    }

    #[test]
    fn compiled_u3_agrees_with_tree_walk(t in -3.0..3.0f64, p in -3.0..3.0f64, l in -3.0..3.0f64) {
        // Compile once and reuse across proptest cases (compilation is deterministic).
        static COMPILED: std::sync::OnceLock<(openqudit::qgl::UnitaryExpression, CompiledExpression)> =
            std::sync::OnceLock::new();
        let (expr, compiled) = COMPILED.get_or_init(|| {
            let expr = gates::u3();
            let compiled = CompiledExpression::compile(&expr, &CompileOptions::default());
            (expr, compiled)
        });
        let fast = compiled.evaluate_unitary::<f64>(&[t, p, l]);
        let slow = expr.to_matrix::<f64>(&[t, p, l]).unwrap();
        prop_assert!(fast.max_elementwise_distance(&slow) < 1e-11);
    }

    #[test]
    fn tnvm_is_unitary_for_random_ladder_parameters(seed in 0u64..500) {
        use openqudit::circuit::builders;
        use openqudit::network::{compile_network, TensorNetwork};
        // Compile the circuit and its expressions once; each case only re-evaluates.
        static SETUP: std::sync::OnceLock<(openqudit::circuit::QuditCircuit, TnvmProgram, ExpressionCache)> =
            std::sync::OnceLock::new();
        let (circuit, code, cache) = SETUP.get_or_init(|| {
            let circuit = builders::pqc_qubit_ladder(2, 2).unwrap();
            let code = compile_network(&TensorNetwork::from_circuit(&circuit));
            let cache = ExpressionCache::new();
            (circuit, code, cache)
        });
        let mut vm: Tnvm<f64> = Tnvm::new(code, DiffMode::None, cache);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17);
        let params: Vec<f64> = (0..circuit.num_params()).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 2.0
        }).collect();
        let u = vm.evaluate_unitary(&params);
        prop_assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn haar_random_targets_are_unitary(dim in prop_oneof![Just(2usize), Just(4), Just(8), Just(9)], seed in 0u64..1000) {
        let u = haar_random_unitary(dim, seed);
        prop_assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn candidate_seeds_never_collide_for_short_block_sequences(base in 0u64..u64::MAX) {
        // For any base seed, all block sequences of length ≤ 3 over 8 coupling edges
        // (1 + 8 + 64 + 512 = 585 candidates) must receive distinct instantiation
        // seeds: a collision would make two different templates explore identical
        // multi-start points, silently coupling their search outcomes.
        use openqudit::synth::candidate_seed;
        let mut sequences: Vec<Vec<usize>> = vec![Vec::new()];
        for a in 0..8usize {
            sequences.push(vec![a]);
            for b in 0..8usize {
                sequences.push(vec![a, b]);
                for c in 0..8usize {
                    sequences.push(vec![a, b, c]);
                }
            }
        }
        let mut seen = std::collections::HashMap::new();
        for blocks in sequences {
            let seed = candidate_seed(base, &blocks);
            if let Some(previous) = seen.insert(seed, blocks.clone()) {
                prop_assert!(false, "collision under base {base}: {previous:?} vs {blocks:?}");
            }
        }
        prop_assert_eq!(seen.len(), 585);
    }

    #[test]
    fn infidelity_is_bounded_and_phase_invariant(dim in prop_oneof![Just(2usize), Just(4)], seed in 0u64..200, phase in -3.0..3.0f64) {
        let a = haar_random_unitary(dim, seed);
        let b = haar_random_unitary(dim, seed + 1);
        let inf = hs_infidelity(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&inf));
        let rotated = b.scale(C64::cis(phase));
        prop_assert!((hs_infidelity(&a, &rotated) - inf).abs() < 1e-9);
        prop_assert!(hs_infidelity(&a, &a.scale(C64::cis(phase))) < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_registered_gate_set_gate_is_unitary(seed in 0u64..u64::MAX) {
        // Every entangler and local the default registry serves for radices 2, 3,
        // and the mixed (2, 3) pair must evaluate to a unitary (element-wise
        // |U†U − I| < 1e-10) at random parameter vectors — 64 proptest cases means
        // 64 vectors per gate.
        let set = GateSet::default_for(&[2, 3]);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut random_angle = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            std::f64::consts::PI * (((state >> 33) as f64 / (1u64 << 30) as f64) - 2.0)
        };
        let gates_under_test: Vec<(String, &UnitaryExpression)> = set
            .locals()
            .map(|(radix, gate)| (format!("local[{radix}]"), gate))
            .chain(set.entanglers().map(|(pair, gate)| (format!("entangler[{pair:?}]"), gate)))
            .collect();
        // 2 locals (radix 2, 3) + 3 entanglers ((2,2), (2,3), (3,3)).
        prop_assert_eq!(gates_under_test.len(), 5);
        for (slot, gate) in gates_under_test {
            let params: Vec<f64> = (0..gate.num_params()).map(|_| random_angle()).collect();
            let unitary = gate.to_matrix::<f64>(&params).unwrap();
            let deviation = unitary.unitary_deviation();
            prop_assert!(
                deviation < 1e-10,
                "{slot} ('{}') deviates by {deviation:.3e} at {params:?}",
                gate.name()
            );
        }
    }
}

#[test]
fn failure_injection_malformed_inputs() {
    // Malformed QGL never panics, always returns structured errors.
    for src in [
        "",
        "U3(",
        "U3() {}",
        "U3() { [[1,2],[3]] }",
        "U3(x) { [[unknownfn(x), 0],[0, 1]] }",
        "U3<5>(x) { [[cos(x), sin(x)],[~sin(x), cos(x)]] }",
        "G(x) { [[sin(i*x), 0],[0, 1]] }",
    ] {
        assert!(UnitaryExpression::new(src).is_err(), "{src:?} should fail to build");
    }
    // Circuit misuse is rejected, not silently accepted.
    let mut circ = QuditCircuit::qubits(1);
    let rx = circ.cache_operation(gates::rx()).unwrap();
    assert!(circ.append_ref(rx, vec![3]).is_err());
    assert!(circ.append_ref_constant(rx, vec![0], vec![1.0, 2.0]).is_err());
    assert!(circ.unitary::<f64>(&[0.0, 1.0]).is_err());
}
