//! Conformance suite for the `qudit-serve` compilation server: request
//! deduplication, cooperative deadlines, queue backpressure, panic isolation,
//! and cross-tier response determinism — each exercised end to end over real
//! sockets against an in-process server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use openqudit::serve::{ServeConfig, Server, ServerHandle};

/// One parsed HTTP response.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// A minimal blocking HTTP client: one request, one response, connection close.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).expect("status code").parse().unwrap();
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Response { status, headers, body: body.to_string() }
}

fn post_compile(addr: SocketAddr, body: &str) -> Response {
    http(addr, "POST", "/compile", body)
}

/// Extracts an integer from a flat JSON object body, e.g. `counter(&m, "cache", "misses")`.
fn metrics_value(metrics_body: &str, section: &str, key: &str) -> u64 {
    let section_start = metrics_body
        .find(&format!("\"{section}\":{{"))
        .unwrap_or_else(|| panic!("no section {section:?} in {metrics_body}"));
    let rest = &metrics_body[section_start..];
    let end = rest.find('}').expect("section close");
    let section_text = &rest[..end];
    let key_start = section_text
        .find(&format!("\"{key}\":"))
        .unwrap_or_else(|| panic!("no key {key:?} in section {section:?} of {metrics_body}"));
    let value_text = &section_text[key_start + key.len() + 3..];
    let end = value_text.find([',', '}']).unwrap_or(value_text.len());
    value_text[..end].trim().parse().expect("integer metric")
}

fn counter(addr: SocketAddr, name: &str) -> u64 {
    let metrics = http(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    if metrics.body.contains(&format!("\"{name}\":")) {
        metrics_value(&metrics.body, "counters", name)
    } else {
        0
    }
}

fn start(config: ServeConfig) -> ServerHandle {
    Server::start(config).expect("server start")
}

const CNOT_SEED7: &str =
    r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 7, "omit_timings": true}"#;

#[test]
fn concurrent_identical_requests_join_one_compile() {
    // Reference: one compile's worth of cache misses, on its own server.
    let reference = start(ServeConfig { debug_hooks: true, ..ServeConfig::default() });
    assert_eq!(post_compile(reference.addr(), CNOT_SEED7).status, 200);
    let single_compile_misses =
        metrics_value(&http(reference.addr(), "GET", "/metrics", "").body, "cache", "misses");
    assert!(single_compile_misses > 0);
    reference.shutdown();

    // Now N concurrent identical requests against a fresh server. One worker +
    // a debug hold keeps the leader's compile in flight long enough that every
    // other thread observably joins it.
    let server = start(ServeConfig { workers: 1, debug_hooks: true, ..ServeConfig::default() });
    let addr = server.addr();
    let body = r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 7, "omit_timings": true, "debug": {"hold_ms": 300}}"#;
    let n = 4;
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..n).map(|_| scope.spawn(move || post_compile(addr, body))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for response in &responses {
        assert_eq!(response.status, 200, "{}", response.body);
        // Dedup is reported out of band; bodies stay byte-identical.
        assert_eq!(response.body, responses[0].body);
    }
    let joined =
        responses.iter().filter(|r| r.header("x-openqudit-dedup") == Some("joined")).count();
    assert_eq!(joined, n - 1, "exactly one leader, everyone else joins");
    assert_eq!(counter(addr, "serve.compiles"), 1);
    assert_eq!(counter(addr, "serve.dedup_joined"), (n - 1) as u64);
    // The batch cost exactly one compile's worth of cache misses.
    let misses = metrics_value(&http(addr, "GET", "/metrics", "").body, "cache", "misses");
    assert_eq!(misses, single_compile_misses);
    server.shutdown();
}

#[test]
fn deadline_exceeded_aborts_while_others_complete() {
    let server = start(ServeConfig { workers: 2, debug_hooks: true, ..ServeConfig::default() });
    let addr = server.addr();
    // The doomed request: a 1 ms budget spent inside a 200 ms debug hold, so the
    // cooperative checkpoint before the first pass observes the expired deadline.
    let doomed = r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 1, "deadline_ms": 1, "debug": {"hold_ms": 200}}"#;
    // A healthy request running concurrently on the other worker.
    let healthy =
        r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 2, "omit_timings": true}"#;
    let (doomed_response, healthy_response) = std::thread::scope(|scope| {
        let d = scope.spawn(move || post_compile(addr, doomed));
        let h = scope.spawn(move || post_compile(addr, healthy));
        (d.join().unwrap(), h.join().unwrap())
    });
    assert_eq!(doomed_response.status, 504, "{}", doomed_response.body);
    assert!(doomed_response.body.contains("deadline exceeded"), "{}", doomed_response.body);
    assert!(doomed_response.body.contains("checkpoint"), "{}", doomed_response.body);
    assert_eq!(healthy_response.status, 200, "{}", healthy_response.body);
    assert_eq!(counter(addr, "serve.deadline_exceeded"), 1);
    server.shutdown();
}

#[test]
fn full_queue_sheds_load_with_429() {
    // One worker, one queue slot. A holds the worker, B waits in the queue,
    // C finds the queue full and is shed.
    let server = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        debug_hooks: true,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let held =
        r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 1, "debug": {"hold_ms": 400}}"#;
    let queued =
        r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 2, "debug": {"hold_ms": 400}}"#;
    let shed = r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 3}"#;
    std::thread::scope(|scope| {
        let a = scope.spawn(move || post_compile(addr, held));
        std::thread::sleep(std::time::Duration::from_millis(100));
        let b = scope.spawn(move || post_compile(addr, queued));
        std::thread::sleep(std::time::Duration::from_millis(100));
        // A is in the worker, B fills the single queue slot: C must bounce.
        let c = post_compile(addr, shed);
        assert_eq!(c.status, 429, "{}", c.body);
        assert!(c.body.contains("queue"), "{}", c.body);
        assert_eq!(a.join().unwrap().status, 200);
        assert_eq!(b.join().unwrap().status, 200);
    });
    assert_eq!(counter(addr, "serve.rejected_queue_full"), 1);
    server.shutdown();
}

#[test]
fn panicking_request_gets_500_and_the_server_keeps_serving() {
    let server = start(ServeConfig { workers: 1, debug_hooks: true, ..ServeConfig::default() });
    let addr = server.addr();
    let bomb = r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "debug": {"panic": true}}"#;
    let response = post_compile(addr, bomb);
    assert_eq!(response.status, 500, "{}", response.body);
    assert!(response.body.contains("panicked"), "{}", response.body);
    assert_eq!(counter(addr, "serve.panics"), 1);
    // The single worker caught the panic and survives: the next request — on the
    // same worker thread — compiles normally.
    let after = post_compile(addr, CNOT_SEED7);
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(counter(addr, "serve.compiles"), 1);
    server.shutdown();
}

#[test]
fn degenerate_requests_fail_typed_not_fatally() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    // A disconnected coupling graph travels to the pipeline and comes back as a
    // typed 422 — the panic path this PR removed.
    let disconnected = r#"{"target": {"matrix": [
        [[1,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[1,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[1,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[1,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[1,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[1,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[1,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[1,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[1,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[1,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[1,0],[0,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[1,0],[0,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[1,0],[0,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[1,0],[0,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[1,0],[0,0]],
        [[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[1,0]]
    ]}, "radices": [2, 2, 2, 2], "coupling": [[0, 1], [2, 3]]}"#;
    let response = post_compile(addr, disconnected);
    assert_eq!(response.status, 422, "{}", response.body);
    assert!(response.body.contains("coupling"), "{}", response.body);
    // Malformed JSON and unknown fields are 400s.
    assert_eq!(post_compile(addr, "{not json").status, 400);
    assert_eq!(
        post_compile(addr, r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "bogus": 1}"#).status,
        400
    );
    // The server is still healthy.
    assert_eq!(post_compile(addr, CNOT_SEED7).status, 200);
    server.shutdown();
}

/// Removes the tier-variant parts of a 200 body — the `backend` name and the
/// `kernel_metrics` object — mirroring the CI determinism diff's scrub.
fn scrub_tier(body: &str) -> String {
    let backend_start = body.find("\"backend\":").expect("backend key");
    let backend_end = backend_start + body[backend_start..].find(',').expect("backend end");
    let kernel_start = body.find("\"kernel_metrics\":{").expect("kernel_metrics key");
    let kernel_end = kernel_start + body[kernel_start..].find('}').expect("kernel end") + 1;
    let mut out = String::new();
    out.push_str(&body[..backend_start]);
    out.push_str(&body[backend_end + 1..kernel_start]);
    out.push_str(&body[kernel_end + 1..]);
    out
}

#[test]
fn same_seed_responses_are_byte_identical_across_tnvm_tiers() {
    // One fresh server per request: the body's per-compile counters include the
    // cache hit/miss split, so byte comparison needs identical cache state —
    // cold, here — exactly like the CI determinism diff's fresh processes.
    let request_for = |backend: &str| {
        format!(
            r#"{{"target": {{"gate": "CNOT"}}, "radices": [2, 2], "seed": 11, "omit_timings": true, "backend": "{backend}"}}"#
        )
    };
    let compile_fresh = |backend: &str| {
        let server = start(ServeConfig::default());
        let response = post_compile(server.addr(), &request_for(backend));
        server.shutdown();
        assert_eq!(response.status, 200, "{}", response.body);
        response
    };
    let scalar = compile_fresh("scalar");
    let blocked = compile_fresh("blocked");
    assert!(scalar.body.contains("\"backend\":\"scalar\""));
    assert!(blocked.body.contains("\"backend\":\"blocked\""));
    // The engine contract: tiers are bit-identical, so after scrubbing the tier
    // name and the tier-variant kernel counters the bodies match byte for byte.
    assert_eq!(scrub_tier(&scalar.body), scrub_tier(&blocked.body));
    // And a same-tier repeat at the same seed is byte-identical even unscrubbed.
    let again = compile_fresh("scalar");
    assert_eq!(scalar.body, again.body);
}

#[test]
fn metrics_expose_the_analyze_counter_family() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    // The optimizer's rejection counter is pre-registered: present at zero
    // before any compile, so "never rejected" is distinguishable from "not wired".
    let metrics = http(addr, "GET", "/metrics", "").body;
    assert!(metrics.contains("\"analyze.optimize.rejected\""), "{metrics}");
    assert_eq!(counter(addr, "analyze.optimize.rejected"), 0);
    // A request opting into per-request optimization surfaces the whole
    // analyze.optimize.* family in the response metrics and process-wide.
    let body = r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 7, "omit_timings": true, "optimize": "full"}"#;
    let response = post_compile(addr, body);
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains("\"analyze.optimize.programs\""), "{}", response.body);
    let metrics = http(addr, "GET", "/metrics", "").body;
    assert_eq!(counter(addr, "analyze.optimize.programs"), 1, "{metrics}");
    assert_eq!(counter(addr, "analyze.optimize.rejected"), 0, "{metrics}");
    for key in ["analyze.optimize.dce_removed", "analyze.optimize.cse_removed"] {
        assert!(metrics.contains(&format!("\"{key}\"")), "{metrics}");
    }
    // An invalid per-request level is a 400 naming the accepted set.
    let bad = post_compile(
        addr,
        r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "optimize": "aggressive"}"#,
    );
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(bad.body.contains("off, instructions, full"), "{}", bad.body);
    server.shutdown();
}

#[test]
fn metrics_pass_timings_mirror_the_compilation_report() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    // Ask for timings in the response so we can cross-check /metrics against them.
    let with_timings = r#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 5}"#;
    let response = post_compile(addr, with_timings);
    assert_eq!(response.status, 200, "{}", response.body);
    let metrics = http(addr, "GET", "/metrics", "").body;
    // Every pass the report timed appears in the /metrics accumulation with one
    // recorded execution (this server compiled exactly once).
    for pass in ["partition", "synthesis", "refine", "fold"] {
        if response.body.contains(&format!("\"pass\":\"{pass}\"")) {
            let count = metrics_value(&metrics, pass, "count");
            assert_eq!(count, 1, "pass {pass} in {metrics}");
        }
    }
    // The absorbed compile counters surface process-wide.
    assert!(metrics.contains("\"cache.misses\""), "{metrics}");
    assert!(metrics.contains("\"search.nodes_expanded\""), "{metrics}");
    assert_eq!(metrics_value(&metrics, "queue", "capacity"), 32);
    server.shutdown();
}
