//! End-to-end tests for the bottom-up synthesis engine (driven through the pass
//! pipeline): the default pipeline must recover
//! reachable qubit and qutrit targets below the success threshold, with the result
//! unitary cross-checked against the independent `baseline` evaluation engine, and the
//! search must respect the coupling graph.

use openqudit::circuit::builders;
use openqudit::prelude::*;
use openqudit_integration_tests::{compile_default, compile_with};

/// Evaluates a synthesis result's circuit on the baseline engine (hand-written gates,
/// full-width matrix accumulation) and returns its infidelity against `target`. This
/// is an independent path from the TNVM that produced the result.
fn baseline_infidelity(result: &SynthesisResult, target: &Matrix<f64>) -> f64 {
    let mut evaluator = BaselineEvaluator::from_qudit_circuit(&result.circuit)
        .expect("synthesis templates only use gates with baseline implementations");
    use openqudit::optimize::GradientEvaluator;
    let (unitary, _) = evaluator.evaluate(&result.params);
    hs_infidelity(target, &unitary)
}

#[test]
fn synthesize_recovers_random_two_qubit_target() {
    // A target produced by the synthesis template itself at random parameters is
    // guaranteed reachable; the search must find it below the success threshold.
    let template = builders::pqc_template(&[2, 2], &[(0, 1), (0, 1)]).unwrap();
    let target = reachable_target(&template, 2024);
    let mut config = SynthesisConfig::qubits(2);
    config.max_blocks = 3;
    let result = compile_default(&target, &config).unwrap();
    assert!(result.success, "search failed with infidelity {}", result.infidelity);
    assert!(result.infidelity < 1e-8);
    assert!(result.nodes_expanded >= 1);
    assert_eq!(result.params.len(), result.circuit.num_params());

    // Cross-check on the baseline engine: the same circuit and parameters must match
    // the target there too (rules out a TNVM-side evaluation bug).
    assert!(
        baseline_infidelity(&result, &target) < 1e-7,
        "baseline cross-check disagrees with the TNVM result"
    );
}

#[test]
fn synthesize_recovers_two_qutrit_target() {
    let template = builders::pqc_template(&[3, 3], &[(0, 1)]).unwrap();
    let target = reachable_target(&template, 7);
    let mut config = SynthesisConfig::qutrits(2);
    config.max_blocks = 2;
    let result = compile_default(&target, &config).unwrap();
    assert!(result.success, "search failed with infidelity {}", result.infidelity);
    assert!(result.infidelity < 1e-8);
    assert_eq!(result.circuit.radices(), &[3, 3]);
    assert!(baseline_infidelity(&result, &target) < 1e-7);
}

#[test]
fn synthesized_blocks_respect_the_coupling_graph() {
    // On a 3-qubit line, a target entangling the (0,1) pair must synthesize using
    // line edges only — (0,2) is never allowed to appear.
    let template = builders::pqc_template(&[2, 2, 2], &[(0, 1)]).unwrap();
    let target = reachable_target(&template, 5);
    let mut config = SynthesisConfig::qubits(3);
    config.max_blocks = 2;
    config.instantiate.starts = 2;
    let result = compile_default(&target, &config).unwrap();
    for &(a, b) in &result.blocks {
        assert!(
            config.coupling.contains(a, b),
            "block ({a},{b}) is not an edge of the linear coupling graph"
        );
    }
    assert!(result.success, "search failed with infidelity {}", result.infidelity);
}

#[test]
fn same_seed_synthesis_runs_are_byte_identical() {
    // The determinism guarantee: two synthesis runs with the same configuration must
    // produce bit-identical block sequences, parameters, and infidelity, even though
    // the frontier is evaluated by a pool of worker threads with early stopping. A
    // multi-edge 3-qubit target exercises the racy path: several frontier candidates
    // can succeed in the same expansion.
    let template = builders::pqc_template(&[2, 2, 2], &[(0, 1), (1, 2)]).unwrap();
    let target = reachable_target(&template, 404);
    let mut config = SynthesisConfig::qubits(3);
    config.max_blocks = 3;
    let first = compile_default(&target, &config).unwrap();
    let second = compile_default(&target, &config).unwrap();
    assert_eq!(first.blocks, second.blocks, "block sequences diverged between identical runs");
    assert_eq!(first.blocks_deleted, second.blocks_deleted);
    let first_bits: Vec<u64> = first.params.iter().map(|p| p.to_bits()).collect();
    let second_bits: Vec<u64> = second.params.iter().map(|p| p.to_bits()).collect();
    assert_eq!(first_bits, second_bits, "parameters diverged between identical runs");
    assert_eq!(first.infidelity.to_bits(), second.infidelity.to_bits());
    assert_eq!(first.nodes_expanded, second.nodes_expanded);
}

#[test]
fn synthesis_shares_one_expression_cache_across_the_search() {
    let cache = ExpressionCache::new();
    let target = openqudit::circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
    let result = compile_with(&target, &SynthesisConfig::qubits(2), &cache).unwrap();
    assert!(result.success);
    // Gradient-mode U3 + CNOT: exactly two compiled artifacts, however many nodes the
    // search instantiated.
    assert_eq!(cache.stats().entries, 2);
    // A second synthesis call against the same cache recompiles nothing.
    let misses_before = cache.stats().misses;
    let again = compile_with(&target, &SynthesisConfig::qubits(2), &cache).unwrap();
    assert!(again.success);
    assert_eq!(cache.stats().misses, misses_before);
}
