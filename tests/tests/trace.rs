//! Observability conformance: the `qudit-trace` registry threaded through the whole
//! pipeline must uphold the determinism contract — same seed, byte-identical counter
//! snapshots — while the per-`KernelSel` dispatch counters split per execution tier
//! and span nesting stays well-formed under arbitrary (proptest-generated) shapes.

use openqudit::prelude::*;

/// Compiles the CNOT workload through the default pipeline with a fresh cache and
/// the given tier, returning the report.
fn compile_cnot(backend: BackendKind) -> CompilationReport {
    let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
    Compiler::with_cache(ExpressionCache::new())
        .backend(backend)
        .default_passes()
        .compile(CompilationTask::new(target, SynthesisConfig::qubits(2)))
        .unwrap()
}

#[test]
fn same_seed_counter_snapshots_are_byte_identical() {
    let a = compile_cnot(BackendKind::Scalar);
    let b = compile_cnot(BackendKind::Scalar);
    assert_eq!(a.trace.counters_json(), b.trace.counters_json());
    // The snapshot is non-trivial: the pipeline recorded search, instantiation,
    // LM, cache, and kernel-dispatch activity.
    for key in [
        "search.nodes_expanded",
        "frontier.candidates",
        "instantiate.calls",
        "instantiate.starts",
        "lm.iterations",
        "cache.misses",
        "tnvm.evaluations",
    ] {
        assert!(a.metrics.contains_key(key), "missing {key} in {:?}", a.metrics);
    }
    assert!(a.metrics.keys().any(|k| k.starts_with("tnvm.dispatch.")), "{:?}", a.metrics);
}

#[test]
fn tiers_agree_on_algorithm_counters_and_split_kernel_dispatch() {
    let scalar = compile_cnot(BackendKind::Scalar);
    let blocked = compile_cnot(BackendKind::Blocked);
    // The blocked tier is bit-identical to the scalar reference, so every
    // algorithm-level (non-`tnvm.*`) counter — nodes expanded, LM iterations,
    // starts, cache traffic — must agree exactly.
    let invariant = |report: &CompilationReport| {
        report
            .metrics
            .iter()
            .filter(|(k, _)| !k.starts_with("tnvm."))
            .map(|(k, v)| (k.clone(), *v))
            .collect::<Vec<_>>()
    };
    assert_eq!(invariant(&scalar), invariant(&blocked));
    // Kernel dispatch counters are tier-variant by design: the scalar tier never
    // dispatches a blocked kernel, while the blocked tier lowers the eligible
    // shapes; the *total* evaluation count still agrees.
    assert!(scalar.metrics.keys().all(|k| !k.ends_with(".blocked")), "{:?}", scalar.metrics);
    assert!(blocked.metrics.keys().any(|k| k.ends_with(".blocked")), "{:?}", blocked.metrics);
    assert_eq!(scalar.metrics.get("tnvm.evaluations"), blocked.metrics.get("tnvm.evaluations"));
    let kron_total = |report: &CompilationReport| {
        report.metrics.get("tnvm.dispatch.kron.scalar").copied().unwrap_or(0)
            + report.metrics.get("tnvm.dispatch.kron.blocked").copied().unwrap_or(0)
    };
    assert_eq!(kron_total(&scalar), kron_total(&blocked));
}

#[test]
fn partitioned_run_emits_chrome_trace_and_counters() {
    // The 4-qubit partitioned workload (the same recipe report_synthesis uses):
    // two escalation rounds over the [0,1]|[2,3] cut reach the target.
    let round = [(0usize, 1usize), (2, 3), (1, 2)];
    let blocks: Vec<(usize, usize)> = round.iter().cycle().take(6).copied().collect();
    let template = builders::pqc_template(&[2, 2, 2, 2], &blocks).unwrap();
    let target = reachable_target(&template, 53);
    let mut config = SynthesisConfig::with_radices(vec![2, 2, 2, 2]);
    config.max_blocks = 8;
    let report = Compiler::with_cache(ExpressionCache::new())
        .partitioned_passes()
        .compile(CompilationTask::new(target, config))
        .unwrap();
    assert!(report.result.success);
    // The snapshot covers the whole pipeline: partition-round instantiations,
    // nested per-block re-synthesis (search/frontier), LM, cache, and kernels.
    for key in ["search.nodes_expanded", "lm.iterations", "cache.hits", "instantiate.calls"] {
        assert!(report.metrics.contains_key(key), "missing {key} in {:?}", report.metrics);
    }
    assert!(report.metrics.keys().any(|k| k.starts_with("tnvm.dispatch.")));
    // Every pipeline stage shows up in the span log, nested sanely.
    let events = report.trace.span_events();
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    for stage in ["partition", "synthesis", "refine", "fold", "search", "frontier"] {
        assert!(names.contains(&stage), "missing span {stage} in {names:?}");
    }
    // The Chrome export is a JSON array of "X" complete events with the required
    // trace_event fields (structural check — no JSON parser in the workspace).
    let chrome = report.trace.chrome_trace_json();
    assert!(chrome.starts_with('[') && chrome.trim_end().ends_with(']'));
    let event_lines: Vec<&str> = chrome.lines().filter(|l| l.contains("\"name\"")).collect();
    assert_eq!(event_lines.len(), events.len());
    for line in &event_lines {
        for field in ["\"ph\": \"X\"", "\"ts\": ", "\"dur\": ", "\"pid\": ", "\"tid\": "] {
            assert!(line.contains(field), "chrome event missing {field}: {line}");
        }
    }
}

mod span_nesting {
    use openqudit::prelude::*;
    use proptest::prelude::*;

    /// Opens spans along `shape` interpreted as a stack program: value `v` at step
    /// `i` pops the stack down to depth `v % (depth + 1)` and then pushes one span.
    fn drive(trace: &TraceRegistry, shape: &[u8]) {
        let mut stack: Vec<Span> = Vec::new();
        for (i, &v) in shape.iter().enumerate() {
            let keep = (v as usize) % (stack.len() + 1);
            // Close deepest-first (plain Vec::truncate would drop front-to-back,
            // closing parents before their children).
            while stack.len() > keep {
                stack.pop();
            }
            stack.push(trace.span(&format!("s{i}")));
        }
        while stack.pop().is_some() {}
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn span_nesting_is_well_formed(len in 1usize..24, seed in 0u64..u64::MAX) {
            // Derive the nesting shape from the seed (the vendored proptest shim has
            // no collection strategies): a splitmix64 stream of pop/push decisions.
            let mut state = seed;
            let shape: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    (z ^ (z >> 31)) as u8
                })
                .collect();
            let trace = TraceRegistry::new();
            drive(&trace, &shape);
            let events = trace.span_events();
            prop_assert_eq!(events.len(), shape.len());
            // Events are logged in open order; parents must be earlier events on
            // the same thread, exactly one level up, and time-containing.
            for (i, event) in events.iter().enumerate() {
                match event.parent {
                    None => prop_assert_eq!(event.depth, 0),
                    Some(p) => {
                        prop_assert!(p < i, "parent {} not before event {}", p, i);
                        let parent = &events[p];
                        prop_assert_eq!(event.depth, parent.depth + 1);
                        prop_assert_eq!(event.tid, parent.tid);
                        prop_assert!(event.start_us >= parent.start_us);
                        prop_assert!(
                            event.start_us + event.dur_us <= parent.start_us + parent.dur_us,
                            "child [{}, {}] escapes parent [{}, {}]",
                            event.start_us, event.start_us + event.dur_us,
                            parent.start_us, parent.start_us + parent.dur_us
                        );
                    }
                }
            }
        }
    }
}
