//! Conformance suite for the static-analysis layer (`qudit-analyze`): the TNVM
//! bytecode/plan verifier, the interleaved `Compiler::verify` knob and explicit
//! [`VerifyPass`], and the `detlint` determinism linter — including a proptest
//! mutation campaign asserting that random single-field corruptions of valid
//! programs are always rejected with a typed error and never panic.

use std::sync::OnceLock;

use openqudit::analyze::detlint;
use openqudit::analyze::program::PlanViolation;
use openqudit::circuit::builders;
use openqudit::network::TnvmOp;
use openqudit::prelude::*;
use openqudit::tnvm::TargetDescriptor;
use proptest::prelude::*;

/// The radix mixes every registered backend must verify cleanly on: qubit pair,
/// qutrit pair, the mixed pair, and a three-qubit chain.
const RADIX_MIXES: [&[usize]; 4] = [&[2, 2], &[3, 3], &[2, 3], &[2, 2, 2]];

/// Compiles a PQC template over `radices` (nearest-neighbour couplings) down to
/// TNVM bytecode.
fn compiled_program(radices: &[usize]) -> TnvmProgram {
    let couplings: Vec<(usize, usize)> = (0..radices.len() - 1).map(|i| (i, i + 1)).collect();
    let circuit = builders::pqc_template(radices, &couplings).unwrap();
    try_compile_network(&TensorNetwork::from_circuit(&circuit)).unwrap()
}

/// One compiled program per radix mix, shared across proptest cases.
fn programs() -> &'static Vec<TnvmProgram> {
    static PROGRAMS: OnceLock<Vec<TnvmProgram>> = OnceLock::new();
    PROGRAMS.get_or_init(|| RADIX_MIXES.iter().map(|mix| compiled_program(mix)).collect())
}

#[test]
fn codegen_output_verifies_clean_for_every_radix_mix_and_backend() {
    for (mix, program) in RADIX_MIXES.iter().zip(programs()) {
        let report = verify_program(program)
            .unwrap_or_else(|e| panic!("clean program for {mix:?} rejected: {e}"));
        assert!(report.instructions > 0);
        for kind in BackendKind::all() {
            let plan = verify_backend(program, kind).unwrap_or_else(|e| {
                panic!("{} plan for {mix:?} rejected by its own descriptor: {e}", kind.name())
            });
            assert_eq!(plan.dynamic_kernels.len(), program.dynamic_ops.len());
        }
    }
}

#[test]
fn shape_corruption_is_rejected_naming_the_instruction() {
    let mut program = compiled_program(&[2, 2]);
    let out = program.dynamic_ops[0].out();
    program.buffers[out].rows += 1;
    let err = verify_program(&program).unwrap_err();
    assert!(
        matches!(err, AnalyzeError::Program(_) | AnalyzeError::Bytecode(_)),
        "expected a typed program violation, got {err:?}"
    );
    let rendered = err.to_string();
    assert!(
        rendered.contains("dynamic[") || rendered.contains("constant["),
        "error does not name the offending instruction: {rendered}"
    );
}

#[test]
fn use_before_init_is_rejected_as_a_dataflow_violation() {
    let mut program = compiled_program(&[2, 2]);
    // Drop the first dynamic instruction: its destination is either read by a later
    // instruction (use-before-write) or is the declared output (never written).
    program.dynamic_ops.remove(0);
    let err = verify_program(&program).unwrap_err();
    assert!(
        matches!(
            err,
            AnalyzeError::Bytecode(
                BytecodeError::UseBeforeWrite { .. } | BytecodeError::OutputNeverWritten { .. }
            )
        ),
        "expected a dataflow violation, got {err:?}"
    );
}

/// A plan scheduling every dynamic Matmul on the blocked kernel, everything else
/// scalar, with no workspace.
fn all_blocked_matmuls_no_workspace(program: &TnvmProgram) -> ExecPlan {
    ExecPlan {
        constant_kernels: vec![KernelSel::Scalar; program.constant_ops.len()],
        dynamic_kernels: program
            .dynamic_ops
            .iter()
            .map(|op| match op {
                TnvmOp::Matmul { .. } => KernelSel::Blocked,
                _ => KernelSel::Scalar,
            })
            .collect(),
        workspace_scalars: 0,
    }
}

#[test]
fn blocked_kernel_on_the_scalar_tier_is_an_illegal_selection() {
    let program = compiled_program(&[2, 2]);
    let plan = all_blocked_matmuls_no_workspace(&program);
    assert!(plan.dynamic_kernels.contains(&KernelSel::Blocked), "mix has no Matmul");
    let err = verify_plan(&program, &plan, &TargetDescriptor::scalar(), "scalar").unwrap_err();
    match err {
        AnalyzeError::Plan(PlanViolation::IllegalKernel { ref tier, at, .. }) => {
            assert_eq!(tier, "scalar");
            assert!(!at.constant);
            assert!(err.to_string().contains(&format!("dynamic[{}]", at.index)));
        }
        other => panic!("expected an illegal-kernel violation, got {other:?}"),
    }
}

#[test]
fn workspace_overflow_is_rejected() {
    let program = compiled_program(&[2, 2]);
    let plan = all_blocked_matmuls_no_workspace(&program);
    // A descriptor permissive enough to bless every blocked selection, so the only
    // remaining defect is the missing GEMM workspace.
    let permissive =
        TargetDescriptor { panel_columns: 8, min_blocked_flops: 1, min_blocked_kron: 1 };
    let err = verify_plan(&program, &plan, &permissive, "blocked-cpu").unwrap_err();
    match err {
        AnalyzeError::Plan(PlanViolation::WorkspaceOverflow { required, provided, .. }) => {
            assert!(required > 0);
            assert_eq!(provided, 0);
        }
        other => panic!("expected a workspace overflow, got {other:?}"),
    }
}

#[test]
fn section_misalignment_is_rejected() {
    let program = compiled_program(&[2, 2]);
    let mut plan = BackendKind::Scalar.instance().lower(&program);
    plan.dynamic_kernels.pop();
    let err = verify_plan(&program, &plan, &TargetDescriptor::scalar(), "scalar").unwrap_err();
    assert!(
        matches!(err, AnalyzeError::Plan(PlanViolation::SectionLength { .. })),
        "expected a section-length violation, got {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Mutation campaign: a single-field corruption of a valid program must always
    /// surface as a typed `AnalyzeError` — never a panic, never a clean pass.
    #[test]
    fn single_field_corruptions_are_always_rejected(
        mix in 0usize..4,
        mutation in 0usize..8,
        pick in 0usize..1024,
    ) {
        let mut program = programs()[mix].clone();
        let what = match mutation {
            0 => {
                let i = pick % program.radices.len();
                program.radices[i] = 1;
                "radix set to 1"
            }
            1 => {
                let i = pick % program.buffers.len();
                program.buffers[i].rows += 1;
                "buffer row count inflated"
            }
            2 => {
                let i = pick % program.buffers.len();
                program.buffers[i].cols += 2;
                "buffer column count inflated"
            }
            3 => {
                program.output = program.buffers.len();
                "output buffer out of range"
            }
            4 => {
                program.num_params = 0;
                "parameter space collapsed"
            }
            5 => {
                let i = pick % program.dynamic_ops.len();
                let duplicate = program.dynamic_ops[i].clone();
                program.dynamic_ops.push(duplicate);
                "dynamic instruction duplicated"
            }
            6 => {
                program.dynamic_ops.remove(0);
                "first dynamic instruction dropped"
            }
            _ => {
                let Some(buffer) = program.buffers.iter_mut().find(|b| !b.params.is_empty())
                else {
                    return Err(TestCaseError::Reject("no parameterized buffer".to_string()));
                };
                let first = buffer.params[0];
                buffer.params.push(first);
                "buffer parameter annotation de-sorted"
            }
        };
        let verdict = verify_program(&program);
        prop_assert!(
            verdict.is_err(),
            "corruption '{what}' on mix {:?} verified clean",
            RADIX_MIXES[mix]
        );
        // The typed error must render a non-empty diagnostic.
        let rendered = verdict.unwrap_err().to_string();
        prop_assert!(!rendered.is_empty());
    }
}

#[test]
fn interleaved_verification_records_metrics_without_timing_entries() {
    let target = openqudit::circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
    let report = Compiler::with_cache(ExpressionCache::new())
        .verify(VerifyLevel::Full)
        .default_passes()
        .compile(CompilationTask::new(target, SynthesisConfig::qubits(2)))
        .unwrap();
    assert!(report.result.success);
    // Interleaved verification must not perturb the pipeline's timing contract.
    assert_eq!(report.timings.len(), 3);
    let metric = |name: &str| report.metrics.get(name).copied().unwrap_or(0);
    assert!(metric("analyze.circuits_verified") >= 1, "{:?}", report.metrics);
    assert!(metric("analyze.programs_verified") >= 1, "{:?}", report.metrics);
    // Full level checks the plan of every registered tier after every pass.
    assert!(metric("analyze.plans_verified") >= BackendKind::all().len() as u64);
    assert!(metric("analyze.instructions_checked") > 0);
}

#[test]
fn explicit_verify_pass_is_a_timed_pipeline_stage() {
    let target = openqudit::circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
    let report = Compiler::with_cache(ExpressionCache::new())
        .default_passes()
        .add_pass(VerifyPass::default())
        .compile(CompilationTask::new(target, SynthesisConfig::qubits(2)))
        .unwrap();
    assert!(report.result.success);
    let names: Vec<&str> = report.timings.iter().map(|t| t.pass.as_str()).collect();
    assert_eq!(names, ["synthesis", "refine", "fold", "verify"]);
    assert!(report.metrics.get("analyze.programs_verified").copied().unwrap_or(0) >= 1);
}

#[test]
fn gate_set_violation_surfaces_as_a_verify_error() {
    use openqudit::circuit::gates;
    use openqudit::synth::SynthesisResult;

    // A hand-planted result using a gate outside the configured gate set: the
    // verifier must fail the compilation with a typed `CompileError::Verify`.
    let mut circuit = QuditCircuit::qubits(1);
    let h = circuit.cache_operation(gates::hadamard()).unwrap();
    circuit.append_ref_constant(h, vec![0], vec![]).unwrap();
    let target = circuit.unitary::<f64>(&[]).unwrap();
    let mut task = CompilationTask::new(target, SynthesisConfig::qubits(1));
    task.result = Some(SynthesisResult {
        circuit,
        params: vec![],
        infidelity: 0.0,
        nodes_expanded: 0,
        blocks: vec![],
        success: true,
        blocks_deleted: 0,
        refined_infidelity: None,
        params_folded: 0,
        gates_constified: 0,
    });
    let err = Compiler::with_cache(ExpressionCache::new())
        .add_pass(VerifyPass::new(VerifyLevel::Full))
        .compile(task)
        .unwrap_err();
    match err {
        CompileError::Verify { after, violation } => {
            assert_eq!(after, "verify");
            assert!(matches!(violation, AnalyzeError::Circuit(_)), "{violation:?}");
            let rendered = violation.to_string();
            assert!(rendered.contains("H"), "violation does not name the gate: {rendered}");
        }
        other => panic!("expected a verify error, got {other:?}"),
    }
}

#[test]
fn detlint_self_test_catches_the_planted_regressions() {
    detlint::self_test().unwrap_or_else(|e| panic!("detlint self-test failed:\n{e}"));
}

#[test]
fn workspace_sources_are_detlint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
    let report = detlint::lint_workspace(root).unwrap();
    assert!(report.files > 0, "linter scanned no files under {}", root.display());
    assert!(
        report.findings.is_empty(),
        "determinism hazards in the workspace:\n{}",
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
