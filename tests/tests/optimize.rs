//! Optimizer conformance suite: the verified-bytecode-optimization contract.
//!
//! Every program the optimizer returns must be *provably* interchangeable with its
//! input: `verify_program` accepts it, every registered tier lowers it, and a
//! differential check pins the evaluation bit for bit — values **and** gradients,
//! both `DiffMode`s, both tiers. The static cost model must agree *exactly* with the
//! runtime `KernelCounters`, and the dataflow facts the optimizer builds on
//! (liveness, interference) must hold on random well-formed programs.

use std::sync::OnceLock;

use openqudit::analyze::{InterferenceGraph, Liveness, OPTIMIZE_ENV_VAR};
use openqudit::circuit::builders;
use openqudit::prelude::*;
use proptest::prelude::*;

/// The radix mixes of the analyze conformance suite: qubit pair, qutrit pair, the
/// mixed pair, and a three-qubit chain.
const RADIX_MIXES: [&[usize]; 4] = [&[2, 2], &[3, 3], &[2, 3], &[2, 2, 2]];

/// Deterministic pseudo-random parameters in (−2, 2).
fn param_vector(count: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    (0..count)
        .map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 2.0
        })
        .collect()
}

fn assert_matrices_bit_identical(a: &Matrix<f64>, b: &Matrix<f64>, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re differs at element {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im differs at element {i}");
    }
}

/// Compiles a PQC template over `radices` (nearest-neighbour couplings) down to
/// TNVM bytecode.
fn compiled_program(radices: &[usize]) -> TnvmProgram {
    let couplings: Vec<(usize, usize)> = (0..radices.len() - 1).map(|i| (i, i + 1)).collect();
    let circuit = builders::pqc_template(radices, &couplings).unwrap();
    try_compile_network(&TensorNetwork::from_circuit(&circuit)).unwrap()
}

/// One compiled program per radix mix, shared across tests and proptest cases.
fn programs() -> &'static Vec<TnvmProgram> {
    static PROGRAMS: OnceLock<Vec<TnvmProgram>> = OnceLock::new();
    PROGRAMS.get_or_init(|| RADIX_MIXES.iter().map(|mix| compiled_program(mix)).collect())
}

/// Evaluates `original` and `optimized` under `diff` on both tiers and asserts
/// bitwise agreement of the unitary and every gradient block.
fn assert_programs_agree(
    original: &TnvmProgram,
    optimized: &TnvmProgram,
    cache: &ExpressionCache,
    diff: DiffMode,
    seed: u64,
    what: &str,
) {
    let params = param_vector(original.num_params, seed);
    for kind in BackendKind::all() {
        let label = format!("{what} {diff:?} {kind}");
        let mut reference: Tnvm<f64> = Tnvm::with_backend(original, diff, cache, kind);
        let mut candidate: Tnvm<f64> = Tnvm::with_backend(optimized, diff, cache, kind);
        let expected = reference.evaluate(&params);
        let actual = candidate.evaluate(&params);
        assert_matrices_bit_identical(&expected.unitary, &actual.unitary, &label);
        assert_eq!(expected.gradient.len(), actual.gradient.len(), "{label}: gradient count");
        for (k, (ge, ga)) in expected.gradient.iter().zip(actual.gradient.iter()).enumerate() {
            assert_matrices_bit_identical(ge, ga, &format!("{label}: gradient {k}"));
        }
    }
}

#[test]
fn optimized_programs_are_bit_identical_on_every_radix_mix() {
    let cache = ExpressionCache::new();
    for (mix, program) in RADIX_MIXES.iter().zip(programs()) {
        let out = optimize_program(program, OptimizeLevel::Full, &cache);
        assert!(
            out.stats.rejected.is_none(),
            "optimizer rejected its own output on {mix:?}: {:?}",
            out.stats.rejected
        );
        // The optimized program must satisfy the full static contract on its own.
        verify_program(&out.program)
            .unwrap_or_else(|e| panic!("optimized program for {mix:?} rejected: {e}"));
        for kind in BackendKind::all() {
            verify_backend(&out.program, kind).unwrap_or_else(|e| {
                panic!("optimized {} plan for {mix:?} rejected: {e}", kind.name())
            });
        }
        for diff in [DiffMode::None, DiffMode::Gradient] {
            for seed in [7, 23] {
                assert_programs_agree(
                    program,
                    &out.program,
                    &cache,
                    diff,
                    seed,
                    &format!("{mix:?}"),
                );
            }
        }
    }
}

#[test]
fn optimizer_reduces_the_three_qubit_chain() {
    // Codegen pads each two-qudit block into the full register with fresh identity
    // writes; on a three-qubit chain the duplicated paddings are CSE fodder, so the
    // acceptance criterion "at least one workload shrinks" is pinned here.
    let program = &programs()[3];
    let cache = ExpressionCache::new();
    let out = optimize_program(program, OptimizeLevel::Full, &cache);
    assert!(out.stats.rejected.is_none());
    assert!(
        out.stats.instructions_after < out.stats.instructions_before,
        "no instruction was eliminated on [2,2,2]: {:?}",
        out.stats
    );
    assert!(out.stats.cse_removed > 0, "expected CSE merges on [2,2,2]: {:?}", out.stats);
    assert!(
        out.stats.arena_after <= out.stats.arena_before,
        "optimization must never grow the arena: {:?}",
        out.stats
    );
    assert_eq!(out.program.len(), out.stats.instructions_after);
    assert_eq!(out.program.arena_elements(), out.stats.arena_after);
}

#[test]
fn static_estimate_matches_runtime_counters_exactly() {
    // The cost model and the runtime tally must be the same arithmetic: exact
    // equality, no tolerance — on the original *and* the optimized program.
    let cache = ExpressionCache::new();
    for (mix, program) in RADIX_MIXES.iter().zip(programs()) {
        let optimized = optimize_program(program, OptimizeLevel::Full, &cache).program;
        for (label, p) in [("original", program), ("optimized", &optimized)] {
            for kind in BackendKind::all() {
                let plan = kind.instance().lower(p);
                for mode in [DiffMode::None, DiffMode::Gradient] {
                    let what = format!("{mix:?} {label} {kind} {mode:?}");
                    let estimate = estimate_plan(p, &plan, mode);
                    let mut vm: Tnvm<f64> = Tnvm::with_backend(p, mode, &cache, kind);
                    let mut init = vm.take_counters();
                    // Cache outcomes depend on what earlier constructions warmed;
                    // the static model deliberately leaves them at zero.
                    init.cache_hits = 0;
                    init.cache_misses = 0;
                    assert_eq!(init, estimate.init, "{what}: init counters");
                    vm.evaluate(&param_vector(p.num_params, 11));
                    assert_eq!(
                        vm.take_counters(),
                        estimate.per_evaluation,
                        "{what}: per-evaluation counters"
                    );
                }
            }
        }
    }
}

#[test]
fn optimize_env_var_name_is_stable() {
    // CI's optimizer conformance step sets this variable; renaming it must be a
    // conscious act.
    assert_eq!(OPTIMIZE_ENV_VAR, "OPENQUDIT_OPTIMIZE");
    assert_eq!(OptimizeLevel::parse("off"), Some(OptimizeLevel::Off));
    assert_eq!(OptimizeLevel::parse("instructions"), Some(OptimizeLevel::Instructions));
    assert_eq!(OptimizeLevel::parse("full"), Some(OptimizeLevel::Full));
    assert_eq!(OptimizeLevel::parse("aggressive"), None);
}

#[test]
fn explicit_optimize_pass_is_a_timed_pipeline_stage() {
    let target = openqudit::circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
    let report = Compiler::with_cache(ExpressionCache::new())
        .default_passes()
        .add_pass(OptimizePass::default())
        .compile(CompilationTask::new(target, SynthesisConfig::qubits(2)))
        .unwrap();
    assert!(report.result.success);
    let names: Vec<&str> = report.timings.iter().map(|t| t.pass.as_str()).collect();
    assert_eq!(names, ["synthesis", "refine", "fold", "optimize"]);
    assert_eq!(report.data.get("optimize.level").unwrap().to_string(), "full");
    assert!(report.data.get("optimize.rejected").is_none());
    assert!(report.metrics.get("analyze.optimize.programs").copied().unwrap_or(0) >= 1);
    assert_eq!(report.metrics.get("analyze.optimize.rejected").copied(), Some(0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random well-formed programs: the dataflow facts hold, coalescing never maps
    /// two simultaneously-live buffers onto overlapping arena ranges, and the
    /// optimized program evaluates bit-identically to the original on random
    /// parameter vectors across both tiers.
    #[test]
    fn random_programs_optimize_soundly(
        radices in prop_oneof![
            Just(vec![2usize, 2]), Just(vec![3, 3]), Just(vec![2, 3]),
            Just(vec![2, 2, 2]), Just(vec![2, 3, 2]),
        ],
        layers in 1usize..3,
        seed in 0u64..1000,
    ) {
        let chain: Vec<(usize, usize)> = (0..radices.len() - 1).map(|q| (q, q + 1)).collect();
        let edges: Vec<(usize, usize)> =
            chain.iter().cycle().take(chain.len() * layers).copied().collect();
        let circuit = builders::pqc_template(&radices, &edges).unwrap();
        let program = try_compile_network(&TensorNetwork::from_circuit(&circuit)).unwrap();

        // (a) Liveness is a fixed point of its own transfer function.
        let liveness = Liveness::compute(&program);
        prop_assert!(liveness.is_fixed_point(&program));
        let interference = InterferenceGraph::build(&program, &liveness);
        for buf in 0..program.buffers.len() {
            prop_assert!(!interference.interferes(buf, buf), "interference is irreflexive");
        }

        // (b) + (c) Full optimization stays sound end to end.
        let cache = ExpressionCache::new();
        let out = optimize_program(&program, OptimizeLevel::Full, &cache);
        prop_assert!(out.stats.rejected.is_none(), "rejected: {:?}", out.stats.rejected);
        prop_assert!(verify_program(&out.program).is_ok());
        if let Some(layout) = &out.program.layout {
            let live = Liveness::compute(&out.program);
            let graph = InterferenceGraph::build(&out.program, &live);
            for a in 0..out.program.buffers.len() {
                for b in graph.neighbors(a) {
                    if b <= a {
                        continue;
                    }
                    let (sa, sb) = (layout.offsets[a], layout.offsets[b]);
                    let (ea, eb) = (
                        sa + out.program.buffers[a].len(),
                        sb + out.program.buffers[b].len(),
                    );
                    prop_assert!(
                        ea <= sb || eb <= sa,
                        "interfering buffers {a} and {b} share arena range \
                         [{sa},{ea}) vs [{sb},{eb})"
                    );
                }
            }
        }
        for diff in [DiffMode::None, DiffMode::Gradient] {
            assert_programs_agree(
                &program,
                &out.program,
                &cache,
                diff,
                seed,
                &format!("{radices:?} x{layers}"),
            );
        }
    }
}
