//! Backend conformance suite: the multi-tier lowering contract.
//!
//! The TNVM's execution tiers must be interchangeable: `BlockedCpuBackend` is pinned
//! to the `ScalarBackend` reference **bit for bit** (its kernels are
//! reassociation-free — same per-element accumulation order, zero-skip, and
//! complex-multiply expansion — so not even a 1e-12 tolerance is needed; that budget
//! is reserved for future reassociating tiers, per `crates/tnvm/README.md`). The
//! suite drives both tiers over every registered-gate-set radix mix (pure qubit,
//! qutrit, ququart, and all mixed pairs), in both differentiation modes, through
//! `evaluate` and `evaluate_unitary`, plus a proptest sweep over random templates.

use openqudit::circuit::builders;
use openqudit::prelude::*;
use openqudit::tnvm::BACKEND_ENV_VAR;
use proptest::prelude::*;

/// Deterministic pseudo-random parameters in (−2, 2).
fn param_vector(count: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    (0..count)
        .map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 2.0
        })
        .collect()
}

fn assert_matrices_bit_identical(a: &Matrix<f64>, b: &Matrix<f64>, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re differs at element {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im differs at element {i}");
    }
}

/// Evaluates `circuit` under both tiers and asserts bitwise agreement of the unitary
/// and (in gradient mode) every gradient block.
fn assert_backends_agree(circuit: &QuditCircuit, diff: DiffMode, seed: u64, what: &str) {
    let program = compile_network(&TensorNetwork::from_circuit(circuit));
    let cache = ExpressionCache::new();
    let mut scalar = Tnvm::<f64>::with_backend(&program, diff, &cache, BackendKind::Scalar);
    let mut blocked = Tnvm::<f64>::with_backend(&program, diff, &cache, BackendKind::Blocked);
    let params = param_vector(circuit.num_params(), seed);
    let rs = scalar.evaluate(&params);
    let rb = blocked.evaluate(&params);
    assert_matrices_bit_identical(&rs.unitary, &rb.unitary, what);
    assert_eq!(rs.gradient.len(), rb.gradient.len(), "{what}: gradient count");
    for (k, (gs, gb)) in rs.gradient.iter().zip(rb.gradient.iter()).enumerate() {
        assert_matrices_bit_identical(gs, gb, &format!("{what}: gradient {k}"));
    }
    // `evaluate_unitary` goes through the same lowered plan; pin it explicitly.
    let us = scalar.evaluate_unitary(&params);
    let ub = blocked.evaluate_unitary(&params);
    assert_matrices_bit_identical(&us, &ub, &format!("{what}: evaluate_unitary"));
}

#[test]
fn tiers_agree_bitwise_on_every_registered_radix_mix() {
    // Every radix pair the default gate set registers, under both diff modes. Each
    // mix lowers its KRONs (and gradient accumulations) to the blocked kernels while
    // the MATMULs pin the scalar-fallback path below the gemm threshold.
    for radices in
        [vec![2, 2], vec![3, 3], vec![4, 4], vec![2, 3], vec![2, 4], vec![3, 4], vec![2, 3, 4]]
    {
        let edges: Vec<(usize, usize)> = (0..radices.len() - 1).map(|q| (q, q + 1)).collect();
        let circuit = builders::pqc_template(&radices, &edges).unwrap();
        for diff in [DiffMode::None, DiffMode::Gradient] {
            assert_backends_agree(&circuit, diff, 7, &format!("{radices:?} {diff:?}"));
        }
    }
}

#[test]
fn tiers_agree_bitwise_on_deep_qubit_ladders() {
    // Deeper programs chain many MATMUL/KRON ops, so selection mistakes accumulate
    // loudly; 3 and 4 qubits put every KRON firmly in blocked territory.
    for (n, layers) in [(3usize, 3usize), (4, 2)] {
        let circuit = builders::pqc_qubit_ladder(n, layers).unwrap();
        assert_backends_agree(
            &circuit,
            DiffMode::Gradient,
            (n * 10 + layers) as u64,
            &format!("{n}-qubit {layers}-layer ladder"),
        );
    }
}

#[test]
fn blocked_tier_reports_workspace_and_larger_memory() {
    // Small programs lower blocked KRONs but no panel-packed MATMUL (workspace-free);
    // 6-qubit operands clear the gemm threshold and must surface their workspace in
    // the memory report.
    let small = builders::pqc_qubit_ladder(3, 2).unwrap();
    let program = compile_network(&TensorNetwork::from_circuit(&small));
    let cache = ExpressionCache::new();
    let scalar =
        Tnvm::<f64>::with_backend(&program, DiffMode::Gradient, &cache, BackendKind::Scalar);
    let blocked =
        Tnvm::<f64>::with_backend(&program, DiffMode::Gradient, &cache, BackendKind::Blocked);
    assert!(!scalar.plan().uses_blocked());
    assert!(blocked.plan().uses_blocked());
    assert_eq!(blocked.plan().workspace_scalars, 0);
    assert_eq!(blocked.memory_bytes(), scalar.memory_bytes());

    let wide = builders::pqc_qubit_ladder(6, 1).unwrap();
    let program = compile_network(&TensorNetwork::from_circuit(&wide));
    let scalar = Tnvm::<f64>::with_backend(&program, DiffMode::None, &cache, BackendKind::Scalar);
    let blocked = Tnvm::<f64>::with_backend(&program, DiffMode::None, &cache, BackendKind::Blocked);
    assert!(blocked.plan().workspace_scalars > 0);
    assert!(
        blocked.memory_bytes() > scalar.memory_bytes(),
        "the blocked tier's workspace must show up in the memory report"
    );
}

#[test]
fn backend_threads_through_the_whole_stack() {
    // One knob at the top (SynthesisConfig::backend) must reach the frontier
    // evaluators, refinement, and folding — and both tiers must compile the same
    // target to byte-identical results at the same seed (the per-tier determinism
    // contract; the tiers are additionally bit-identical to each other today).
    let target = openqudit::circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
    let mut results = Vec::new();
    for backend in BackendKind::all() {
        let mut config = SynthesisConfig::qubits(2);
        config.backend = backend;
        assert_eq!(config.frontier_instantiate_config().backend, backend);
        assert_eq!(config.fold_config().backend, backend);
        let report = Compiler::with_cache(ExpressionCache::new())
            .default_passes()
            .compile(CompilationTask::new(target.clone(), config))
            .unwrap();
        assert!(report.result.success);
        for timing in &report.timings {
            assert_eq!(timing.backend, backend.name(), "pass {}", timing.pass);
        }
        results.push(report.result);
    }
    let bits = |r: &SynthesisResult| {
        (r.params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(), r.infidelity.to_bits())
    };
    assert_eq!(bits(&results[0]), bits(&results[1]), "tiers diverged on a compiled result");
    assert_eq!(results[0].blocks, results[1].blocks);
}

#[test]
fn compiler_backend_override_wins_over_task_config() {
    let target = openqudit::circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
    let mut config = SynthesisConfig::qubits(2);
    config.backend = BackendKind::Scalar;
    let report = Compiler::with_cache(ExpressionCache::new())
        .backend(BackendKind::Blocked)
        .default_passes()
        .compile(CompilationTask::new(target, config))
        .unwrap();
    assert!(report.timings.iter().all(|t| t.backend == "blocked"));
}

#[test]
fn env_var_name_is_stable() {
    // CI's backend matrix sets this variable; renaming it must be a conscious act.
    assert_eq!(BACKEND_ENV_VAR, "OPENQUDIT_TNVM_BACKEND");
    assert_eq!(BackendKind::parse("scalar"), Some(BackendKind::Scalar));
    assert_eq!(BackendKind::parse("blocked"), Some(BackendKind::Blocked));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random programs over radices 2/3/4 and mixed shapes: the tiers agree bitwise
    /// on `evaluate` + `evaluate_unitary` in both `DiffMode`s (gradient mode also
    /// compares every gradient block).
    #[test]
    fn tiers_agree_on_random_programs(
        radices in prop_oneof![
            Just(vec![2usize, 2]), Just(vec![3, 3]), Just(vec![4, 4]),
            Just(vec![2, 3]), Just(vec![2, 4]), Just(vec![3, 4]),
            Just(vec![2, 2, 2]), Just(vec![2, 3, 4]), Just(vec![4, 2, 3]),
        ],
        layers in 1usize..3,
        seed in 0u64..1000,
    ) {
        let chain: Vec<(usize, usize)> = (0..radices.len() - 1).map(|q| (q, q + 1)).collect();
        let edges: Vec<(usize, usize)> =
            chain.iter().cycle().take(chain.len() * layers).copied().collect();
        let circuit = builders::pqc_template(&radices, &edges).unwrap();
        for diff in [DiffMode::None, DiffMode::Gradient] {
            assert_backends_agree(&circuit, diff, seed, &format!("{radices:?} x{layers} {diff:?}"));
        }
    }
}
