//! Support crate for the cross-crate integration tests (the tests live in `tests/`).
