//! Support crate for the cross-crate integration tests (the tests live in `tests/`).

use openqudit::prelude::*;

/// Compiles `target` through the standard pass pipeline (`synthesis → refine → fold`)
/// over a fresh expression cache — the test suite's replacement for the deprecated
/// monolithic `synthesize` entry point.
///
/// # Errors
///
/// Propagates the pipeline's [`CompileError`].
pub fn compile_default(
    target: &Matrix<f64>,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, CompileError> {
    compile_with(target, config, &ExpressionCache::new())
}

/// [`compile_default`] over an explicit shared cache.
///
/// # Errors
///
/// Propagates the pipeline's [`CompileError`].
pub fn compile_with(
    target: &Matrix<f64>,
    config: &SynthesisConfig,
    cache: &ExpressionCache,
) -> Result<SynthesisResult, CompileError> {
    Compiler::with_cache(cache.clone())
        .default_passes()
        .compile(CompilationTask::new(target.clone(), config.clone()))
        .map(|report| report.result)
}
