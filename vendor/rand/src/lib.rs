//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates.io mirror, so this vendored
//! crate provides the small `rand` 0.8 API subset the workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over primitive
//! ranges. The generator is xoshiro256** seeded through SplitMix64 — statistically
//! strong for numerical-optimization starting points, deterministic across platforms.

use std::ops::Range;

/// A random number generator seedable from a `u64` (rand 0.8 subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The low-level entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for the span sizes used in this workspace.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-0.5..2.5);
            assert!((-0.5..2.5).contains(&x));
        }
        // Mean of uniform[-0.5, 2.5) is 1.0.
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(-0.5..2.5f64)).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
