//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API subset the workspace benches use — `criterion_group!`,
//! `criterion_main!`, [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], and
//! [`Bencher::iter`] — as a simple wall-clock harness: a warm-up/calibration pass sizes
//! the per-sample iteration count, then `sample_size` samples are timed and the
//! min/mean/max per-iteration times are printed in Criterion's familiar format.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up/calibration duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup { criterion: self, name, sample_size: None }
    }
}

/// Identifier for one benchmark within a group (function name + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        // Calibration pass: run for the warm-up budget to estimate per-iteration time.
        let mut bencher = Bencher {
            mode: Mode::Calibrate(self.criterion.warm_up),
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            Duration::from_nanos(1)
        } else {
            Duration::from_nanos((bencher.elapsed.as_nanos() / bencher.iters as u128).max(1) as u64)
        };
        let budget_per_sample = self.criterion.measurement / samples as u32;
        let iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u64::MAX as u128) as u64;

        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher {
                mode: Mode::Measure(iters_per_sample),
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher);
            times.push(bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{}/{:<40} time: [{} {} {}]",
            self.name,
            id,
            fmt_time(times[0]),
            fmt_time(mean),
            fmt_time(*times.last().expect("at least one sample")),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

enum Mode {
    /// Run until the duration budget elapses, counting iterations.
    Calibrate(Duration),
    /// Run exactly this many iterations.
    Measure(u64),
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine` according to the current mode.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Calibrate(budget) => {
                let start = Instant::now();
                let mut n = 0u64;
                loop {
                    black_box(routine());
                    n += 1;
                    if start.elapsed() >= budget {
                        break;
                    }
                }
                self.elapsed = start.elapsed();
                self.iters = n;
            }
            Mode::Measure(iters) => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.elapsed = start.elapsed();
                self.iters = iters;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion`'s macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("incr", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(count > 0);
    }
}
