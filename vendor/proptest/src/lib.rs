//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), strategies over primitive ranges,
//! [`Just`], tuples, `prop_map`, `prop_recursive`, `prop_oneof!`, and the
//! `prop_assert*`/`prop_assume!` macros. Generation is deterministic (seeded from the
//! test name) and there is no shrinking — a failing case reports its message directly.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case violated an assumption and should not count.
    Reject(String),
    /// The property failed.
    Fail(String),
}

/// Result type produced by a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (typically the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Samples uniformly from a primitive range.
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.gen_range(range)
    }
}

/// The common imports: strategies, config, and the assertion macros.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// Declares deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                let mut passed = 0u32;
                let mut attempts = 0u32;
                // Allow rejects (prop_assume!) without starving the case budget.
                let max_attempts = config.cases.saturating_mul(20).max(config.cases);
                while passed < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!("property '{}' failed: {}", stringify!($name), message);
                        }
                    }
                }
                assert!(
                    passed > 0,
                    "property '{}' rejected every generated case",
                    stringify!($name)
                );
            }
        )*
    };
}

/// Skips the current case when `condition` is false.
#[macro_export]
macro_rules! prop_assume {
    ($condition:expr) => {
        if !($condition) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($condition)).to_string(),
            ));
        }
    };
}

/// Fails the current case when `condition` is false.
#[macro_export]
macro_rules! prop_assert {
    ($condition:expr) => {
        if !($condition) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($condition)).to_string(),
            ));
        }
    };
    ($condition:expr, $($fmt:tt)+) => {
        if !($condition) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Uniformly chooses between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}
