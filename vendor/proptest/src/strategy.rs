//! Value-generation strategies: primitive ranges, [`Just`], tuples, `prop_map`,
//! `prop_recursive`, and uniform choice ([`one_of`], backing `prop_oneof!`).

use std::ops::Range;
use std::rc::Rc;

use crate::TestRng;

/// Something that can generate values of an associated type.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f: Rc::new(f) }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { generate: Rc::new(move |rng| self.generate(rng)) }
    }

    /// Builds recursive values: `expand` receives a strategy for the recursive
    /// positions and returns the branching strategy. Recursion is unrolled `depth`
    /// times, so generation always terminates at leaves of the base strategy.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let branch = expand(current).boxed();
            let leaf = self.clone().boxed();
            current = BoxedStrategy {
                generate: Rc::new(move |rng: &mut TestRng| {
                    // Bias towards branching; the unrolled depth still bounds size.
                    if rng.next_u64().is_multiple_of(4) {
                        leaf.generate(rng)
                    } else {
                        branch.generate(rng)
                    }
                }),
            };
        }
        current
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { generate: Rc::clone(&self.generate) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// A strategy that always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map { inner: self.inner.clone(), f: Rc::clone(&self.f) }
    }
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies — the engine behind `prop_oneof!`.
pub fn one_of<T>(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!arms.is_empty(), "prop_oneof! requires at least one strategy");
    OneOf { arms: Rc::new(arms) }
}

/// The strategy produced by [`one_of`].
pub struct OneOf<T> {
    arms: Rc<Vec<BoxedStrategy<T>>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf { arms: Rc::clone(&self.arms) }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn ranges_and_just_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..100 {
            let x = (1.0..2.0f64).generate(&mut rng);
            assert!((1.0..2.0).contains(&x));
            assert_eq!(Just(7u32).generate(&mut rng), 7);
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = prop_oneof![Just(1u32), Just(2), (10u32..20).prop_map(|v| v * 2)];
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || v == 2 || (20..40).contains(&v));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + size(a) + size(b),
            }
        }
        let strat = (0u32..10).prop_map(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("trees");
        for _ in 0..200 {
            // Depth-4 unrolling bounds the tree at 2^5 leaves.
            assert!(size(&strat.generate(&mut rng)) < 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_asserts(x in 0u64..100, y in -1.0..1.0f64) {
            prop_assume!(x > 0);
            prop_assert!(x < 100, "x was {}", x);
            prop_assert_eq!(x, x);
            prop_assert!((-1.0..1.0).contains(&y));
        }
    }
}
