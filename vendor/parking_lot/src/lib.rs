//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides [`Mutex`] and [`RwLock`] with `parking_lot`'s panic-free locking API
//! (no `Result` to unwrap), implemented over `std::sync`. Poisoning is ignored —
//! matching `parking_lot` semantics, a panicked critical section does not poison
//! the lock for later users.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
