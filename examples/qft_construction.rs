//! Scalable circuit construction (the Fig. 4 workload): build large QFT circuits with
//! cached expression references and report construction time and operation counts.
//!
//! Run with `cargo run --release -p openqudit-examples --bin qft_construction [qubits]`.

use std::time::Instant;

use openqudit::circuit::builders;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    let start = Instant::now();
    let circuit = builders::qft(n)?;
    let elapsed = start.elapsed();
    println!(
        "built a {n}-qubit QFT ({} operations, {} cached gate definitions) in {:.3} ms",
        circuit.num_ops(),
        circuit.expressions().len(),
        elapsed.as_secs_f64() * 1e3
    );

    // For small sizes, verify against the closed-form QFT matrix.
    if n <= 6 {
        let u = circuit.unitary::<f64>(&[])?;
        let dim = circuit.dim();
        let omega = 2.0 * std::f64::consts::PI / dim as f64;
        let mut max_err: f64 = 0.0;
        for j in 0..dim {
            for k in 0..dim {
                let expect = openqudit::tensor::C64::cis(omega * (j * k) as f64)
                    .scale(1.0 / (dim as f64).sqrt());
                max_err = max_err.max(u.get(j, k).dist(expect));
            }
        }
        println!("verified against the closed-form QFT matrix (max error {max_err:.2e})");
    }
    Ok(())
}
