//! Quickstart: define a gate in QGL, build a parameterized circuit, compile it ahead of
//! time, and evaluate the unitary and its gradient on the TNVM.
//!
//! Run with `cargo run --release -p openqudit-examples --bin quickstart`.

use openqudit::network::{compile_network, TensorNetwork};
use openqudit::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (1) Define a gate symbolically — the U3 gate of Listing 2 in the paper. The
    // analytical gradient is derived automatically; no hand-written matrix calculus.
    let u3 = UnitaryExpression::new(
        "U3(theta, phi, lambda) {
            [
                [ cos(theta/2), ~ e^(i*lambda) * sin(theta/2) ],
                [ e^(i*phi) * sin(theta/2), e^(i*(phi+lambda)) * cos(theta/2) ],
            ]
        }",
    )?;
    println!("parsed gate: {u3}");

    // (2) Build a two-qubit parameterized circuit, caching each definition once and
    // appending by cheap integer reference.
    let mut circuit = QuditCircuit::qubits(2);
    let u3_ref = circuit.cache_operation(u3)?;
    let cnot_ref = circuit.cache_operation(gates::cnot())?;
    circuit.append_ref(u3_ref, vec![0])?;
    circuit.append_ref(u3_ref, vec![1])?;
    circuit.append_ref_constant(cnot_ref, vec![0, 1], vec![])?;
    circuit.append_ref(u3_ref, vec![0])?;
    circuit.append_ref(u3_ref, vec![1])?;
    println!("circuit: {} ops, {} parameters", circuit.num_ops(), circuit.num_params());

    // (3) Ahead-of-time compile to TNVM bytecode and initialize the virtual machine.
    let network = TensorNetwork::from_circuit(&circuit);
    let code = compile_network(&network);
    println!(
        "bytecode: {} constant + {} dynamic instructions, {} buffers",
        code.constant_ops.len(),
        code.dynamic_ops.len(),
        code.buffers.len()
    );
    let cache = ExpressionCache::new();
    let mut tnvm: Tnvm<f64> = Tnvm::new(&code, DiffMode::Gradient, &cache);

    // (4) The fast evaluation loop: unitary + gradient per call.
    let params: Vec<f64> = (0..circuit.num_params()).map(|k| 0.1 * (k as f64 + 1.0)).collect();
    let result = tnvm.evaluate(&params);
    println!("unitary is unitary: {}", result.unitary.is_unitary(1e-10));
    println!("gradient components: {}", result.gradient.len());
    println!("TNVM memory footprint: {} KB", tnvm.memory_bytes() / 1024);
    Ok(())
}
