//! Shared helpers for the runnable examples. The examples themselves are standalone
//! binaries; see `quickstart.rs` for the recommended starting point.
