//! The Discrete Time Crystal construction workload of Listing 4 in the paper: every gate
//! is defined in QGL inside this binary, cached once, and appended by reference.
//!
//! Run with `cargo run --release -p openqudit-examples --bin dtc_simulation [qubits]`.

use std::f64::consts::PI;
use std::time::Instant;

use openqudit::prelude::*;

/// Builds a DTC circuit exactly as in Listing 4: the gate set is defined locally in QGL,
/// cached on the circuit, and appended by reference.
fn build_dtc_circuit(n: usize) -> Result<QuditCircuit, CircuitError> {
    let rx = UnitaryExpression::new(
        "RX(theta) { [[cos(theta/2), ~i*sin(theta/2)], [~i*sin(theta/2), cos(theta/2)]] }",
    )
    .expect("valid QGL");
    let rzz = UnitaryExpression::new(
        "RZZ(theta) { [[e^(~i*theta/2),0,0,0],[0,e^(i*theta/2),0,0],[0,0,e^(i*theta/2),0],[0,0,0,e^(~i*theta/2)]] }",
    )
    .expect("valid QGL");
    let rz = UnitaryExpression::new("RZ(theta) { [[e^(~i*theta/2), 0], [0, e^(i*theta/2)]] }")
        .expect("valid QGL");

    let mut circ = QuditCircuit::pure(vec![2; n]);
    let rx_ref = circ.cache_operation(rx)?;
    let rz_ref = circ.cache_operation(rz)?;
    let rzz_ref = circ.cache_operation(rzz)?;

    let mut phase = 0.0f64;
    for _ in 0..n {
        for i in 0..n {
            circ.append_ref_constant(rx_ref, vec![i], vec![0.95 * PI])?;
        }
        for i in 0..n {
            phase = (phase + 0.618) % 1.0;
            circ.append_ref_constant(rz_ref, vec![i], vec![PI * (2.0 * phase - 1.0)])?;
        }
        for i in 0..n.saturating_sub(1) {
            phase = (phase + 0.618) % 1.0;
            circ.append_ref_constant(rzz_ref, vec![i, i + 1], vec![PI * (2.0 * phase - 1.0)])?;
        }
    }
    Ok(circ)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let start = Instant::now();
    let circuit = build_dtc_circuit(n)?;
    println!(
        "built a {n}-qubit DTC circuit ({} ops) in {:.3} ms",
        circuit.num_ops(),
        start.elapsed().as_secs_f64() * 1e3
    );

    // For a small instance, additionally compile and execute it on the TNVM.
    if n <= 6 {
        use openqudit::network::{compile_network, TensorNetwork};
        let code = compile_network(&TensorNetwork::from_circuit(&circuit));
        let cache = ExpressionCache::new();
        let mut vm: Tnvm<f64> = Tnvm::new(&code, DiffMode::None, &cache);
        let u = vm.evaluate_unitary(&[]);
        println!("TNVM-evaluated unitary is unitary: {}", u.is_unitary(1e-9));
    }
    Ok(())
}
