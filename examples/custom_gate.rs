//! Extensibility demo: define a brand-new qutrit gate in QGL, derive its gradient
//! automatically, compose it symbolically (controlled version, dagger), and compile it.
//!
//! Run with `cargo run --release -p openqudit-examples --bin custom_gate`.

use openqudit::prelude::*;
use openqudit::qgl::transform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A custom two-parameter qutrit rotation a domain expert might want to add. In a
    // traditional framework this needs a class plus a hand-derived gradient (Listing 1 of
    // the paper); in QGL it is one declaration.
    let givens = UnitaryExpression::new(
        "Givens01<3>(theta, phi) {
            [[cos(theta), ~e^(i*phi)*sin(theta), 0],
             [e^(~i*phi)*sin(theta), cos(theta), 0],
             [0, 0, 1]]
        }",
    )?;
    println!("gate: {givens}");
    println!("unitary at (0.4, 1.2)? {}", givens.check_unitary(&[0.4, 1.2], 1e-12));

    // The analytical gradient comes for free.
    let grads = givens.gradient_matrices::<f64>(&[0.4, 1.2])?;
    println!("gradient components: {}", grads.len());

    // Symbolic composition: invert it, control it on a qubit, fuse two of them.
    let inverse = transform::dagger(&givens);
    let controlled = transform::control(&givens, 2);
    let fused = transform::matmul(&givens, &inverse)?;
    println!("controlled gate acts on radices {:?}", controlled.radices());
    println!("G·G† is the identity: {}", fused.to_matrix::<f64>(&[0.4, 1.2])?.is_identity(1e-12));

    // Compile it (simplification + register program) and compare against the tree walk.
    let compiled = CompiledExpression::compile(&givens, &CompileOptions::with_gradient());
    let (unitary, _) = compiled.evaluate_with_gradient::<f64>(&[0.4, 1.2]);
    let reference = givens.to_matrix::<f64>(&[0.4, 1.2])?;
    println!(
        "compiled program: {} instructions, max deviation from tree walk: {:.2e}",
        compiled.gradient_program().map(|p| p.len()).unwrap_or(0),
        unitary.max_elementwise_distance(&reference)
    );
    Ok(())
}
