//! Numerical instantiation / synthesis example (the Fig. 6–7 workload): fit a QSearch
//! style ansatz to a target unitary with the TNVM-backed multi-start Levenberg–Marquardt
//! driver, compare against the BQSKit-style baseline engine — then hand the same
//! machinery to the compiler-pass pipeline (`Compiler`), which discovers the circuit
//! structure itself instead of being given an ansatz and reports per-pass timings.
//!
//! Run with `cargo run --release -p openqudit-examples --bin synthesis`.
//! Pass `--radices 2,3` (or any comma-separated radix list) to additionally run a
//! mixed-radix search through the pluggable gate-set registry — for `2,3` the target
//! is the embedded controlled-shift entangler itself.
//! Pass `--partition` to additionally compile a 4-qubit target through the
//! partitioned pipeline (the workload the plain search cannot practically reach).

use std::time::Instant;

use openqudit::circuit::builders;
use openqudit::prelude::*;

/// Parses an optional `--radices 2,3`-style flag from the command line.
fn radices_flag() -> Result<Option<Vec<usize>>, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let Some(at) = args.iter().position(|a| a == "--radices") else {
        return Ok(None);
    };
    let value = args.get(at + 1).ok_or("--radices needs a value, e.g. `--radices 2,3`")?;
    let radices = value
        .split(',')
        .map(|r| r.trim().parse::<usize>())
        .collect::<Result<Vec<usize>, _>>()
        .map_err(|e| format!("invalid --radices value '{value}': {e}"))?;
    if radices.len() < 2 {
        return Err("--radices needs at least two qudits".into());
    }
    Ok(Some(radices))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 3-qubit shallow ansatz of Fig. 5 and a target it can realize.
    let circuit = builders::pqc_qubit_ladder(3, 3)?;
    let target = reachable_target(&circuit, 2024);
    println!(
        "instantiating a 3-qubit ansatz with {} parameters against a {}x{} target",
        circuit.num_params(),
        target.rows(),
        target.cols()
    );

    let config = InstantiateConfig::multi_start(7);

    // OpenQudit path: AOT compile + TNVM + LM, with the expression cache shared state.
    let cache = ExpressionCache::new();
    let start = Instant::now();
    let result = instantiate_circuit(&circuit, &target, &config, &cache);
    let oq_time = start.elapsed();
    println!(
        "openqudit : infidelity {:.2e}, success {}, {} starts, {:.1} ms",
        result.infidelity,
        result.success,
        result.starts_used,
        oq_time.as_secs_f64() * 1e3
    );

    // Baseline path: same ansatz, same optimizer, hand-coded gates and full-width
    // matrix accumulation.
    let start = Instant::now();
    let mut baseline = BaselineEvaluator::from_qudit_circuit(&circuit)?;
    let bl_result = instantiate(&mut baseline, &target, &config);
    let bl_time = start.elapsed();
    println!(
        "baseline  : infidelity {:.2e}, success {}, {} starts, {:.1} ms",
        bl_result.infidelity,
        bl_result.success,
        bl_result.starts_used,
        bl_time.as_secs_f64() * 1e3
    );
    println!("speedup   : {:.1}x", bl_time.as_secs_f64() / oq_time.as_secs_f64());

    // Compile mode: the pass pipeline discovers the circuit structure itself. Give
    // the compiler a CNOT and a reachable two-qubit unitary; the synthesis pass grows
    // a template one entangling block at a time, instantiating every candidate on the
    // TNVM, and the refine/fold passes shrink and constant-fold the winner — with
    // each pass timed separately.
    println!("\n-- compile mode: the pass pipeline --");
    let compiler = Compiler::with_cache(ExpressionCache::new()).default_passes();
    for (name, target) in [
        ("cnot", openqudit::circuit::gates::cnot().to_matrix::<f64>(&[])?),
        (
            "2-qubit reachable",
            reachable_target(&builders::pqc_template(&[2, 2], &[(0, 1), (0, 1)])?, 99),
        ),
    ] {
        let task = CompilationTask::new(target, SynthesisConfig::qubits(2));
        let report = compiler.compile(task)?;
        let result = &report.result;
        println!(
            "{name:<18}: infidelity {:.2e}, {} block(s) {:?} ({} deleted, {} gate(s) \
             constified), {} nodes expanded | {}",
            result.infidelity,
            result.blocks.len(),
            result.blocks,
            result.blocks_deleted,
            result.gates_constified,
            result.nodes_expanded,
            pass_timings(&report),
        );
        assert!(report.result.success, "compile-mode demo should synthesize {name}");
    }

    // Mixed-radix search through the gate-set registry: `--radices 2,3` synthesizes
    // the embedded controlled-shift entangler on a qubit–qutrit pair (other radix
    // lists get a reachable random target on their linear-coupling template).
    if let Some(radices) = radices_flag()? {
        println!("\n-- mixed-radix search: radices {radices:?} --");
        let config = SynthesisConfig::with_radices(radices.clone());
        let target = if radices == [2, 3] {
            openqudit::circuit::gates::cshift23().to_matrix::<f64>(&[])?
        } else {
            let edges: Vec<(usize, usize)> = (0..radices.len() - 1).map(|q| (q, q + 1)).collect();
            reachable_target(&builders::pqc_template(&radices, &edges)?, 7)
        };
        let report = compiler.compile(CompilationTask::new(target, config))?;
        let result = &report.result;
        println!(
            "radices {radices:?}: infidelity {:.2e}, {} block(s) {:?}, {} nodes expanded | {}",
            result.infidelity,
            result.blocks.len(),
            result.blocks,
            result.nodes_expanded,
            pass_timings(&report),
        );
        assert!(result.success, "mixed-radix demo should synthesize its target");
    }

    // Partitioned compile: `--partition` splits a 4-qubit target along the
    // [0,1]|[2,3] coupling cut, sketches it partition-first, re-synthesizes each
    // block through a nested pipeline, and stitches — the plain search never sees
    // the exponentially wide 4-qubit candidate space.
    if std::env::args().any(|a| a == "--partition") {
        println!("\n-- partitioned compile: 4 qubits --");
        let round = [(0, 1), (2, 3), (1, 2)];
        let blocks: Vec<(usize, usize)> = round.iter().cycle().take(6).copied().collect();
        let target = reachable_target(&builders::pqc_template(&[2, 2, 2, 2], &blocks)?, 53);
        let partitioned = Compiler::with_cache(ExpressionCache::new()).partitioned_passes();
        let report =
            partitioned.compile(CompilationTask::with_radices(target, vec![2, 2, 2, 2]))?;
        let result = &report.result;
        println!(
            "4-qubit reachable : infidelity {:.2e}, {} block(s) over {} round(s), \
             groups {} | {}",
            result.infidelity,
            result.blocks.len(),
            report.data.get_usize("partition.rounds").unwrap_or(0),
            report.data.get("partition.groups_layout").map(ToString::to_string).unwrap_or_default(),
            pass_timings(&report),
        );
        assert!(result.success, "partitioned demo should synthesize its target");
    }
    Ok(())
}

/// Formats a report's per-pass wall-clock timings as `pass: ms` pairs.
fn pass_timings(report: &CompilationReport) -> String {
    report
        .timings
        .iter()
        .map(|t| format!("{}: {:.1} ms", t.pass, t.duration.as_secs_f64() * 1e3))
        .collect::<Vec<_>>()
        .join(", ")
}
