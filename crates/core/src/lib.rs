//! # OpenQudit (reproduction)
//!
//! An extensible and accelerated numerical quantum compilation framework built around a
//! JIT-compiled domain-specific language, reproducing the system described in
//! *"OpenQudit: Extensible and Accelerated Numerical Quantum Compilation via a
//! JIT-Compiled DSL"* (CGO 2026).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`tensor`] | `qudit-tensor` | complex scalars, dense matrices/tensors, GEMM/Kron/permute kernels |
//! | [`qgl`] | `qudit-qgl` | the Qudit Gate Language: parser, symbolic IR, differentiation, transforms |
//! | [`egraph`] | `qudit-egraph` | e-graph equality saturation and CSE-aware greedy extraction |
//! | [`qvm`] | `qudit-qvm` | the expression compiler ("JIT") and the shared `ExpressionCache` |
//! | [`circuit`] | `qudit-circuit` | `QuditCircuit`, the QGL gate library, QFT/DTC/PQC builders |
//! | [`network`] | `qudit-network` | AOT tensor-network lowering, contraction paths, TNVM bytecode |
//! | [`tnvm`] | `qudit-tnvm` | the Tensor Network Virtual Machine with forward-mode AD |
//! | [`optimize`] | `qudit-optimize` | Hilbert–Schmidt cost, Levenberg–Marquardt, parallel multi-start instantiation |
//! | [`synth`] | `qudit-synth` | instantiation-driven bottom-up synthesis (QSearch-style A*/beam over layered templates) |
//! | [`compile`] | `qudit-compile` | the composable compiler-pass pipeline (`Compiler`/`Pass`/`PassContext`), incl. the partitioning front-end for wide targets |
//! | [`analyze`] | `qudit-analyze` | static analysis: the TNVM bytecode/plan verifier, circuit/gate-set validator, and the `detlint` determinism linter |
//! | [`trace`] | `qudit-trace` | observability: hierarchical spans, deterministic counters, Chrome `trace_event` export |
//! | [`serve`] | `qudit-serve` | compilation-as-a-service: a dependency-free HTTP server with dedup, deadlines, and panic isolation |
//! | [`baseline`] | `qudit-baseline` | a BQSKit-style baseline compiler used by the benchmarks |
//!
//! # Quickstart
//!
//! ```
//! use openqudit::prelude::*;
//!
//! // Define a gate in QGL (Listing 2 of the paper).
//! let rx = UnitaryExpression::new(
//!     "RX(theta) { [[cos(theta/2), ~i*sin(theta/2)], [~i*sin(theta/2), cos(theta/2)]] }",
//! )?;
//!
//! // Build a parameterized circuit, caching the expression once.
//! let mut circuit = QuditCircuit::qubits(2);
//! let rx_ref = circuit.cache_operation(rx)?;
//! let cx_ref = circuit.cache_operation(gates::cnot())?;
//! circuit.append_ref(rx_ref, vec![0])?;
//! circuit.append_ref_constant(cx_ref, vec![0, 1], vec![])?;
//! circuit.append_ref(rx_ref, vec![1])?;
//!
//! // Compile it ahead of time and evaluate it on the TNVM.
//! let network = TensorNetwork::from_circuit(&circuit);
//! let code = compile_network(&network);
//! let cache = ExpressionCache::new();
//! let mut vm: Tnvm<f64> = Tnvm::new(&code, DiffMode::Gradient, &cache);
//! let result = vm.evaluate(&[0.3, 1.2]);
//! assert!(result.unitary.is_unitary(1e-10));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use qudit_analyze as analyze;
pub use qudit_baseline as baseline;
pub use qudit_circuit as circuit;
pub use qudit_compile as compile;
pub use qudit_egraph as egraph;
pub use qudit_network as network;
pub use qudit_optimize as optimize;
pub use qudit_qgl as qgl;
pub use qudit_qvm as qvm;
pub use qudit_serve as serve;
pub use qudit_synth as synth;
pub use qudit_tensor as tensor;
pub use qudit_tnvm as tnvm;
pub use qudit_trace as trace;

/// The most commonly used types, re-exported for convenient glob import.
pub mod prelude {
    pub use qudit_analyze::{
        estimate_plan, optimize_program, verify_backend, verify_circuit, verify_gateset,
        verify_plan, verify_program, AnalyzeError, OptimizeLevel, OptimizeOutcome, OptimizeStats,
        PlanCostEstimate, VerifyLevel,
    };
    pub use qudit_baseline::{BaselineCircuit, BaselineEvaluator};
    pub use qudit_circuit::{builders, gates, CircuitError, ExpressionRef, GateSet, QuditCircuit};
    pub use qudit_compile::{
        optimize_task, CompilationReport, CompilationTask, CompileError, Compiler, FoldPass,
        OptimizePass, PartitionConfig, PartitionPass, Pass, PassContext, PassData, PassTiming,
        PassValue, RefinePass, SynthesisPass, VerifyPass,
    };
    pub use qudit_egraph::simplify::{simplify, simplify_batch};
    pub use qudit_network::{
        compile_network, find_plan, try_compile_network, BytecodeError, TensorNetwork, TnvmProgram,
    };
    pub use qudit_optimize::{
        haar_random_unitary, hs_infidelity, instantiate, instantiate_circuit,
        instantiate_circuit_mapped, reachable_target, warm_start_from_mapping, GradientEvaluator,
        InstantiateConfig, InstantiationResult, LmConfig, TnvmEvaluator,
    };
    pub use qudit_qgl::{ComplexExpr, Expr, QglError, UnitaryExpression};
    pub use qudit_qvm::{CompileOptions, CompiledExpression, DiffMode, ExpressionCache};
    pub use qudit_synth::{
        fold_constants, refine, refine_deletions, run_search, CouplingGraph, FoldConfig,
        RefineConfig, SynthesisConfig, SynthesisError, SynthesisResult,
    };
    #[allow(deprecated)]
    pub use qudit_synth::{synthesize, synthesize_with_cache};
    pub use qudit_tensor::{Complex, Matrix, Tensor, C64};
    pub use qudit_tnvm::{
        Backend, BackendKind, EvalResult, ExecPlan, KernelCounters, KernelSel, Tnvm,
    };
    pub use qudit_trace::{Span, SpanEvent, TraceRegistry};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_pipeline_smoke_test() {
        let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
        let target = reachable_target(&circuit, 1);
        let cache = ExpressionCache::new();
        let config = InstantiateConfig { starts: 2, ..Default::default() };
        let result = instantiate_circuit(&circuit, &target, &config, &cache);
        assert!(result.infidelity < 1e-4);
    }

    #[test]
    fn facade_synthesis_smoke_test() {
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let report = Compiler::with_cache(ExpressionCache::new())
            .default_passes()
            .compile(CompilationTask::new(target, SynthesisConfig::qubits(2)))
            .unwrap();
        assert!(report.result.success);
        assert_eq!(report.result.blocks, vec![(0, 1)]);
        assert_eq!(report.timings.len(), 3);
    }
}
