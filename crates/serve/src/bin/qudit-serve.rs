//! The `qudit-serve` binary: stands up the compilation server and blocks.
//!
//! ```text
//! qudit-serve [--addr HOST:PORT] [--workers N] [--queue N] [--threads N]
//!             [--cache-capacity N] [--deadline-ms N] [--debug-hooks]
//! ```

use qudit_serve::{ServeConfig, Server};

fn main() {
    let mut config = ServeConfig { addr: "127.0.0.1:7331".to_string(), ..ServeConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} expects an integer")))
        };
        match arg.as_str() {
            "--addr" => {
                config.addr = args.next().unwrap_or_else(|| die("--addr expects HOST:PORT"))
            }
            "--workers" => config.workers = take("--workers"),
            "--queue" => config.queue_capacity = take("--queue"),
            "--threads" => config.threads_per_compile = take("--threads"),
            "--cache-capacity" => config.cache_capacity = take("--cache-capacity"),
            "--deadline-ms" => config.default_deadline_ms = take("--deadline-ms") as u64,
            "--debug-hooks" => config.debug_hooks = true,
            "--help" | "-h" => {
                println!(
                    "qudit-serve: the OpenQudit compilation server\n\n\
                       --addr HOST:PORT    bind address (default 127.0.0.1:7331)\n\
                       --workers N         compile worker threads (default 2)\n\
                       --queue N           waiting-request capacity (default 32)\n\
                       --threads N         engine threads per compile (default: auto budget)\n\
                       --cache-capacity N  expression-cache entries, 0 = unbounded (default 0)\n\
                       --deadline-ms N     default request deadline, 0 = none (default 0)\n\
                       --debug-hooks       honor the request 'debug' object (tests only)"
                );
                return;
            }
            other => die(&format!("unknown flag {other:?}; see --help")),
        }
    }
    match Server::start(config) {
        Ok(handle) => {
            println!("qudit-serve listening on http://{}", handle.addr());
            handle.join();
        }
        Err(e) => die(&format!("failed to start server: {e}")),
    }
}

fn die(message: &str) -> ! {
    eprintln!("qudit-serve: {message}");
    std::process::exit(2)
}
