//! A minimal JSON value, parser, and canonical serializer.
//!
//! The build environment vendors no serde, so the server carries its own ~200-line
//! JSON layer, mirroring the zero-dependency discipline of `qudit-trace`. Objects
//! are [`BTreeMap`]s, so parsing and re-serializing a request yields a *canonical*
//! byte string — sorted keys, no insignificant whitespace, shortest-roundtrip
//! number formatting — which is exactly what request deduplication hashes.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. [`BTreeMap`] keeps key order sorted, making serialization
    /// canonical and iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with an exact
    /// `u64` representation.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object, if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Looks up `key` in an object value (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|map| map.get(key))
    }

    /// Serializes the value canonically: sorted object keys (by construction),
    /// no whitespace, shortest-roundtrip number formatting.
    pub fn to_canonical_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats a float the way every JSON emitter in this workspace does: Rust's
/// shortest-roundtrip `{}` formatting, which is deterministic for a given bit
/// pattern — so bit-identical engine results serialize to byte-identical JSON.
pub fn format_number(n: f64) -> String {
    if n.is_finite() {
        format!("{n}")
    } else {
        // JSON has no NaN/Infinity; degrade to null rather than emit invalid bytes.
        "null".to_string()
    }
}

/// Escapes a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Maximum nesting depth the parser accepts (hostile-input guard: a deeply
/// nested body must return 400, not blow the stack).
pub const MAX_DEPTH: usize = 64;

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a position-annotated message for malformed input, trailing bytes, or
/// nesting beyond [`MAX_DEPTH`].
pub fn parse(input: &[u8]) -> Result<Json, String> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.input.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", byte as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at offset {}", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected byte '{}' at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| format!("invalid number at offset {start}"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Surrogate pairs are not reassembled; lone surrogates
                            // degrade to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the body arrived as bytes).
                    let rest = std::str::from_utf8(&self.input[self.pos..])
                        .map_err(|_| format!("invalid utf-8 at offset {}", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let text = br#"{"b": [1, 2.5, -3e2], "a": {"nested": true, "s": "q\"uote"}, "n": null}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.get("n"), Some(&Json::Null));
        assert_eq!(value.get("b").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(value.get("a").unwrap().get("s").unwrap().as_str(), Some("q\"uote"));
        // Canonical form sorts keys and drops whitespace.
        assert_eq!(
            value.to_canonical_string(),
            r#"{"a":{"nested":true,"s":"q\"uote"},"b":[1,2.5,-300],"n":null}"#
        );
    }

    #[test]
    fn canonical_form_is_whitespace_and_order_insensitive() {
        let a = parse(br#"{"x": 1, "y": [2, 3]}"#).unwrap();
        let b = parse(b"{\n  \"y\": [ 2,3 ],\r\n  \"x\": 1\n}").unwrap();
        assert_eq!(a.to_canonical_string(), b.to_canonical_string());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(b"{").is_err());
        assert!(parse(b"[1,]").is_err());
        assert!(parse(b"{}extra").is_err());
        assert!(parse(br#"{"a" 1}"#).is_err());
        let deep: Vec<u8> =
            std::iter::repeat_n(b'[', 100).chain(std::iter::repeat_n(b']', 100)).collect();
        assert!(parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse(b"7").unwrap().as_u64(), Some(7));
        assert_eq!(parse(b"7.5").unwrap().as_u64(), None);
        assert_eq!(parse(b"-7").unwrap().as_u64(), None);
    }
}
