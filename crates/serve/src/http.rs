//! A deliberately small HTTP/1.1 layer: enough to parse one request per
//! connection and write one `Connection: close` response. No keep-alive, no
//! chunked encoding, no TLS — the server is an in-cluster compilation sidecar,
//! not an edge proxy.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest request body accepted (a 10-qudit dense target is ~32 MiB of JSON;
/// anything bigger is out of the partition front-end's reach anyway).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// How long a connection may sit idle mid-request before the read fails. Keeps
/// half-open sockets from pinning connection threads across a shutdown.
pub const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// The request path, query string included.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Reads one request from the stream.
///
/// # Errors
///
/// Returns a message for malformed request lines, unparsable or oversized
/// `Content-Length`, timeouts, and short reads.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream.set_read_timeout(Some(READ_TIMEOUT)).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("request line missing path")?.to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| format!("reading header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("invalid content-length {value:?}"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body of {content_length} bytes exceeds limit of {MAX_BODY_BYTES}"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| format!("reading body: {e}"))?;
    Ok(Request { method, path, body })
}

/// Writes one JSON response and flushes. `extra_headers` lets the server attach
/// metadata (e.g. `x-openqudit-dedup`) without touching the body — response
/// *bodies* stay byte-identical for deduplicated requests.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra_headers: &[(String, String)],
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The standard reason phrase for each status the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}
