//! The `/compile` request schema: parsing, validation, and the canonical dedup key.
//!
//! ```json
//! {
//!   "target": {"gate": "CNOT"} | {"matrix": [[[re, im], ...], ...]},
//!   "radices": [2, 2],
//!   "seed": 0,
//!   "backend": "scalar" | "blocked",
//!   "optimize": "off" | "instructions" | "full",
//!   "coupling": [[0, 1], [1, 2]],
//!   "deadline_ms": 1000,
//!   "omit_timings": true,
//!   "debug": {"hold_ms": 50, "panic": true}
//! }
//! ```
//!
//! Only `target` and `radices` are required. `debug` is honored solely when the
//! server was started with debug hooks enabled (tests and load generators);
//! otherwise its presence fails the request.

use qudit_circuit::gates;
use qudit_compile::OptimizeLevel;
use qudit_synth::{BackendKind, CouplingGraph, SynthesisConfig};
use qudit_tensor::{Complex, Matrix};

use crate::json::{self, Json};

/// A validated compilation request.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// The unitary to synthesize.
    pub target: Matrix<f64>,
    /// Per-qudit dimensions.
    pub radices: Vec<usize>,
    /// The engine seed (default 0). Same seed, same request, same bytes out.
    pub seed: u64,
    /// Per-request TNVM tier override (`None` keeps the process default).
    pub backend: Option<BackendKind>,
    /// Per-request verified bytecode-optimization level (`None` keeps the
    /// process default, i.e. the compiler's `OPENQUDIT_OPTIMIZE`-derived level).
    pub optimize: Option<OptimizeLevel>,
    /// Explicit coupling graph (`None` uses the default line).
    pub coupling: Option<CouplingGraph>,
    /// Per-request latency budget in milliseconds (`None` uses the server default).
    pub deadline_ms: Option<u64>,
    /// Whether to drop the (nondeterministic) per-pass timings from the response
    /// body, making same-seed response bodies byte-comparable.
    pub omit_timings: bool,
    /// Debug hook: hold the worker for this many milliseconds before compiling.
    pub debug_hold_ms: u64,
    /// Debug hook: panic inside the worker instead of compiling.
    pub debug_panic: bool,
}

impl CompileRequest {
    /// Builds the engine-facing synthesis configuration for this request.
    pub fn synthesis_config(&self) -> SynthesisConfig {
        let mut config = SynthesisConfig::with_radices(self.radices.clone());
        config.seed = self.seed;
        if let Some(coupling) = &self.coupling {
            config.coupling = coupling.clone();
        }
        if let Some(backend) = self.backend {
            config.backend = backend;
            config.instantiate.backend = backend;
        }
        config
    }
}

/// Parses and validates a `/compile` body, returning the request plus its dedup
/// key — the FNV-1a hash of the body's canonical serialization, so requests
/// differing only in whitespace or key order still join the same in-flight
/// compile.
///
/// # Errors
///
/// Returns a client-facing message (the server maps it to 400) naming the bad
/// field and, for enums, the accepted set.
pub fn parse_compile_request(
    body: &[u8],
    debug_hooks: bool,
) -> Result<(CompileRequest, u64), String> {
    let doc = json::parse(body).map_err(|e| format!("malformed JSON: {e}"))?;
    let obj = doc.as_obj().ok_or("request body must be a JSON object")?;

    const KNOWN: [&str; 9] = [
        "target",
        "radices",
        "seed",
        "backend",
        "optimize",
        "coupling",
        "deadline_ms",
        "omit_timings",
        "debug",
    ];
    for key in obj.keys() {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("unknown field {key:?}; accepted fields: {}", KNOWN.join(", ")));
        }
    }

    let radices = parse_radices(doc.get("radices").ok_or("missing required field \"radices\"")?)?;
    let target = parse_target(doc.get("target").ok_or("missing required field \"target\"")?)?;
    let dim: usize = radices.iter().product();
    if target.rows() != dim || target.cols() != dim {
        return Err(format!(
            "target is {}x{} but radices {radices:?} imply {dim}x{dim}",
            target.rows(),
            target.cols()
        ));
    }

    let seed = match doc.get("seed") {
        None => 0,
        Some(v) => v.as_u64().ok_or("\"seed\" must be a non-negative integer")?,
    };
    let backend = match doc.get("backend") {
        None => None,
        Some(v) => {
            let name = v.as_str().ok_or("\"backend\" must be a string")?;
            Some(BackendKind::parse(name).ok_or_else(|| {
                format!("unknown backend {name:?}; accepted values: scalar, blocked")
            })?)
        }
    };
    let optimize = match doc.get("optimize") {
        None => None,
        Some(v) => {
            let name = v.as_str().ok_or("\"optimize\" must be a string")?;
            Some(OptimizeLevel::parse(name).ok_or_else(|| {
                format!("unknown optimize level {name:?}; accepted values: off, instructions, full")
            })?)
        }
    };
    let coupling = match doc.get("coupling") {
        None => None,
        Some(v) => Some(parse_coupling(v, radices.len())?),
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or("\"deadline_ms\" must be a non-negative integer")?),
    };
    let omit_timings = match doc.get("omit_timings") {
        None => false,
        Some(v) => v.as_bool().ok_or("\"omit_timings\" must be a boolean")?,
    };

    let (debug_hold_ms, debug_panic) = match doc.get("debug") {
        None => (0, false),
        Some(_) if !debug_hooks => {
            return Err("\"debug\" hooks are disabled on this server".to_string());
        }
        Some(v) => {
            let hold = v.get("hold_ms").map(|h| h.as_u64()).unwrap_or(Some(0));
            let hold = hold.ok_or("\"debug.hold_ms\" must be a non-negative integer")?;
            let panic = v.get("panic").map(|p| p.as_bool()).unwrap_or(Some(false));
            let panic = panic.ok_or("\"debug.panic\" must be a boolean")?;
            (hold, panic)
        }
    };

    let key = fnv1a(doc.to_canonical_string().as_bytes());
    Ok((
        CompileRequest {
            target,
            radices,
            seed,
            backend,
            optimize,
            coupling,
            deadline_ms,
            omit_timings,
            debug_hold_ms,
            debug_panic,
        },
        key,
    ))
}

fn parse_radices(value: &Json) -> Result<Vec<usize>, String> {
    let items = value.as_arr().ok_or("\"radices\" must be an array of integers >= 2")?;
    if items.is_empty() {
        return Err("\"radices\" must be non-empty".to_string());
    }
    let mut radices = Vec::with_capacity(items.len());
    for item in items {
        let r = item.as_u64().ok_or("\"radices\" entries must be integers")?;
        if !(2..=16).contains(&r) {
            return Err(format!("radix {r} out of supported range 2..=16"));
        }
        radices.push(r as usize);
    }
    Ok(radices)
}

fn parse_target(value: &Json) -> Result<Matrix<f64>, String> {
    if let Some(name) = value.get("gate").and_then(Json::as_str) {
        let expr = gates::all_gates()
            .into_iter()
            .find(|(gate_name, _)| *gate_name == name)
            .map(|(_, expr)| expr)
            .ok_or_else(|| {
                let names: Vec<&str> = gates::all_gates().iter().map(|(n, _)| *n).collect();
                format!("unknown gate {name:?}; known gates: {}", names.join(", "))
            })?;
        return expr
            .to_matrix::<f64>(&[])
            .map_err(|e| format!("gate {name:?} is not a constant target: {e}"));
    }
    if let Some(rows) = value.get("matrix").and_then(Json::as_arr) {
        let n = rows.len();
        let mut entries = Vec::with_capacity(n * n);
        for row in rows {
            let row = row.as_arr().ok_or("\"target.matrix\" rows must be arrays")?;
            if row.len() != n {
                return Err(format!("target matrix must be square; got a row of {}", row.len()));
            }
            for cell in row {
                let pair = cell.as_arr().ok_or("matrix entries must be [re, im] pairs")?;
                if pair.len() != 2 {
                    return Err("matrix entries must be [re, im] pairs".to_string());
                }
                let re = pair[0].as_f64().ok_or("matrix entry components must be numbers")?;
                let im = pair[1].as_f64().ok_or("matrix entry components must be numbers")?;
                entries.push(Complex { re, im });
            }
        }
        let mut iter = entries.into_iter();
        return Ok(Matrix::from_fn(n, n, |_, _| iter.next().unwrap()));
    }
    Err("\"target\" must be {\"gate\": name} or {\"matrix\": [[[re, im], ...], ...]}".to_string())
}

fn parse_coupling(value: &Json, num_qudits: usize) -> Result<CouplingGraph, String> {
    let items = value.as_arr().ok_or("\"coupling\" must be an array of [a, b] pairs")?;
    let mut edges = Vec::with_capacity(items.len());
    for item in items {
        let pair = item.as_arr().ok_or("coupling edges must be [a, b] pairs")?;
        if pair.len() != 2 {
            return Err("coupling edges must be [a, b] pairs".to_string());
        }
        let a = pair[0].as_u64().ok_or("coupling endpoints must be integers")?;
        let b = pair[1].as_u64().ok_or("coupling endpoints must be integers")?;
        edges.push((a as usize, b as usize));
    }
    // Structural validation only (range, self-loops). Connectivity is the
    // *compiler's* call: a disconnected graph must travel to the pipeline and
    // come back as a typed 422, exercising the panic-free degenerate path.
    CouplingGraph::new(num_qudits, edges).map_err(|e| e.to_string())
}

/// 64-bit FNV-1a — the dedup key hash. Not cryptographic; a collision merely
/// joins two requests, and the canonical byte strings are attacker-visible
/// anyway (the server trusts its callers — it sits behind the cluster edge).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_gate_requests_parse_and_dedup_by_canonical_bytes() {
        let a = br#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 3}"#;
        let b = b"{\"seed\":3,\"radices\":[2,2],\"target\":{\"gate\":\"CNOT\"}}";
        let (req_a, key_a) = parse_compile_request(a, false).unwrap();
        let (_req_b, key_b) = parse_compile_request(b, false).unwrap();
        assert_eq!(req_a.target.rows(), 4);
        assert_eq!(req_a.seed, 3);
        assert_eq!(key_a, key_b, "whitespace/key-order variants must share a dedup key");
    }

    #[test]
    fn different_requests_get_different_keys() {
        let a = br#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 0}"#;
        let b = br#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "seed": 1}"#;
        let (_, key_a) = parse_compile_request(a, false).unwrap();
        let (_, key_b) = parse_compile_request(b, false).unwrap();
        assert_ne!(key_a, key_b);
    }

    #[test]
    fn explicit_matrix_targets_parse() {
        // A 2x2 identity as [re, im] pairs.
        let body =
            br#"{"target": {"matrix": [[[1, 0], [0, 0]], [[0, 0], [1, 0]]]}, "radices": [2]}"#;
        let (req, _) = parse_compile_request(body, false).unwrap();
        assert_eq!(req.target.rows(), 2);
        assert_eq!(req.target.get(0, 0).re, 1.0);
        assert_eq!(req.target.get(1, 0).re, 0.0);
    }

    #[test]
    fn validation_names_the_offending_field() {
        let cases: [(&[u8], &str); 7] = [
            (br#"{"radices": [2, 2]}"#, "target"),
            (br#"{"target": {"gate": "NOPE"}, "radices": [2, 2]}"#, "known gates"),
            (
                br#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "backend": "simd"}"#,
                "scalar, blocked",
            ),
            (
                br#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "optimize": "max"}"#,
                "off, instructions, full",
            ),
            (br#"{"target": {"gate": "CNOT"}, "radices": [2], "seed": 0}"#, "imply"),
            (br#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "bogus": 1}"#, "unknown field"),
            (br#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "debug": {}}"#, "disabled"),
        ];
        for (body, needle) in cases {
            let err = parse_compile_request(body, false).unwrap_err();
            assert!(err.contains(needle), "expected {needle:?} in {err:?}");
        }
    }

    #[test]
    fn optimize_level_parses_per_request() {
        let body = br#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "optimize": "full"}"#;
        let (req, _) = parse_compile_request(body, false).unwrap();
        assert_eq!(req.optimize, Some(OptimizeLevel::Full));
        let body = br#"{"target": {"gate": "CNOT"}, "radices": [2, 2]}"#;
        let (req, _) = parse_compile_request(body, false).unwrap();
        assert_eq!(req.optimize, None);
    }

    #[test]
    fn debug_hooks_parse_when_enabled() {
        let body =
            br#"{"target": {"gate": "CNOT"}, "radices": [2, 2], "debug": {"hold_ms": 25, "panic": true}}"#;
        let (req, _) = parse_compile_request(body, true).unwrap();
        assert_eq!(req.debug_hold_ms, 25);
        assert!(req.debug_panic);
    }
}
