//! The compilation server: a bounded work queue of [`CompilationTask`]s over one
//! process-wide [`Compiler`] and shared [`ExpressionCache`].
//!
//! ## Endpoints
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `POST /compile` | Synthesize one target; see [`crate::request`] for the schema |
//! | `GET /metrics` | Process-level counter/cache/timing snapshot |
//! | `GET /healthz` | Liveness probe |
//!
//! ## Isolation guarantees
//!
//! One bad request cannot kill the process: degenerate inputs come back as typed
//! 4xx errors from the pipeline's fallible paths, an expired deadline aborts the
//! compilation at the next cooperative checkpoint (504), a full queue sheds load
//! (429), and a panicking compile is caught at the worker boundary (500) while
//! the worker thread survives to take the next job.

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use qudit_compile::{
    CancelReason, CancelToken, CompilationReport, CompilationTask, CompileError, Compiler,
};
use qudit_qvm::ExpressionCache;
use qudit_trace::TraceRegistry;

use crate::http::{read_request, write_response, Request};
use crate::json::Json;
use crate::request::{parse_compile_request, CompileRequest};

/// Server capacity and behavior knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Number of compile worker threads.
    pub workers: usize,
    /// Maximum number of requests waiting for a worker before the server sheds
    /// load with 429 responses.
    pub queue_capacity: usize,
    /// Engine threads each compile may use. `0` budgets automatically:
    /// `max(1, available_parallelism / workers)`, so the request pool and the
    /// frontier's parallelism split the machine instead of oversubscribing it.
    pub threads_per_compile: usize,
    /// Expression-cache capacity (entries). `0` means unbounded.
    pub cache_capacity: usize,
    /// Default per-request deadline in milliseconds when the request carries
    /// none. `0` disables the default (requests without `deadline_ms` run
    /// unbounded).
    pub default_deadline_ms: u64,
    /// Whether `/compile` honors the `debug` hook object (hold/panic). Only
    /// tests and load generators enable this.
    pub debug_hooks: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 32,
            threads_per_compile: 0,
            cache_capacity: 0,
            default_deadline_ms: 0,
            debug_hooks: false,
        }
    }
}

/// The terminal outcome of one admitted request, shared verbatim with every
/// deduplicated joiner — bodies are byte-identical by construction.
#[derive(Debug, Clone)]
struct Outcome {
    status: u16,
    body: String,
}

/// The rendezvous cell a request waits on. The leader (or the worker running
/// its compile) fills it once; joiners block on the condvar until then.
#[derive(Debug, Default)]
struct Slot {
    done: Mutex<Option<Outcome>>,
    cv: Condvar,
}

impl Slot {
    fn fill(&self, outcome: Outcome) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> Outcome {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = done.as_ref() {
                return outcome.clone();
            }
            done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One admitted compile waiting for a worker.
struct Job {
    request: CompileRequest,
    token: CancelToken,
    slot: Arc<Slot>,
    dedup_key: u64,
}

/// Per-pass wall-clock accumulation for `/metrics` (aggregated from
/// [`CompilationReport`] timings — the serve layer itself reads no clocks).
#[derive(Debug, Default, Clone, Copy)]
struct PassStat {
    count: u64,
    total_us: u64,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    config: ServeConfig,
    compiler: Compiler,
    registry: TraceRegistry,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    inflight: Mutex<BTreeMap<u64, Arc<Slot>>>,
    pass_timings: Mutex<BTreeMap<String, PassStat>>,
    stop: AtomicBool,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_inflight(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, Arc<Slot>>> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The compilation server.
pub struct Server;

impl Server {
    /// Binds the listener, spawns the worker pool and accept loop, and returns
    /// a handle. The server runs until [`ServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let threads_per_compile = if config.threads_per_compile != 0 {
            config.threads_per_compile
        } else {
            (qudit_optimize::resolve_threads(0) / workers).max(1)
        };
        let cache = if config.cache_capacity != 0 {
            ExpressionCache::with_capacity(config.cache_capacity)
        } else {
            ExpressionCache::new()
        };
        let compiler =
            Compiler::with_cache(cache).partitioned_passes().threads(threads_per_compile);
        let registry = TraceRegistry::new();
        // Pre-register the optimizer's rejection counter at zero: `/metrics`
        // consumers alert on it, and "never rejected" must read as 0 — absence
        // would be indistinguishable from "optimizer never wired in".
        registry.add("analyze.optimize.rejected", 0);
        let shared = Arc::new(Shared {
            config,
            compiler,
            registry,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            inflight: Mutex::new(BTreeMap::new()),
            pass_timings: Mutex::new(BTreeMap::new()),
            stop: AtomicBool::new(false),
        });

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("qudit-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("qudit-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        Ok(ServerHandle { addr, shared, accept_handle, worker_handles })
    }
}

/// A running server: its bound address and the shutdown lever.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: std::thread::JoinHandle<()>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The process-level metrics registry (serve counters plus every absorbed
    /// per-compilation counter snapshot).
    pub fn registry(&self) -> &TraceRegistry {
        &self.shared.registry
    }

    /// The shared expression cache behind the process-wide compiler.
    pub fn cache(&self) -> &ExpressionCache {
        self.shared.compiler.cache()
    }

    /// Stops accepting, drains the queue (every admitted request still gets a
    /// response), and joins the worker pool.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; it re-checks the
        // stop flag before handling anything.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        let _ = self.accept_handle.join();
        for handle in self.worker_handles {
            self.shared.queue_cv.notify_all();
            let _ = handle.join();
        }
    }

    /// Blocks until the accept loop exits (for the CLI binary's main thread).
    pub fn join(self) {
        let _ = self.accept_handle.join();
        for handle in self.worker_handles {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Connection threads are short-lived (one request, one response) and
        // bounded by the HTTP read timeout, so they run detached.
        let _ = std::thread::Builder::new()
            .name("qudit-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(detail) => {
            let body = error_body(&detail, "bad-request");
            let _ = write_response(&mut stream, 400, &body, &[]);
            return;
        }
    };
    let (status, body, headers) = route(&request, shared);
    let _ = write_response(&mut stream, status, &body, &headers);
}

fn route(request: &Request, shared: &Arc<Shared>) -> (u16, String, Vec<(String, String)>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/compile") => handle_compile(&request.body, shared),
        ("GET", "/metrics") => (200, metrics_body(shared), Vec::new()),
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".to_string(), Vec::new()),
        ("POST" | "GET", _) => (404, error_body("no such endpoint", "not-found"), Vec::new()),
        _ => (405, error_body("method not allowed", "method-not-allowed"), Vec::new()),
    }
}

/// Admits, deduplicates, enqueues, and waits out one `/compile` request.
fn handle_compile(body: &[u8], shared: &Arc<Shared>) -> (u16, String, Vec<(String, String)>) {
    shared.registry.add("serve.requests", 1);
    let (request, dedup_key) = match parse_compile_request(body, shared.config.debug_hooks) {
        Ok(parsed) => parsed,
        Err(detail) => {
            shared.registry.add("serve.rejected_invalid", 1);
            return (400, error_body(&detail, "bad-request"), Vec::new());
        }
    };

    // Dedup: identical canonical bodies share one in-flight compile. The first
    // arrival (the leader) enqueues; everyone else joins its slot and receives
    // the byte-identical outcome. The role is reported in a response *header*
    // so dedup never perturbs response bodies.
    let (slot, leader) = {
        let mut inflight = shared.lock_inflight();
        match inflight.get(&dedup_key) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot = Arc::new(Slot::default());
                inflight.insert(dedup_key, Arc::clone(&slot));
                (slot, true)
            }
        }
    };
    if !leader {
        shared.registry.add("serve.dedup_joined", 1);
        let outcome = slot.wait();
        let headers = vec![("x-openqudit-dedup".to_string(), "joined".to_string())];
        return (outcome.status, outcome.body, headers);
    }

    // The deadline clock starts at admission, so time spent waiting in the
    // queue counts against the request's budget.
    let deadline_ms = match request.deadline_ms {
        Some(ms) => ms,
        None => shared.config.default_deadline_ms,
    };
    let token = if deadline_ms != 0 {
        CancelToken::with_deadline(Duration::from_millis(deadline_ms))
    } else {
        CancelToken::new()
    };

    let admitted = {
        let mut queue = shared.lock_queue();
        if queue.len() >= shared.config.queue_capacity {
            false
        } else {
            queue.push_back(Job { request, token, slot: Arc::clone(&slot), dedup_key });
            shared.queue_cv.notify_one();
            true
        }
    };
    if !admitted {
        shared.registry.add("serve.rejected_queue_full", 1);
        // Fill the slot *before* removing the inflight entry, so a racing
        // joiner observes the 429 instead of hanging on an orphaned slot.
        let outcome = Outcome {
            status: 429,
            body: error_body("compile queue is full; retry later", "queue-full"),
        };
        slot.fill(outcome.clone());
        shared.lock_inflight().remove(&dedup_key);
        let headers = vec![("x-openqudit-dedup".to_string(), "leader".to_string())];
        return (outcome.status, outcome.body, headers);
    }

    let outcome = slot.wait();
    let headers = vec![("x-openqudit-dedup".to_string(), "leader".to_string())];
    (outcome.status, outcome.body, headers)
}

/// The worker loop: drains the queue until shutdown. The queue is fully drained
/// before exit so every admitted request receives a response.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.queue_cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        let outcome = run_job(&job, shared);
        // Fill before removing from inflight (mirror of the 429 path): a joiner
        // holding the slot must find the outcome, and a request arriving after
        // the removal simply starts a fresh compile.
        job.slot.fill(outcome);
        shared.lock_inflight().remove(&job.dedup_key);
    }
}

/// Runs one compile inside a panic boundary and maps the outcome to a response.
fn run_job(job: &Job, shared: &Arc<Shared>) -> Outcome {
    if job.request.debug_hold_ms != 0 {
        std::thread::sleep(Duration::from_millis(job.request.debug_hold_ms));
    }
    let request = &job.request;
    let mut task = CompilationTask::new(request.target.clone(), request.synthesis_config());
    // Per-request optimize level rides the task: the compiler is process-wide
    // and shared, so its own level must not be mutated per request.
    task.optimize = request.optimize;
    let compiled = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if request.debug_panic {
            panic!("debug panic requested");
        }
        shared.compiler.compile_with_cancel(task, &job.token)
    }));
    match compiled {
        Ok(Ok(report)) => {
            shared.registry.add("serve.compiles", 1);
            shared.registry.absorb_counters(&report.trace);
            record_pass_timings(shared, &report);
            Outcome { status: 200, body: success_body(request, &report) }
        }
        Ok(Err(CompileError::Cancelled { after, reason })) => {
            let (counter, status) = match reason {
                CancelReason::DeadlineExceeded => ("serve.deadline_exceeded", 504),
                CancelReason::Cancelled => ("serve.cancelled", 504),
            };
            shared.registry.add(counter, 1);
            let detail = format!("compilation {reason} (checkpoint: {after})");
            Outcome { status, body: error_body(&detail, "deadline-exceeded") }
        }
        Ok(Err(error)) => {
            shared.registry.add("serve.rejected_compile", 1);
            Outcome { status: 422, body: error_body(&error.to_string(), kind_of(&error)) }
        }
        Err(panic) => {
            // The panic boundary: the worker survives, the request gets a 500,
            // and the next job runs on a process that never noticed.
            shared.registry.add("serve.panics", 1);
            let detail = panic_message(&panic);
            Outcome {
                status: 500,
                body: error_body(&format!("compile panicked: {detail}"), "panic"),
            }
        }
    }
}

fn record_pass_timings(shared: &Arc<Shared>, report: &CompilationReport) {
    let mut timings = shared.pass_timings.lock().unwrap_or_else(PoisonError::into_inner);
    for timing in &report.timings {
        let stat = timings.entry(timing.pass.clone()).or_default();
        stat.count += 1;
        stat.total_us += timing.duration.as_micros() as u64;
    }
}

/// A stable kebab-case label for each error family, for clients that branch on
/// failures without parsing prose.
fn kind_of(error: &CompileError) -> &'static str {
    match error {
        CompileError::Synthesis(_) => "invalid-task",
        CompileError::Pass { .. } => "pass-failed",
        CompileError::Cancelled { .. } => "deadline-exceeded",
        CompileError::DegenerateCoupling { .. } => "degenerate-coupling",
        CompileError::Bytecode(_) => "bytecode",
        CompileError::Verify { .. } => "verification-failed",
        CompileError::NoResult => "no-result",
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn error_body(detail: &str, kind: &str) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("error".to_string(), Json::Str(detail.to_string()));
    obj.insert("kind".to_string(), Json::Str(kind.to_string()));
    obj.insert("status".to_string(), Json::Str("error".to_string()));
    Json::Obj(obj).to_canonical_string()
}

/// The 200 body. Metrics follow the workspace reporting split: `metrics` holds
/// the tier-invariant counters, `kernel_metrics` the tier-variant `tnvm.*` ones
/// — so cross-tier byte comparisons scrub exactly `backend` + `kernel_metrics`,
/// the same discipline as the CI determinism diff.
fn success_body(request: &CompileRequest, report: &CompilationReport) -> String {
    let result = &report.result;
    let mut obj = BTreeMap::new();
    let backend = request.backend.unwrap_or_default();
    obj.insert("backend".to_string(), Json::Str(backend.name().to_string()));
    obj.insert(
        "blocks".to_string(),
        Json::Arr(
            result
                .blocks
                .iter()
                .map(|&(a, b)| Json::Arr(vec![Json::Num(a as f64), Json::Num(b as f64)]))
                .collect(),
        ),
    );
    obj.insert("infidelity".to_string(), Json::Num(result.infidelity));
    let mut metrics = BTreeMap::new();
    let mut kernel_metrics = BTreeMap::new();
    for (name, value) in &report.metrics {
        let entry = Json::Num(*value as f64);
        if name.starts_with("tnvm.") {
            kernel_metrics.insert(name.clone(), entry);
        } else {
            metrics.insert(name.clone(), entry);
        }
    }
    obj.insert("kernel_metrics".to_string(), Json::Obj(kernel_metrics));
    obj.insert("metrics".to_string(), Json::Obj(metrics));
    obj.insert(
        "params".to_string(),
        Json::Arr(result.params.iter().map(|&p| Json::Num(p)).collect()),
    );
    obj.insert("status".to_string(), Json::Str("ok".to_string()));
    obj.insert("success".to_string(), Json::Bool(result.success));
    if !request.omit_timings && !qudit_trace::omit_timing() {
        obj.insert(
            "timings".to_string(),
            Json::Arr(
                report
                    .timings
                    .iter()
                    .map(|t| {
                        let mut timing = BTreeMap::new();
                        timing.insert("pass".to_string(), Json::Str(t.pass.clone()));
                        timing.insert("seconds".to_string(), Json::Num(t.duration.as_secs_f64()));
                        Json::Obj(timing)
                    })
                    .collect(),
            ),
        );
    }
    Json::Obj(obj).to_canonical_string()
}

/// The `/metrics` body: aggregated counters, cache occupancy, queue state, and
/// the per-pass timing accumulation.
fn metrics_body(shared: &Arc<Shared>) -> String {
    let mut obj = BTreeMap::new();
    let stats = shared.compiler.cache().stats();
    let mut cache = BTreeMap::new();
    cache.insert("entries".to_string(), Json::Num(stats.entries as f64));
    cache.insert("evictions".to_string(), Json::Num(stats.evictions as f64));
    cache.insert("hits".to_string(), Json::Num(stats.hits as f64));
    cache.insert("misses".to_string(), Json::Num(stats.misses as f64));
    obj.insert("cache".to_string(), Json::Obj(cache));
    obj.insert(
        "counters".to_string(),
        Json::Obj(
            shared
                .registry
                .counters()
                .into_iter()
                .map(|(name, value)| (name, Json::Num(value as f64)))
                .collect(),
        ),
    );
    obj.insert(
        "pass_timings".to_string(),
        Json::Obj(
            shared
                .pass_timings
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(name, stat)| {
                    let mut entry = BTreeMap::new();
                    entry.insert("count".to_string(), Json::Num(stat.count as f64));
                    entry.insert("total_us".to_string(), Json::Num(stat.total_us as f64));
                    (name.clone(), Json::Obj(entry))
                })
                .collect(),
        ),
    );
    let mut queue = BTreeMap::new();
    queue.insert("capacity".to_string(), Json::Num(shared.config.queue_capacity as f64));
    queue.insert("depth".to_string(), Json::Num(shared.lock_queue().len() as f64));
    obj.insert("queue".to_string(), Json::Obj(queue));
    obj.insert("workers".to_string(), Json::Num(shared.config.workers.max(1) as f64));
    Json::Obj(obj).to_canonical_string()
}
