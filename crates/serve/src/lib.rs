//! # qudit-serve
//!
//! Compilation-as-a-service for the OpenQudit reproduction: a long-lived,
//! dependency-free HTTP server that runs a bounded work queue of
//! [`CompilationTask`](qudit_compile::CompilationTask)s over one process-wide
//! [`Compiler`](qudit_compile::Compiler) and shared
//! [`ExpressionCache`](qudit_qvm::ExpressionCache) — so every request amortizes
//! the JIT work of every request before it.
//!
//! Like `qudit-trace`, the crate is std-only by design (the build environment
//! vendors no HTTP or JSON dependencies): [`crate::http`] is a minimal
//! HTTP/1.1 layer over [`std::net::TcpListener`], and [`crate::json`] a small
//! canonical JSON value.
//!
//! ## What the server guarantees
//!
//! * **Isolation** — one bad request cannot kill the process. Degenerate inputs
//!   fail typed (4xx), deadlines abort cooperatively between passes (504), a
//!   full queue sheds load (429), and a panicking compile is caught at the
//!   worker boundary (500) while the worker survives.
//! * **Deduplication** — concurrent requests with the same canonical body join
//!   one in-flight compile and receive byte-identical response bodies; the
//!   `x-openqudit-dedup` header says which role a response played.
//! * **Determinism** — same request, same seed, same bytes out (modulo the
//!   `timings` block, which `omit_timings` drops), across both TNVM tiers
//!   after scrubbing `backend` + `kernel_metrics`, exactly like the CI
//!   determinism diff.
//! * **Budgeted parallelism** — `threads_per_compile = 0` splits the machine
//!   between the worker pool and each compile's frontier parallelism instead of
//!   oversubscribing it.
//!
//! See `docs/serving.md` for the request schema, capacity knobs, and the
//! `/metrics` format.

pub mod http;
pub mod json;
pub mod request;
pub mod server;

pub use json::Json;
pub use request::{parse_compile_request, CompileRequest};
pub use server::{ServeConfig, Server, ServerHandle};
