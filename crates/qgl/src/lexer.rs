//! Lexer for the Qudit Gate Language.
//!
//! QGL sources are short (a gate definition is typically a handful of lines), so the
//! lexer simply materializes the full token stream. Identifiers may contain any Unicode
//! alphabetic character so that definitions can use the Greek letters (θ, ϕ, λ, …) that
//! appear in on-paper gate formulations (Listing 2 of the paper).

use crate::error::{QglError, Result};

/// A lexical token with its byte offset into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// The kinds of QGL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier (gate name, parameter, function, or reserved constant).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<`
    Less,
    /// `>`
    Greater,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `~` (QGL unary negation)
    Tilde,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::Less => write!(f, "'<'"),
            TokenKind::Greater => write!(f, "'>'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::Caret => write!(f, "'^'"),
            TokenKind::Tilde => write!(f, "'~'"),
        }
    }
}

/// Returns `true` if `c` may start an identifier.
fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Returns `true` if `c` may continue an identifier.
fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes a QGL source string.
///
/// # Errors
///
/// Returns [`QglError::UnexpectedCharacter`] or [`QglError::InvalidNumber`] on malformed
/// input. Comments are not part of the grammar (Fig. 2 of the paper) and are rejected.
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<(usize, char)> = source.char_indices().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let (offset, c) = chars[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset });
                i += 1;
            }
            '[' => {
                tokens.push(Token { kind: TokenKind::LBracket, offset });
                i += 1;
            }
            ']' => {
                tokens.push(Token { kind: TokenKind::RBracket, offset });
                i += 1;
            }
            '{' => {
                tokens.push(Token { kind: TokenKind::LBrace, offset });
                i += 1;
            }
            '}' => {
                tokens.push(Token { kind: TokenKind::RBrace, offset });
                i += 1;
            }
            '<' => {
                tokens.push(Token { kind: TokenKind::Less, offset });
                i += 1;
            }
            '>' => {
                tokens.push(Token { kind: TokenKind::Greater, offset });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset });
                i += 1;
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, offset });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, offset });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, offset });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, offset });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, offset });
                i += 1;
            }
            '^' => {
                tokens.push(Token { kind: TokenKind::Caret, offset });
                i += 1;
            }
            '~' => {
                tokens.push(Token { kind: TokenKind::Tilde, offset });
                i += 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut seen_dot = c == '.';
                i += 1;
                while i < chars.len() {
                    let ch = chars[i].1;
                    if ch.is_ascii_digit() {
                        i += 1;
                    } else if ch == '.' && !seen_dot {
                        seen_dot = true;
                        i += 1;
                    } else if (ch == 'e' || ch == 'E')
                        && i + 1 < chars.len()
                        && (chars[i + 1].1.is_ascii_digit()
                            || ((chars[i + 1].1 == '+' || chars[i + 1].1 == '-')
                                && i + 2 < chars.len()
                                && chars[i + 2].1.is_ascii_digit()))
                    {
                        // exponent part
                        i += 2;
                        while i < chars.len() && chars[i].1.is_ascii_digit() {
                            i += 1;
                        }
                        break;
                    } else {
                        break;
                    }
                }
                let end = if i < chars.len() { chars[i].0 } else { source.len() };
                let text = &source[offset..end];
                let value: f64 = text
                    .parse()
                    .map_err(|_| QglError::InvalidNumber { text: text.to_string(), offset })?;
                tokens.push(Token { kind: TokenKind::Number(value), offset });
                let _ = start;
            }
            c if is_ident_start(c) => {
                let start_offset = offset;
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i].1) {
                    i += 1;
                }
                let end = if i < chars.len() { chars[i].0 } else { source.len() };
                let text = source[start_offset..end].to_string();
                tokens.push(Token { kind: TokenKind::Ident(text), offset: start_offset });
            }
            other => {
                return Err(QglError::UnexpectedCharacter { ch: other, offset });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        let k = kinds("( ) [ ] { } < > , ; + - * / ^ ~");
        assert_eq!(k.len(), 16);
        assert_eq!(k[0], TokenKind::LParen);
        assert_eq!(k[15], TokenKind::Tilde);
    }

    #[test]
    fn numbers() {
        let k = kinds("2 3.5 0.25 1e3 2.5e-2");
        assert_eq!(
            k,
            vec![
                TokenKind::Number(2.0),
                TokenKind::Number(3.5),
                TokenKind::Number(0.25),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.025),
            ]
        );
    }

    #[test]
    fn unicode_identifiers() {
        let k = kinds("U3(θ, ϕ, λ)");
        assert_eq!(k[0], TokenKind::Ident("U3".into()));
        assert_eq!(k[2], TokenKind::Ident("θ".into()));
        assert_eq!(k[4], TokenKind::Ident("ϕ".into()));
        assert_eq!(k[6], TokenKind::Ident("λ".into()));
    }

    #[test]
    fn full_gate_listing_tokenizes() {
        let src = "U3(θ,ϕ,λ) { [[ cos(θ/2), ~e^(i*λ)*sin(θ/2) ], [ e^(i*ϕ)*sin(θ/2), e^(i*(ϕ+λ))*cos(θ/2) ]] }";
        let toks = tokenize(src).unwrap();
        assert!(toks.len() > 40);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Tilde));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Caret));
    }

    #[test]
    fn offsets_point_into_source() {
        let src = "RX(a) { [[a]] }";
        let toks = tokenize(src).unwrap();
        for t in &toks {
            assert!(t.offset < src.len());
        }
        assert_eq!(toks[0].offset, 0);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(matches!(tokenize("U3 $ x"), Err(QglError::UnexpectedCharacter { ch: '$', .. })));
        assert!(matches!(tokenize("a # b"), Err(QglError::UnexpectedCharacter { .. })));
    }

    #[test]
    fn number_followed_by_identifier() {
        let k = kinds("2*pi");
        assert_eq!(k, vec![TokenKind::Number(2.0), TokenKind::Star, TokenKind::Ident("pi".into())]);
    }

    #[test]
    fn display_of_token_kinds() {
        assert_eq!(TokenKind::LBrace.to_string(), "'{'");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier 'x'");
        assert_eq!(TokenKind::Number(1.5).to_string(), "number 1.5");
    }
}
