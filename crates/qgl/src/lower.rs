//! Lowering of QGL abstract syntax into the symbolic complex-matrix IR.
//!
//! The lowering walks the AST produced by [`crate::parser`] and evaluates it
//! symbolically: every node becomes either a scalar [`ComplexExpr`] or a matrix of them.
//! The reserved variables `i`, `e`, and `π`/`pi` take their usual mathematical values,
//! trigonometric functions are canonicalized to `sin`/`cos` (e.g. `tan x → sin x / cos x`),
//! and complex exponentials are expanded with Euler's formula so that each matrix element
//! ends up with separate closed-form real and imaginary trees (Sec. III-B of the paper).

use crate::ast::{AstExpr, BinaryOp};
use crate::error::{QglError, Result};
use crate::expr::{ComplexExpr, Expr};

/// The result of symbolically evaluating a QGL expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar complex symbolic value.
    Scalar(ComplexExpr),
    /// A matrix of complex symbolic values (row-major, rectangular).
    Matrix(Vec<Vec<ComplexExpr>>),
}

impl Value {
    /// Returns the matrix form, treating a scalar as a 1×1 matrix.
    pub fn into_matrix(self) -> Vec<Vec<ComplexExpr>> {
        match self {
            Value::Scalar(s) => vec![vec![s]],
            Value::Matrix(m) => m,
        }
    }
}

/// Lowers an AST expression into a [`Value`], given the declared parameter names.
///
/// # Errors
///
/// Returns a [`QglError`] for unknown functions, wrong arities, transcendental functions
/// of complex arguments, or shape-incompatible matrix arithmetic.
pub fn lower(ast: &AstExpr, params: &[String]) -> Result<Value> {
    match ast {
        AstExpr::Number(n) => Ok(Value::Scalar(ComplexExpr::from_const(*n))),
        AstExpr::Variable(name) => lower_variable(name, params),
        AstExpr::Neg(inner) => match lower(inner, params)? {
            Value::Scalar(s) => Ok(Value::Scalar(s.neg())),
            Value::Matrix(m) => Ok(Value::Matrix(
                m.into_iter().map(|row| row.into_iter().map(|e| e.neg()).collect()).collect(),
            )),
        },
        AstExpr::Call { name, args } => lower_call(name, args, params),
        AstExpr::Binary { op, lhs, rhs } => {
            let l = lower(lhs, params)?;
            let r = lower(rhs, params)?;
            lower_binary(*op, l, r)
        }
        AstExpr::Matrix(rows) => {
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut out_row = Vec::with_capacity(row.len());
                for element in row {
                    match lower(element, params)? {
                        Value::Scalar(s) => out_row.push(s),
                        Value::Matrix(_) => {
                            return Err(QglError::DimensionMismatch {
                                op: "nested matrix literal".to_string(),
                            })
                        }
                    }
                }
                out.push(out_row);
            }
            Ok(Value::Matrix(out))
        }
    }
}

fn lower_variable(name: &str, params: &[String]) -> Result<Value> {
    match name {
        "i" => Ok(Value::Scalar(ComplexExpr::i())),
        "e" => Ok(Value::Scalar(ComplexExpr::from_const(std::f64::consts::E))),
        "pi" | "π" => Ok(Value::Scalar(ComplexExpr::from_real(Expr::Pi))),
        _ => {
            if params.iter().any(|p| p == name) {
                Ok(Value::Scalar(ComplexExpr::from_real(Expr::var(name))))
            } else {
                Err(QglError::ParameterMismatch {
                    detail: format!("variable '{name}' is not a declared parameter"),
                })
            }
        }
    }
}

fn require_real(name: &str, arg: &ComplexExpr) -> Result<Expr> {
    if arg.im.is_zero() {
        Ok(arg.re.clone())
    } else {
        Err(QglError::ComplexArgument { name: name.to_string() })
    }
}

fn lower_call(name: &str, args: &[AstExpr], params: &[String]) -> Result<Value> {
    let lowered: Vec<Value> = args.iter().map(|a| lower(a, params)).collect::<Result<Vec<_>>>()?;
    let scalars: Vec<ComplexExpr> = lowered
        .iter()
        .map(|v| match v {
            Value::Scalar(s) => Ok(s.clone()),
            Value::Matrix(_) => Err(QglError::DimensionMismatch {
                op: format!("matrix argument to function '{name}'"),
            }),
        })
        .collect::<Result<Vec<_>>>()?;

    let arity = |n: usize| -> Result<()> {
        if scalars.len() != n {
            Err(QglError::WrongArity { name: name.to_string(), expected: n, found: scalars.len() })
        } else {
            Ok(())
        }
    };

    match name {
        "sin" => {
            arity(1)?;
            let x = require_real(name, &scalars[0])?;
            Ok(Value::Scalar(ComplexExpr::from_real(Expr::sin(x))))
        }
        "cos" => {
            arity(1)?;
            let x = require_real(name, &scalars[0])?;
            Ok(Value::Scalar(ComplexExpr::from_real(Expr::cos(x))))
        }
        "tan" => {
            // Canonicalized to sin/cos for uniform processing downstream.
            arity(1)?;
            let x = require_real(name, &scalars[0])?;
            Ok(Value::Scalar(ComplexExpr::from_real(Expr::div(Expr::sin(x.clone()), Expr::cos(x)))))
        }
        "sqrt" => {
            arity(1)?;
            let x = require_real(name, &scalars[0])?;
            Ok(Value::Scalar(ComplexExpr::from_real(Expr::sqrt(x))))
        }
        "exp" => {
            arity(1)?;
            Ok(Value::Scalar(scalars[0].exp()))
        }
        "ln" => {
            arity(1)?;
            let x = require_real(name, &scalars[0])?;
            Ok(Value::Scalar(ComplexExpr::from_real(Expr::ln(x))))
        }
        "conj" => {
            arity(1)?;
            Ok(Value::Scalar(scalars[0].conj()))
        }
        "re" => {
            arity(1)?;
            Ok(Value::Scalar(ComplexExpr::from_real(scalars[0].re.clone())))
        }
        "im" => {
            arity(1)?;
            Ok(Value::Scalar(ComplexExpr::from_real(scalars[0].im.clone())))
        }
        _ => Err(QglError::UnknownFunction { name: name.to_string() }),
    }
}

fn lower_binary(op: BinaryOp, lhs: Value, rhs: Value) -> Result<Value> {
    use Value::{Matrix, Scalar};
    match (op, lhs, rhs) {
        (BinaryOp::Add, Scalar(a), Scalar(b)) => Ok(Scalar(a.add(&b))),
        (BinaryOp::Sub, Scalar(a), Scalar(b)) => Ok(Scalar(a.sub(&b))),
        (BinaryOp::Mul, Scalar(a), Scalar(b)) => Ok(Scalar(a.mul(&b))),
        (BinaryOp::Div, Scalar(a), Scalar(b)) => Ok(Scalar(a.div(&b))),
        (BinaryOp::Pow, Scalar(a), Scalar(b)) => lower_pow(a, b).map(Scalar),

        (BinaryOp::Add, Matrix(a), Matrix(b)) => {
            elementwise(a, b, "matrix addition", |x, y| x.add(y))
        }
        (BinaryOp::Sub, Matrix(a), Matrix(b)) => {
            elementwise(a, b, "matrix subtraction", |x, y| x.sub(y))
        }
        (BinaryOp::Mul, Matrix(a), Matrix(b)) => matmul(a, b),
        (BinaryOp::Mul, Scalar(s), Matrix(m)) | (BinaryOp::Mul, Matrix(m), Scalar(s)) => Ok(
            Matrix(m.into_iter().map(|row| row.into_iter().map(|e| e.mul(&s)).collect()).collect()),
        ),
        (BinaryOp::Div, Matrix(m), Scalar(s)) => Ok(Matrix(
            m.into_iter().map(|row| row.into_iter().map(|e| e.div(&s)).collect()).collect(),
        )),
        (BinaryOp::Pow, Matrix(m), Scalar(s)) => matrix_power(m, s),
        (op, l, r) => Err(QglError::DimensionMismatch {
            op: format!("{op:?} between {} and {}", kind_name(&l), kind_name(&r)),
        }),
    }
}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Scalar(_) => "scalar",
        Value::Matrix(_) => "matrix",
    }
}

fn lower_pow(base: ComplexExpr, exponent: ComplexExpr) -> Result<ComplexExpr> {
    // Integer exponents on arbitrary complex bases: repeated multiplication.
    if exponent.im.is_zero() {
        if let Some(e) = exponent.re.as_const() {
            if e.fract() == 0.0 && (0.0..=16.0).contains(&e) {
                let n = e as u32;
                let mut acc = ComplexExpr::one();
                for _ in 0..n {
                    acc = acc.mul(&base);
                }
                return Ok(acc);
            }
        }
    }
    // Real base, real exponent: stays in the real tree.
    if base.im.is_zero() && exponent.im.is_zero() {
        return Ok(ComplexExpr::from_real(Expr::pow(base.re, exponent.re)));
    }
    // Complex exponent: base must be a (symbolically) real, positive quantity so that
    // `base^z = exp(z · ln base)` has a closed element-wise form. The ubiquitous case is
    // base = e, for which ln(e) folds to 1 and the expansion is Euler's formula.
    if base.im.is_zero() {
        let ln_base = Expr::ln(base.re);
        let scaled = ComplexExpr::new(
            Expr::mul(exponent.re.clone(), ln_base.clone()),
            Expr::mul(exponent.im.clone(), ln_base),
        );
        return Ok(scaled.exp());
    }
    Err(QglError::ComplexArgument { name: "pow (complex base with complex exponent)".to_string() })
}

fn elementwise(
    a: Vec<Vec<ComplexExpr>>,
    b: Vec<Vec<ComplexExpr>>,
    op: &str,
    f: impl Fn(&ComplexExpr, &ComplexExpr) -> ComplexExpr,
) -> Result<Value> {
    if a.len() != b.len() || a.iter().zip(b.iter()).any(|(x, y)| x.len() != y.len()) {
        return Err(QglError::DimensionMismatch { op: op.to_string() });
    }
    Ok(Value::Matrix(
        a.iter()
            .zip(b.iter())
            .map(|(ra, rb)| ra.iter().zip(rb.iter()).map(|(x, y)| f(x, y)).collect())
            .collect(),
    ))
}

/// Symbolic matrix multiplication of two expression matrices.
pub fn matmul(a: Vec<Vec<ComplexExpr>>, b: Vec<Vec<ComplexExpr>>) -> Result<Value> {
    let (ar, ac) = (a.len(), a.first().map(|r| r.len()).unwrap_or(0));
    let (br, bc) = (b.len(), b.first().map(|r| r.len()).unwrap_or(0));
    if ac != br {
        return Err(QglError::DimensionMismatch { op: "matrix multiplication".to_string() });
    }
    let mut out = vec![vec![ComplexExpr::zero(); bc]; ar];
    for (i, out_row) in out.iter_mut().enumerate() {
        for (j, out_elem) in out_row.iter_mut().enumerate() {
            let mut acc = ComplexExpr::zero();
            for (k, b_row) in b.iter().enumerate() {
                let term = a[i][k].mul(&b_row[j]);
                if acc.is_zero() {
                    acc = term;
                } else if !term.is_zero() {
                    acc = acc.add(&term);
                }
            }
            *out_elem = acc;
        }
    }
    Ok(Value::Matrix(out))
}

fn matrix_power(m: Vec<Vec<ComplexExpr>>, s: ComplexExpr) -> Result<Value> {
    if !s.im.is_zero() {
        return Err(QglError::ComplexArgument { name: "matrix power".to_string() });
    }
    let e = s.re.as_const().ok_or_else(|| QglError::DimensionMismatch {
        op: "matrix power with non-constant exponent".to_string(),
    })?;
    if e.fract() != 0.0 || e < 0.0 {
        return Err(QglError::DimensionMismatch {
            op: "matrix power with non-natural exponent".to_string(),
        });
    }
    let n = m.len();
    if m.iter().any(|r| r.len() != n) {
        return Err(QglError::NotSquare { rows: n, cols: m.first().map(|r| r.len()).unwrap_or(0) });
    }
    let mut acc: Vec<Vec<ComplexExpr>> = (0..n)
        .map(|i| {
            (0..n).map(|j| if i == j { ComplexExpr::one() } else { ComplexExpr::zero() }).collect()
        })
        .collect();
    for _ in 0..(e as usize) {
        acc = match matmul(acc, m.clone())? {
            Value::Matrix(mm) => mm,
            Value::Scalar(_) => unreachable!("matmul of matrices returns a matrix"),
        };
    }
    Ok(Value::Matrix(acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    fn lower_str(src: &str, params: &[&str]) -> Result<Value> {
        let params: Vec<String> = params.iter().map(|s| s.to_string()).collect();
        lower(&parse_expression(src).unwrap(), &params)
    }

    fn eval_scalar(v: &Value, names: &[&str], vals: &[f64]) -> (f64, f64) {
        let names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        match v {
            Value::Scalar(s) => s.eval_with(&names, vals),
            Value::Matrix(_) => panic!("expected scalar"),
        }
    }

    #[test]
    fn reserved_constants() {
        let (re, im) = eval_scalar(&lower_str("i", &[]).unwrap(), &[], &[]);
        assert_eq!((re, im), (0.0, 1.0));
        let (re, _) = eval_scalar(&lower_str("pi", &[]).unwrap(), &[], &[]);
        assert!((re - std::f64::consts::PI).abs() < 1e-15);
        let (re, _) = eval_scalar(&lower_str("π/2", &[]).unwrap(), &[], &[]);
        assert!((re - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        let (re, _) = eval_scalar(&lower_str("e", &[]).unwrap(), &[], &[]);
        assert!((re - std::f64::consts::E).abs() < 1e-15);
    }

    #[test]
    fn undeclared_parameter_is_rejected() {
        assert!(matches!(lower_str("cos(theta)", &[]), Err(QglError::ParameterMismatch { .. })));
        assert!(lower_str("cos(theta)", &["theta"]).is_ok());
    }

    #[test]
    fn euler_formula_from_power_syntax() {
        let v = lower_str("e^(i*t)", &["t"]).unwrap();
        let (re, im) = eval_scalar(&v, &["t"], &[0.7]);
        assert!((re - 0.7f64.cos()).abs() < 1e-12);
        assert!((im - 0.7f64.sin()).abs() < 1e-12);
        // And no exp/ln node survives in the trees (Euler short-circuit + folding).
        if let Value::Scalar(s) = &v {
            assert!(!s.re.to_string().contains("exp"));
            assert!(!s.re.to_string().contains("ln"));
        }
    }

    #[test]
    fn negated_phase() {
        let v = lower_str("e^(~i*t/2)", &["t"]).unwrap();
        let (re, im) = eval_scalar(&v, &["t"], &[1.3]);
        assert!((re - (0.65f64).cos()).abs() < 1e-12);
        assert!((im + (0.65f64).sin()).abs() < 1e-12);
    }

    #[test]
    fn trig_canonicalization_of_tan() {
        let v = lower_str("tan(x)", &["x"]).unwrap();
        if let Value::Scalar(s) = &v {
            let txt = s.re.to_string();
            assert!(txt.contains("sin") && txt.contains("cos") && !txt.contains("tan"));
        }
        let (re, _) = eval_scalar(&v, &["x"], &[0.4]);
        assert!((re - 0.4f64.tan()).abs() < 1e-12);
    }

    #[test]
    fn complex_argument_to_sin_is_rejected() {
        assert!(matches!(lower_str("sin(i*x)", &["x"]), Err(QglError::ComplexArgument { .. })));
        assert!(matches!(lower_str("ln(i)", &[]), Err(QglError::ComplexArgument { .. })));
    }

    #[test]
    fn unknown_function_and_arity_errors() {
        assert!(matches!(lower_str("sinh(x)", &["x"]), Err(QglError::UnknownFunction { .. })));
        assert!(matches!(lower_str("sin(x, x)", &["x"]), Err(QglError::WrongArity { .. })));
    }

    #[test]
    fn matrix_scalar_operations() {
        let v = lower_str("2 * [[1, 0], [0, 1]]", &[]).unwrap();
        match v {
            Value::Matrix(m) => {
                let (re, _) = m[0][0].eval_with(&[], &[]);
                assert_eq!(re, 2.0);
            }
            _ => panic!("expected matrix"),
        }
        let v = lower_str("[[2, 0], [0, 2]] / 2", &[]).unwrap();
        match v {
            Value::Matrix(m) => {
                let (re, _) = m[1][1].eval_with(&[], &[]);
                assert_eq!(re, 1.0);
            }
            _ => panic!("expected matrix"),
        }
    }

    #[test]
    fn matrix_matmul_and_add() {
        // X * X = I
        let v = lower_str("[[0,1],[1,0]] * [[0,1],[1,0]]", &[]).unwrap();
        match v {
            Value::Matrix(m) => {
                assert_eq!(m[0][0].eval_with(&[], &[]), (1.0, 0.0));
                assert_eq!(m[0][1].eval_with(&[], &[]), (0.0, 0.0));
            }
            _ => panic!("expected matrix"),
        }
        let v = lower_str("[[1,0],[0,1]] + [[1,0],[0,1]]", &[]).unwrap();
        match v {
            Value::Matrix(m) => assert_eq!(m[1][1].eval_with(&[], &[]), (2.0, 0.0)),
            _ => panic!("expected matrix"),
        }
        assert!(lower_str("[[1,0],[0,1]] + [[1,0,0],[0,1,0]]", &[]).is_err());
        assert!(lower_str("[[1,0],[0,1]] * [[1,0,0]]", &[]).is_err());
    }

    #[test]
    fn matrix_power() {
        // X^2 = I
        let v = lower_str("[[0,1],[1,0]]^2", &[]).unwrap();
        match v {
            Value::Matrix(m) => {
                assert_eq!(m[0][0].eval_with(&[], &[]), (1.0, 0.0));
                assert_eq!(m[1][0].eval_with(&[], &[]), (0.0, 0.0));
            }
            _ => panic!("expected matrix"),
        }
        assert!(lower_str("[[0,1],[1,0]]^0.5", &[]).is_err());
        assert!(lower_str("[[0,1],[1,0]]^x", &["x"]).is_err());
    }

    #[test]
    fn integer_power_of_complex_scalar() {
        let v = lower_str("(i)^2", &[]).unwrap();
        assert_eq!(eval_scalar(&v, &[], &[]), (-1.0, 0.0));
        let v = lower_str("(1 + i)^2", &[]).unwrap();
        let (re, im) = eval_scalar(&v, &[], &[]);
        assert!((re - 0.0).abs() < 1e-12 && (im - 2.0).abs() < 1e-12);
    }

    #[test]
    fn conj_re_im_helpers() {
        let v = lower_str("conj(i)", &[]).unwrap();
        assert_eq!(eval_scalar(&v, &[], &[]), (0.0, -1.0));
        let v = lower_str("re(3 + 2*i)", &[]).unwrap();
        assert_eq!(eval_scalar(&v, &[], &[]).0, 3.0);
        let v = lower_str("im(3 + 2*i)", &[]).unwrap();
        assert_eq!(eval_scalar(&v, &[], &[]).0, 2.0);
    }

    #[test]
    fn nested_matrix_rejected() {
        assert!(lower_str("[[ [[1]] ]]", &[]).is_err());
    }
}
