//! Error types for QGL parsing and lowering.

use std::fmt;

/// An error produced while lexing, parsing, lowering, or validating a QGL definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QglError {
    /// The lexer encountered a character it does not understand.
    UnexpectedCharacter {
        /// The offending character.
        ch: char,
        /// Byte offset into the source.
        offset: usize,
    },
    /// A numeric literal could not be parsed.
    InvalidNumber {
        /// The literal text.
        text: String,
        /// Byte offset into the source.
        offset: usize,
    },
    /// The parser expected one token but found another (or end of input).
    UnexpectedToken {
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
        /// Byte offset into the source.
        offset: usize,
    },
    /// The source ended before the definition was complete.
    UnexpectedEof {
        /// What the parser expected next.
        expected: String,
    },
    /// A matrix literal has rows of differing lengths.
    RaggedMatrix {
        /// Length of the first row.
        expected: usize,
        /// Length of the offending row.
        found: usize,
    },
    /// A function call referenced an unknown function name.
    UnknownFunction {
        /// The function name.
        name: String,
    },
    /// A function was called with the wrong number of arguments.
    WrongArity {
        /// The function name.
        name: String,
        /// Expected argument count.
        expected: usize,
        /// Provided argument count.
        found: usize,
    },
    /// A non-`exp` transcendental function was applied to an argument with a nonzero
    /// imaginary part, which QGL's element-wise closed-form semantics do not allow.
    ComplexArgument {
        /// The function name.
        name: String,
    },
    /// The gate body did not evaluate to a matrix.
    NotAMatrix,
    /// The expression matrix is not square.
    NotSquare {
        /// Number of rows found.
        rows: usize,
        /// Number of columns found.
        cols: usize,
    },
    /// The declared radices do not match the matrix dimension.
    RadixMismatch {
        /// Product of the declared radices.
        expected_dim: usize,
        /// Actual matrix dimension.
        found_dim: usize,
    },
    /// No radices were declared and the dimension is not a power of two.
    NotPowerOfTwo {
        /// The matrix dimension.
        dim: usize,
    },
    /// Matrix/scalar operation on operands with incompatible shapes.
    DimensionMismatch {
        /// Description of the operation.
        op: String,
    },
    /// A referenced parameter is unknown or a parameter count is wrong.
    ParameterMismatch {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for QglError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QglError::UnexpectedCharacter { ch, offset } => {
                write!(f, "unexpected character '{ch}' at byte {offset}")
            }
            QglError::InvalidNumber { text, offset } => {
                write!(f, "invalid numeric literal '{text}' at byte {offset}")
            }
            QglError::UnexpectedToken { expected, found, offset } => {
                write!(f, "expected {expected}, found {found} at byte {offset}")
            }
            QglError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            QglError::RaggedMatrix { expected, found } => {
                write!(f, "ragged matrix literal: expected {expected} columns, found {found}")
            }
            QglError::UnknownFunction { name } => write!(f, "unknown function '{name}'"),
            QglError::WrongArity { name, expected, found } => {
                write!(f, "function '{name}' expects {expected} argument(s), found {found}")
            }
            QglError::ComplexArgument { name } => {
                write!(f, "function '{name}' applied to an argument with nonzero imaginary part")
            }
            QglError::NotAMatrix => write!(f, "gate body does not evaluate to a matrix"),
            QglError::NotSquare { rows, cols } => {
                write!(f, "gate matrix is not square ({rows}x{cols})")
            }
            QglError::RadixMismatch { expected_dim, found_dim } => {
                write!(
                    f,
                    "declared radices imply dimension {expected_dim} but the matrix has dimension {found_dim}"
                )
            }
            QglError::NotPowerOfTwo { dim } => {
                write!(f, "no radices declared and dimension {dim} is not a power of two")
            }
            QglError::DimensionMismatch { op } => write!(f, "dimension mismatch in {op}"),
            QglError::ParameterMismatch { detail } => write!(f, "parameter mismatch: {detail}"),
        }
    }
}

impl std::error::Error for QglError {}

/// Result alias for QGL operations.
pub type Result<T> = std::result::Result<T, QglError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<QglError> = vec![
            QglError::UnexpectedCharacter { ch: '?', offset: 3 },
            QglError::InvalidNumber { text: "1.2.3".into(), offset: 0 },
            QglError::UnexpectedToken { expected: "']'".into(), found: "','".into(), offset: 9 },
            QglError::UnexpectedEof { expected: "'}'".into() },
            QglError::RaggedMatrix { expected: 2, found: 3 },
            QglError::UnknownFunction { name: "sinh".into() },
            QglError::WrongArity { name: "sin".into(), expected: 1, found: 2 },
            QglError::ComplexArgument { name: "sin".into() },
            QglError::NotAMatrix,
            QglError::NotSquare { rows: 2, cols: 3 },
            QglError::RadixMismatch { expected_dim: 6, found_dim: 4 },
            QglError::NotPowerOfTwo { dim: 3 },
            QglError::DimensionMismatch { op: "matmul".into() },
            QglError::ParameterMismatch { detail: "expected 3 parameters".into() },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<QglError>();
    }
}
