//! Recursive-descent parser for QGL, implementing the grammar of Fig. 2 in the paper.
//!
//! ```text
//! definition ::= ident [radices] ( [varlist] ) { expression } [;]
//! radices    ::= < intlist >
//! expression ::= term {(+|-) term}
//! term       ::= {~} factor {(*|/) factor}
//! factor     ::= primary {^ primary}
//! primary    ::= variable | constant | function | matrix | (expression)
//! matrix     ::= [ row {, row} [,] ]
//! row        ::= [ exprlist ]
//! ```
//!
//! A leading `-` is accepted as a synonym for the QGL negation operator `~`.

use crate::ast::{AstExpr, BinaryOp, Definition};
use crate::error::{QglError, Result};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a full QGL gate definition from source text.
///
/// # Errors
///
/// Returns a [`QglError`] describing the first lexical or syntactic problem found.
///
/// # Example
///
/// ```
/// use qudit_qgl::parser::parse_definition;
/// let def = parse_definition("RZ(theta) { [[e^(~i*theta/2), 0], [0, e^(i*theta/2)]] }")?;
/// assert_eq!(def.name, "RZ");
/// assert_eq!(def.params, vec!["theta".to_string()]);
/// # Ok::<(), qudit_qgl::QglError>(())
/// ```
pub fn parse_definition(source: &str) -> Result<Definition> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let def = parser.definition()?;
    parser.expect_eof()?;
    Ok(def)
}

/// Parses a bare QGL expression (no surrounding definition). Used by tests and by the
/// library when composing expressions programmatically.
///
/// # Errors
///
/// Returns a [`QglError`] on malformed input.
pub fn parse_expression(source: &str) -> Result<AstExpr> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.expression()?;
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map(|t| t.offset).unwrap_or(usize::MAX)
    }

    fn advance(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &TokenKind, what: &str) -> Result<()> {
        match self.peek() {
            Some(k) if k == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(k) => Err(QglError::UnexpectedToken {
                expected: what.to_string(),
                found: k.to_string(),
                offset: self.offset(),
            }),
            None => Err(QglError::UnexpectedEof { expected: what.to_string() }),
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.pos < self.tokens.len() {
            return Err(QglError::UnexpectedToken {
                expected: "end of input".to_string(),
                found: self.tokens[self.pos].kind.to_string(),
                offset: self.tokens[self.pos].offset,
            });
        }
        Ok(())
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(TokenKind::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            Some(k) => Err(QglError::UnexpectedToken {
                expected: what.to_string(),
                found: k.to_string(),
                offset: self.offset(),
            }),
            None => Err(QglError::UnexpectedEof { expected: what.to_string() }),
        }
    }

    fn definition(&mut self) -> Result<Definition> {
        let name = self.ident("gate name")?;

        // Optional radices: < intlist >
        let mut radices = Vec::new();
        if self.peek() == Some(&TokenKind::Less) {
            self.advance();
            loop {
                match self.advance() {
                    Some(TokenKind::Number(n)) if n.fract() == 0.0 && n >= 2.0 => {
                        radices.push(n as usize);
                    }
                    Some(k) => {
                        return Err(QglError::UnexpectedToken {
                            expected: "radix (integer >= 2)".to_string(),
                            found: k.to_string(),
                            offset: self.offset(),
                        })
                    }
                    None => {
                        return Err(QglError::UnexpectedEof {
                            expected: "radix (integer >= 2)".to_string(),
                        })
                    }
                }
                match self.peek() {
                    Some(TokenKind::Comma) => {
                        self.advance();
                    }
                    Some(TokenKind::Greater) => {
                        self.advance();
                        break;
                    }
                    _ => {
                        return Err(QglError::UnexpectedToken {
                            expected: "',' or '>' in radix list".to_string(),
                            found: self
                                .peek()
                                .map(|k| k.to_string())
                                .unwrap_or_else(|| "end of input".to_string()),
                            offset: self.offset(),
                        })
                    }
                }
            }
        }

        // Parameter list: ( [varlist] )
        self.expect(&TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            loop {
                params.push(self.ident("parameter name")?);
                match self.peek() {
                    Some(TokenKind::Comma) => {
                        self.advance();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;

        // Body: { expression }
        self.expect(&TokenKind::LBrace, "'{'")?;
        let body = self.expression()?;
        self.expect(&TokenKind::RBrace, "'}'")?;

        // Optional trailing semicolon.
        if self.peek() == Some(&TokenKind::Semicolon) {
            self.advance();
        }

        Ok(Definition { name, radices, params, body })
    }

    /// expression ::= term {(+|-) term}
    fn expression(&mut self) -> Result<AstExpr> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinaryOp::Add,
                Some(TokenKind::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.term()?;
            lhs = AstExpr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    /// term ::= {~} factor {(*|/) factor}
    fn term(&mut self) -> Result<AstExpr> {
        let mut negations = 0usize;
        while matches!(self.peek(), Some(TokenKind::Tilde) | Some(TokenKind::Minus)) {
            negations += 1;
            self.advance();
        }
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinaryOp::Mul,
                Some(TokenKind::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.factor()?;
            lhs = AstExpr::binary(op, lhs, rhs);
        }
        if negations % 2 == 1 {
            lhs = AstExpr::Neg(Box::new(lhs));
        }
        Ok(lhs)
    }

    /// factor ::= primary {^ primary}  (right-associative)
    fn factor(&mut self) -> Result<AstExpr> {
        let base = self.primary()?;
        if self.peek() == Some(&TokenKind::Caret) {
            self.advance();
            // Allow a unary negation directly in the exponent, e.g. `e^~i*t` is rare but
            // `e^(~i*t/2)` is the common parenthesized form; handle `^~x` gracefully.
            let exponent = if matches!(self.peek(), Some(TokenKind::Tilde) | Some(TokenKind::Minus))
            {
                self.advance();
                AstExpr::Neg(Box::new(self.factor()?))
            } else {
                self.factor()?
            };
            return Ok(AstExpr::binary(BinaryOp::Pow, base, exponent));
        }
        Ok(base)
    }

    /// primary ::= variable | constant | function | matrix | (expression)
    fn primary(&mut self) -> Result<AstExpr> {
        match self.peek().cloned() {
            Some(TokenKind::Number(n)) => {
                self.advance();
                Ok(AstExpr::Number(n))
            }
            Some(TokenKind::Ident(name)) => {
                self.advance();
                if self.peek() == Some(&TokenKind::LParen) {
                    // Function call.
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek() != Some(&TokenKind::RParen) {
                        loop {
                            args.push(self.expression()?);
                            match self.peek() {
                                Some(TokenKind::Comma) => {
                                    self.advance();
                                }
                                _ => break,
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "')'")?;
                    Ok(AstExpr::Call { name, args })
                } else {
                    Ok(AstExpr::Variable(name))
                }
            }
            Some(TokenKind::LParen) => {
                self.advance();
                let e = self.expression()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            Some(TokenKind::LBracket) => self.matrix(),
            Some(k) => Err(QglError::UnexpectedToken {
                expected: "expression".to_string(),
                found: k.to_string(),
                offset: self.offset(),
            }),
            None => Err(QglError::UnexpectedEof { expected: "expression".to_string() }),
        }
    }

    /// matrix ::= [ row {, row} [,] ]   with   row ::= [ exprlist ]
    fn matrix(&mut self) -> Result<AstExpr> {
        self.expect(&TokenKind::LBracket, "'['")?;
        let mut rows: Vec<Vec<AstExpr>> = Vec::new();
        loop {
            match self.peek() {
                Some(TokenKind::LBracket) => {
                    rows.push(self.row()?);
                    match self.peek() {
                        Some(TokenKind::Comma) => {
                            self.advance();
                            // Allow a trailing comma before the closing bracket.
                            if self.peek() == Some(&TokenKind::RBracket) {
                                self.advance();
                                break;
                            }
                        }
                        Some(TokenKind::RBracket) => {
                            self.advance();
                            break;
                        }
                        _ => {
                            return Err(QglError::UnexpectedToken {
                                expected: "',' or ']' after matrix row".to_string(),
                                found: self
                                    .peek()
                                    .map(|k| k.to_string())
                                    .unwrap_or_else(|| "end of input".to_string()),
                                offset: self.offset(),
                            })
                        }
                    }
                }
                Some(k) => {
                    return Err(QglError::UnexpectedToken {
                        expected: "matrix row starting with '['".to_string(),
                        found: k.to_string(),
                        offset: self.offset(),
                    })
                }
                None => {
                    return Err(QglError::UnexpectedEof {
                        expected: "matrix row starting with '['".to_string(),
                    })
                }
            }
        }
        // Column-count consistency.
        if let Some(first) = rows.first() {
            let expected = first.len();
            for row in &rows {
                if row.len() != expected {
                    return Err(QglError::RaggedMatrix { expected, found: row.len() });
                }
            }
        }
        Ok(AstExpr::Matrix(rows))
    }

    fn row(&mut self) -> Result<Vec<AstExpr>> {
        self.expect(&TokenKind::LBracket, "'['")?;
        let mut elements = Vec::new();
        if self.peek() != Some(&TokenKind::RBracket) {
            loop {
                elements.push(self.expression()?);
                match self.peek() {
                    Some(TokenKind::Comma) => {
                        self.advance();
                        if self.peek() == Some(&TokenKind::RBracket) {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
        self.expect(&TokenKind::RBracket, "']'")?;
        Ok(elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_u3_listing() {
        let src = "U3(θ,ϕ,λ) {
            [
                [ cos(θ/2), ~ e^(i*λ) * sin(θ/2) ],
                [ e^(i*ϕ) * sin(θ/2), e^(i*(ϕ+λ)) * cos(θ/2) ],
            ]
        }";
        let def = parse_definition(src).unwrap();
        assert_eq!(def.name, "U3");
        assert_eq!(def.params, vec!["θ", "ϕ", "λ"]);
        assert!(def.radices.is_empty());
        match def.body {
            AstExpr::Matrix(rows) => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
            }
            other => panic!("expected matrix body, got {other:?}"),
        }
    }

    #[test]
    fn parses_radices() {
        let src = "CSUM<3,3>() { [[1]] }";
        let def = parse_definition(src).unwrap();
        assert_eq!(def.radices, vec![3, 3]);
        assert!(def.params.is_empty());
    }

    #[test]
    fn parses_trailing_semicolon_and_no_params() {
        let def = parse_definition("X() { [[0,1],[1,0]] };").unwrap();
        assert_eq!(def.name, "X");
    }

    #[test]
    fn operator_precedence() {
        // a + b * c parses as a + (b*c)
        let e = parse_expression("a + b * c").unwrap();
        match e {
            AstExpr::Binary { op: BinaryOp::Add, rhs, .. } => match *rhs {
                AstExpr::Binary { op: BinaryOp::Mul, .. } => {}
                other => panic!("expected mul on rhs, got {other:?}"),
            },
            other => panic!("expected add at root, got {other:?}"),
        }
        // a * b ^ c parses as a * (b^c)
        let e = parse_expression("a * b ^ c").unwrap();
        match e {
            AstExpr::Binary { op: BinaryOp::Mul, rhs, .. } => match *rhs {
                AstExpr::Binary { op: BinaryOp::Pow, .. } => {}
                other => panic!("expected pow on rhs, got {other:?}"),
            },
            other => panic!("expected mul at root, got {other:?}"),
        }
    }

    #[test]
    fn tilde_negates_whole_term() {
        // ~i*sin(t) should negate the product i*sin(t), matching the paper's usage.
        let e = parse_expression("~i*sin(t)").unwrap();
        match e {
            AstExpr::Neg(inner) => match *inner {
                AstExpr::Binary { op: BinaryOp::Mul, .. } => {}
                other => panic!("expected mul under neg, got {other:?}"),
            },
            other => panic!("expected negation at root, got {other:?}"),
        }
    }

    #[test]
    fn double_negation_cancels() {
        let e = parse_expression("~~x").unwrap();
        assert_eq!(e, AstExpr::Variable("x".into()));
    }

    #[test]
    fn minus_as_unary() {
        let e = parse_expression("-x + y").unwrap();
        match e {
            AstExpr::Binary { op: BinaryOp::Add, lhs, .. } => {
                assert!(matches!(*lhs, AstExpr::Neg(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exponent_with_negation() {
        let e = parse_expression("e^~i").unwrap();
        match e {
            AstExpr::Binary { op: BinaryOp::Pow, rhs, .. } => {
                assert!(matches!(*rhs, AstExpr::Neg(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_expression("e^(~i*t/2)").is_ok());
    }

    #[test]
    fn function_call_with_multiple_args() {
        let e = parse_expression("atan2(y, x)").unwrap();
        match e {
            AstExpr::Call { name, args } => {
                assert_eq!(name, "atan2");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_matrix_row_and_trailing_commas() {
        let e = parse_expression("[[1, 2,], [3, 4,],]").unwrap();
        match e {
            AstExpr::Matrix(rows) => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ragged_matrix_rejected() {
        assert!(matches!(
            parse_expression("[[1,2],[3]]"),
            Err(QglError::RaggedMatrix { expected: 2, found: 1 })
        ));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_definition("U3(θ { [[1]] }").is_err());
        assert!(parse_definition("U3() [[1]]").is_err());
        assert!(parse_definition("U3() { [[1]] } extra").is_err());
        assert!(parse_definition("() { [[1]] }").is_err());
        assert!(parse_definition("U3() { }").is_err());
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("sin(").is_err());
        assert!(parse_expression("[1, 2]").is_err(), "rows must be bracketed");
    }

    #[test]
    fn radix_validation() {
        assert!(parse_definition("G<1>() { [[1]] }").is_err());
        assert!(parse_definition("G<2.5>() { [[1]] }").is_err());
        assert!(parse_definition("G<2 3>() { [[1]] }").is_err());
    }

    #[test]
    fn nested_parentheses() {
        let e = parse_expression("((a + (b)) * ((c)))").unwrap();
        assert_eq!(e.node_count(), 5);
    }
}
