//! [`UnitaryExpression`] — the symbolic IR for a quantum operation.
//!
//! A `UnitaryExpression` is the lowered form of a QGL gate definition: a square matrix of
//! [`ComplexExpr`] elements together with the gate's name, parameter list, and qudit
//! radices. From this single artifact OpenQudit derives the numeric unitary, the
//! analytical gradient, and (via `qudit-qvm`) the compiled evaluation program — replacing
//! the hand-written boilerplate of Listing 1 in the paper with the one-line definition of
//! Listing 2.

use crate::diff::diff_complex;
use crate::error::{QglError, Result};
use crate::expr::{ComplexExpr, Expr};
use crate::lower::{lower, Value};
use crate::parser::parse_definition;
use qudit_tensor::{Complex, Float, Matrix};

/// A symbolic, unitary-valued expression over a list of real parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitaryExpression {
    name: String,
    radices: Vec<usize>,
    params: Vec<String>,
    elements: Vec<Vec<ComplexExpr>>,
}

impl UnitaryExpression {
    /// Parses and lowers a QGL gate definition.
    ///
    /// # Errors
    ///
    /// Returns a [`QglError`] if the source fails to parse, references undeclared
    /// parameters, does not evaluate to a square matrix, or has a dimension inconsistent
    /// with its declared radices (or not a power of two when radices are omitted).
    ///
    /// # Example
    ///
    /// ```
    /// use qudit_qgl::UnitaryExpression;
    /// let rx = UnitaryExpression::new(
    ///     "RX(theta) { [[cos(theta/2), ~i*sin(theta/2)], [~i*sin(theta/2), cos(theta/2)]] }",
    /// )?;
    /// assert_eq!(rx.num_params(), 1);
    /// assert_eq!(rx.radices(), &[2]);
    /// # Ok::<(), qudit_qgl::QglError>(())
    /// ```
    pub fn new(source: &str) -> Result<Self> {
        let def = parse_definition(source)?;
        // The variables i, e, and π are reserved for their mathematical values; allowing
        // them as parameter names would silently shadow the constants.
        if let Some(reserved) =
            def.params.iter().find(|p| matches!(p.as_str(), "i" | "e" | "pi" | "π"))
        {
            return Err(QglError::ParameterMismatch {
                detail: format!("'{reserved}' is a reserved constant and cannot be a parameter"),
            });
        }
        let value = lower(&def.body, &def.params)?;
        let elements = match value {
            Value::Matrix(m) => m,
            Value::Scalar(_) => return Err(QglError::NotAMatrix),
        };
        Self::from_elements(def.name, def.radices, def.params, elements)
    }

    /// Builds a unitary expression directly from lowered elements.
    ///
    /// If `radices` is empty, the gate is assumed to act on qubits and the dimension must
    /// be a power of two; the radices are then inferred as `[2; log2(dim)]`.
    ///
    /// # Errors
    ///
    /// Returns a [`QglError`] on dimension/radix inconsistencies.
    pub fn from_elements(
        name: String,
        radices: Vec<usize>,
        params: Vec<String>,
        elements: Vec<Vec<ComplexExpr>>,
    ) -> Result<Self> {
        let rows = elements.len();
        let cols = elements.first().map(|r| r.len()).unwrap_or(0);
        if rows == 0 || rows != cols {
            return Err(QglError::NotSquare { rows, cols });
        }
        let radices = if radices.is_empty() {
            if !rows.is_power_of_two() || rows < 2 {
                return Err(QglError::NotPowerOfTwo { dim: rows });
            }
            vec![2; rows.trailing_zeros() as usize]
        } else {
            let expected: usize = radices.iter().product();
            if expected != rows {
                return Err(QglError::RadixMismatch { expected_dim: expected, found_dim: rows });
            }
            radices
        };
        // Every free variable must be a declared parameter (lowering already enforces
        // this for parsed sources; enforce it for programmatic construction too).
        for row in &elements {
            for el in row {
                for v in el.variables() {
                    if !params.contains(&v) {
                        return Err(QglError::ParameterMismatch {
                            detail: format!("element references undeclared parameter '{v}'"),
                        });
                    }
                }
            }
        }
        Ok(UnitaryExpression { name, radices, params, elements })
    }

    /// The gate's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The qudit radices this gate acts on.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// The number of qudits the gate acts on.
    pub fn num_qudits(&self) -> usize {
        self.radices.len()
    }

    /// The matrix dimension (product of the radices).
    pub fn dim(&self) -> usize {
        self.elements.len()
    }

    /// The declared parameter names, in order.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// The number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// `true` if the expression has no parameters (a constant gate).
    pub fn is_constant(&self) -> bool {
        self.params.is_empty()
    }

    /// The symbolic matrix elements (row-major).
    pub fn elements(&self) -> &[Vec<ComplexExpr>] {
        &self.elements
    }

    /// A single symbolic element.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn element(&self, row: usize, col: usize) -> &ComplexExpr {
        &self.elements[row][col]
    }

    /// Total symbolic node count across all elements (used to gauge simplification).
    pub fn node_count(&self) -> usize {
        self.elements.iter().flat_map(|r| r.iter()).map(|e| e.node_count()).sum()
    }

    /// Evaluates the unitary at the given parameter values by walking the symbolic trees.
    ///
    /// This is the slow reference evaluator; the fast path compiles the expression with
    /// `qudit-qvm` instead.
    ///
    /// # Errors
    ///
    /// Returns [`QglError::ParameterMismatch`] if the number of values differs from the
    /// number of declared parameters.
    pub fn to_matrix<T: Float>(&self, params: &[f64]) -> Result<Matrix<T>> {
        if params.len() != self.params.len() {
            return Err(QglError::ParameterMismatch {
                detail: format!(
                    "gate '{}' expects {} parameter(s), got {}",
                    self.name,
                    self.params.len(),
                    params.len()
                ),
            });
        }
        let dim = self.dim();
        let mut m = Matrix::zeros(dim, dim);
        for (r, row) in self.elements.iter().enumerate() {
            for (c, el) in row.iter().enumerate() {
                let (re, im) = el.eval_with(&self.params, params);
                m.set(r, c, Complex::new(T::from_f64(re), T::from_f64(im)));
            }
        }
        Ok(m)
    }

    /// Symbolically differentiates every element with respect to parameter `param`.
    ///
    /// # Errors
    ///
    /// Returns [`QglError::ParameterMismatch`] if `param` is not declared.
    pub fn differentiate(&self, param: &str) -> Result<Vec<Vec<ComplexExpr>>> {
        if !self.params.iter().any(|p| p == param) {
            return Err(QglError::ParameterMismatch {
                detail: format!("gate '{}' has no parameter '{param}'", self.name),
            });
        }
        Ok(self
            .elements
            .iter()
            .map(|row| row.iter().map(|el| diff_complex(el, param)).collect())
            .collect())
    }

    /// The full symbolic gradient: one element matrix per parameter, in parameter order.
    pub fn gradient(&self) -> Vec<Vec<Vec<ComplexExpr>>> {
        self.params
            .iter()
            .map(|p| {
                self.elements
                    .iter()
                    .map(|row| row.iter().map(|el| diff_complex(el, p)).collect())
                    .collect()
            })
            .collect()
    }

    /// Numerically evaluates the gradient ∂U/∂θᵢ for every parameter by walking the
    /// symbolic derivative trees (slow reference path).
    ///
    /// # Errors
    ///
    /// Returns [`QglError::ParameterMismatch`] on a parameter-count mismatch.
    pub fn gradient_matrices<T: Float>(&self, params: &[f64]) -> Result<Vec<Matrix<T>>> {
        if params.len() != self.params.len() {
            return Err(QglError::ParameterMismatch {
                detail: format!(
                    "gate '{}' expects {} parameter(s), got {}",
                    self.name,
                    self.params.len(),
                    params.len()
                ),
            });
        }
        let dim = self.dim();
        let mut out = Vec::with_capacity(self.params.len());
        for grad in self.gradient() {
            let mut m = Matrix::zeros(dim, dim);
            for (r, row) in grad.iter().enumerate() {
                for (c, el) in row.iter().enumerate() {
                    let (re, im) = el.eval_with(&self.params, params);
                    m.set(r, c, Complex::new(T::from_f64(re), T::from_f64(im)));
                }
            }
            out.push(m);
        }
        Ok(out)
    }

    /// Checks numerically (at the supplied parameter point) that the expression is
    /// unitary to within `tol`.
    pub fn check_unitary(&self, params: &[f64], tol: f64) -> bool {
        match self.to_matrix::<f64>(params) {
            Ok(m) => m.is_unitary(tol),
            Err(_) => false,
        }
    }

    /// Renames every parameter by applying `f`, returning the renamed expression.
    ///
    /// Used when composing gates that share parameter names so that each occurrence stays
    /// independent (e.g. prefixing with an instruction index).
    pub fn map_params(&self, f: impl Fn(&str) -> String) -> UnitaryExpression {
        let mut new_params = Vec::with_capacity(self.params.len());
        let mut elements = self.elements.clone();
        for old in &self.params {
            let new = f(old);
            if new != *old {
                for row in elements.iter_mut() {
                    for el in row.iter_mut() {
                        *el = el.substitute(old, &Expr::var(new.clone()));
                    }
                }
            }
            new_params.push(new);
        }
        UnitaryExpression {
            name: self.name.clone(),
            radices: self.radices.clone(),
            params: new_params,
            elements,
        }
    }

    /// A canonical textual form of the expression, usable as a cache key: the name,
    /// radices, parameters, and the s-expression form of every element.
    pub fn canonical_key(&self) -> String {
        use std::fmt::Write as _;
        let mut key = String::new();
        let _ = write!(key, "{}<{:?}>({:?})", self.name, self.radices, self.params);
        for row in &self.elements {
            for el in row {
                let _ = write!(key, "|{}#{}", el.re, el.im);
            }
        }
        key
    }

    /// Replaces the gate name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Internal constructor used by the transform module, which guarantees invariants.
    pub(crate) fn from_parts_unchecked(
        name: String,
        radices: Vec<usize>,
        params: Vec<String>,
        elements: Vec<Vec<ComplexExpr>>,
    ) -> Self {
        UnitaryExpression { name, radices, params, elements }
    }
}

impl std::fmt::Display for UnitaryExpression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}({}) on radices {:?}, dim {}",
            self.name,
            self.params.join(", "),
            self.radices,
            self.dim()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U3_SRC: &str = "U3(θ, ϕ, λ) {
        [
            [ cos(θ/2), ~ e^(i*λ) * sin(θ/2) ],
            [ e^(i*ϕ) * sin(θ/2), e^(i*(ϕ+λ)) * cos(θ/2) ],
        ]
    }";

    #[test]
    fn u3_parses_and_is_unitary() {
        let u3 = UnitaryExpression::new(U3_SRC).unwrap();
        assert_eq!(u3.name(), "U3");
        assert_eq!(u3.num_params(), 3);
        assert_eq!(u3.radices(), &[2]);
        assert_eq!(u3.dim(), 2);
        for p in [[0.1, 0.2, 0.3], [1.0, -2.0, 0.5], [3.1, 0.0, -1.2]] {
            assert!(u3.check_unitary(&p, 1e-12), "params {p:?}");
        }
    }

    #[test]
    fn u3_matches_listing1_formula() {
        let u3 = UnitaryExpression::new(U3_SRC).unwrap();
        let (t, p, l) = (0.7, 1.1, -0.4);
        let m = u3.to_matrix::<f64>(&[t, p, l]).unwrap();
        let ct = (t / 2.0).cos();
        let st = (t / 2.0).sin();
        assert!((m.get(0, 0).re - ct).abs() < 1e-14);
        assert!((m.get(0, 1).re + l.cos() * st).abs() < 1e-14);
        assert!((m.get(0, 1).im + l.sin() * st).abs() < 1e-14);
        assert!((m.get(1, 0).re - p.cos() * st).abs() < 1e-14);
        assert!((m.get(1, 1).re - (p + l).cos() * ct).abs() < 1e-14);
    }

    #[test]
    fn u3_gradient_matches_listing1_gradient() {
        let u3 = UnitaryExpression::new(U3_SRC).unwrap();
        let (t, p, l) = (0.9, 0.3, 1.7);
        let grads = u3.gradient_matrices::<f64>(&[t, p, l]).unwrap();
        assert_eq!(grads.len(), 3);
        let ct = (t / 2.0).cos();
        let st = (t / 2.0).sin();
        // ∂/∂θ element (0,0) = -0.5 sin(θ/2)
        assert!((grads[0].get(0, 0).re + 0.5 * st).abs() < 1e-13);
        // ∂/∂ϕ element (1,0) = i e^{iϕ} sin(θ/2) → real part = -sin(ϕ) st
        assert!((grads[1].get(1, 0).re + p.sin() * st).abs() < 1e-13);
        assert!((grads[1].get(1, 0).im - p.cos() * st).abs() < 1e-13);
        // ∂/∂λ element (0,0) = 0, (1,0) = 0
        assert!(grads[2].get(0, 0).abs() < 1e-14);
        assert!(grads[2].get(1, 0).abs() < 1e-14);
        // ∂/∂λ element (1,1) = i e^{i(ϕ+λ)} cos(θ/2)
        assert!((grads[2].get(1, 1).im - (p + l).cos() * ct).abs() < 1e-13);
    }

    #[test]
    fn radix_validation() {
        // Explicit radices must match dimension.
        let bad = "G<3>(x) { [[cos(x), sin(x)], [~sin(x), cos(x)]] }";
        assert!(matches!(
            UnitaryExpression::new(bad),
            Err(QglError::RadixMismatch { expected_dim: 3, found_dim: 2 })
        ));
        // Without radices the dimension must be a power of two.
        let qutrit = "P3(x) { [[1,0,0],[0,e^(i*x),0],[0,0,1]] }";
        assert!(matches!(UnitaryExpression::new(qutrit), Err(QglError::NotPowerOfTwo { dim: 3 })));
        let qutrit_ok = "P3<3>(x) { [[1,0,0],[0,e^(i*x),0],[0,0,1]] }";
        let g = UnitaryExpression::new(qutrit_ok).unwrap();
        assert_eq!(g.radices(), &[3]);
        assert_eq!(g.num_qudits(), 1);
    }

    #[test]
    fn qubit_radices_inferred_from_dimension() {
        let cnot =
            UnitaryExpression::new("CNOT() { [[1,0,0,0],[0,1,0,0],[0,0,0,1],[0,0,1,0]] }").unwrap();
        assert_eq!(cnot.radices(), &[2, 2]);
        assert!(cnot.is_constant());
        assert!(cnot.check_unitary(&[], 1e-15));
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            UnitaryExpression::new("B() { [[1, 0]] }"),
            Err(QglError::NotSquare { rows: 1, cols: 2 })
        ));
    }

    #[test]
    fn scalar_body_rejected() {
        assert!(matches!(UnitaryExpression::new("S(x) { cos(x) }"), Err(QglError::NotAMatrix)));
    }

    #[test]
    fn parameter_count_enforced_at_eval() {
        let u3 = UnitaryExpression::new(U3_SRC).unwrap();
        assert!(u3.to_matrix::<f64>(&[0.1]).is_err());
        assert!(u3.gradient_matrices::<f64>(&[0.1, 0.2]).is_err());
        assert!(u3.differentiate("nope").is_err());
    }

    #[test]
    fn map_params_renames_consistently() {
        let u3 = UnitaryExpression::new(U3_SRC).unwrap();
        let renamed = u3.map_params(|p| format!("g0_{p}"));
        assert_eq!(renamed.params()[0], "g0_θ");
        let a = u3.to_matrix::<f64>(&[0.3, 0.6, 0.9]).unwrap();
        let b = renamed.to_matrix::<f64>(&[0.3, 0.6, 0.9]).unwrap();
        assert!(a.max_elementwise_distance(&b) < 1e-15);
    }

    #[test]
    fn canonical_key_distinguishes_gates() {
        let u3 = UnitaryExpression::new(U3_SRC).unwrap();
        let rx = UnitaryExpression::new(
            "RX(theta) { [[cos(theta/2), ~i*sin(theta/2)], [~i*sin(theta/2), cos(theta/2)]] }",
        )
        .unwrap();
        assert_ne!(u3.canonical_key(), rx.canonical_key());
        assert_eq!(u3.canonical_key(), UnitaryExpression::new(U3_SRC).unwrap().canonical_key());
    }

    #[test]
    fn from_elements_rejects_undeclared_params() {
        let el = ComplexExpr::from_real(Expr::var("x"));
        let res = UnitaryExpression::from_elements(
            "Bad".into(),
            vec![],
            vec![],
            vec![vec![el.clone(), ComplexExpr::zero()], vec![ComplexExpr::zero(), el]],
        );
        assert!(matches!(res, Err(QglError::ParameterMismatch { .. })));
    }

    #[test]
    fn reserved_constants_cannot_be_parameters() {
        for src in [
            "Bad(e) { [[cos(e), ~sin(e)], [sin(e), cos(e)]] }",
            "Bad(i) { [[cos(i), ~sin(i)], [sin(i), cos(i)]] }",
            "Bad(pi) { [[cos(pi), ~sin(pi)], [sin(pi), cos(pi)]] }",
        ] {
            assert!(
                matches!(UnitaryExpression::new(src), Err(QglError::ParameterMismatch { .. })),
                "{src} should be rejected"
            );
        }
    }

    #[test]
    fn display_and_f32_eval() {
        let u3 = UnitaryExpression::new(U3_SRC).unwrap();
        assert!(u3.to_string().contains("U3"));
        let m32 = u3.to_matrix::<f32>(&[0.5, 0.5, 0.5]).unwrap();
        let m64 = u3.to_matrix::<f64>(&[0.5, 0.5, 0.5]).unwrap();
        assert!(m32.to_f64().max_elementwise_distance(&m64) < 1e-6);
    }
}
