//! Symbolic transformations on [`UnitaryExpression`]s.
//!
//! The paper (Sec. III-B) lists the transformations that make the symbolic IR composable:
//! matrix multiplication, Kronecker product, substitution, and conjugation, which enable
//! "the flexible, on-the-fly creation of composite gates — such as controlled, inverted,
//! or fused operations — directly from the user's high-level QGL definitions". This
//! module implements those operations, plus the transpose/trace push-downs used by the
//! contraction-tree fusion pass.

use crate::error::{QglError, Result};
use crate::expr::{ComplexExpr, Expr};
use crate::lower;
use crate::unitary_expr::UnitaryExpression;

/// Returns the conjugate transpose (inverse, for unitaries) of `expr`.
pub fn dagger(expr: &UnitaryExpression) -> UnitaryExpression {
    let dim = expr.dim();
    let elements: Vec<Vec<ComplexExpr>> =
        (0..dim).map(|r| (0..dim).map(|c| expr.element(c, r).conj()).collect()).collect();
    UnitaryExpression::from_parts_unchecked(
        format!("{}†", expr.name()),
        expr.radices().to_vec(),
        expr.params().to_vec(),
        elements,
    )
}

/// Returns the element-wise complex conjugate of `expr`.
pub fn conjugate(expr: &UnitaryExpression) -> UnitaryExpression {
    let elements: Vec<Vec<ComplexExpr>> =
        expr.elements().iter().map(|row| row.iter().map(|el| el.conj()).collect()).collect();
    UnitaryExpression::from_parts_unchecked(
        format!("conj({})", expr.name()),
        expr.radices().to_vec(),
        expr.params().to_vec(),
        elements,
    )
}

/// Returns the (non-conjugating) transpose of `expr`.
///
/// Used by the contraction-tree fusion pass, which pushes a runtime `TRANSPOSE` of a leaf
/// tensor into the leaf's symbolic expression so the compiled code writes the transposed
/// matrix directly (Sec. IV-A of the paper).
pub fn transpose(expr: &UnitaryExpression) -> UnitaryExpression {
    let dim = expr.dim();
    let elements: Vec<Vec<ComplexExpr>> =
        (0..dim).map(|r| (0..dim).map(|c| expr.element(c, r).clone()).collect()).collect();
    UnitaryExpression::from_parts_unchecked(
        format!("{}ᵀ", expr.name()),
        expr.radices().to_vec(),
        expr.params().to_vec(),
        elements,
    )
}

/// Merges two parameter lists, returning the union (left list first) without duplicates.
fn merge_params(a: &[String], b: &[String]) -> Vec<String> {
    let mut out = a.to_vec();
    for p in b {
        if !out.contains(p) {
            out.push(p.clone());
        }
    }
    out
}

/// Symbolic matrix product `lhs · rhs` (i.e. apply `rhs` first, then `lhs`).
///
/// Shared parameter names are treated as the *same* parameter, which is what gate fusion
/// wants; rename with [`UnitaryExpression::map_params`] first if independence is needed.
///
/// # Errors
///
/// Returns [`QglError::DimensionMismatch`] if the radices differ.
pub fn matmul(lhs: &UnitaryExpression, rhs: &UnitaryExpression) -> Result<UnitaryExpression> {
    if lhs.radices() != rhs.radices() {
        return Err(QglError::DimensionMismatch {
            op: format!("matmul of {:?} with {:?} radices", lhs.radices(), rhs.radices()),
        });
    }
    let a = lhs.elements().to_vec();
    let b = rhs.elements().to_vec();
    let elements = match lower::matmul(a, b)? {
        lower::Value::Matrix(m) => m,
        lower::Value::Scalar(_) => unreachable!("matrix product of matrices is a matrix"),
    };
    Ok(UnitaryExpression::from_parts_unchecked(
        format!("{}·{}", lhs.name(), rhs.name()),
        lhs.radices().to_vec(),
        merge_params(lhs.params(), rhs.params()),
        elements,
    ))
}

/// Symbolic Kronecker product `lhs ⊗ rhs`.
///
/// The resulting gate acts on the concatenation of the operand radices.
pub fn kron(lhs: &UnitaryExpression, rhs: &UnitaryExpression) -> UnitaryExpression {
    let (ad, bd) = (lhs.dim(), rhs.dim());
    let dim = ad * bd;
    let mut elements = vec![vec![ComplexExpr::zero(); dim]; dim];
    for i in 0..ad {
        for j in 0..ad {
            let a_ij = lhs.element(i, j);
            if a_ij.is_zero() {
                continue;
            }
            for p in 0..bd {
                for q in 0..bd {
                    let b_pq = rhs.element(p, q);
                    if b_pq.is_zero() {
                        continue;
                    }
                    elements[i * bd + p][j * bd + q] = a_ij.mul(b_pq);
                }
            }
        }
    }
    let mut radices = lhs.radices().to_vec();
    radices.extend_from_slice(rhs.radices());
    UnitaryExpression::from_parts_unchecked(
        format!("{}⊗{}", lhs.name(), rhs.name()),
        radices,
        merge_params(lhs.params(), rhs.params()),
        elements,
    )
}

/// Substitutes parameter `param` with an arbitrary real expression over (possibly new)
/// parameters listed in `new_params`.
///
/// This implements both partial application (substituting a constant removes the
/// parameter) and re-parameterization (e.g. `θ ↦ θ/2` or `θ ↦ α + β`).
///
/// # Errors
///
/// Returns [`QglError::ParameterMismatch`] if `param` is not a parameter of `expr`.
pub fn substitute(
    expr: &UnitaryExpression,
    param: &str,
    replacement: &Expr,
    new_params: &[String],
) -> Result<UnitaryExpression> {
    if !expr.params().iter().any(|p| p == param) {
        return Err(QglError::ParameterMismatch {
            detail: format!("gate '{}' has no parameter '{param}'", expr.name()),
        });
    }
    let elements: Vec<Vec<ComplexExpr>> = expr
        .elements()
        .iter()
        .map(|row| row.iter().map(|el| el.substitute(param, replacement)).collect())
        .collect();
    let mut params: Vec<String> =
        expr.params().iter().filter(|p| p.as_str() != param).cloned().collect();
    for p in new_params {
        if !params.contains(p) {
            params.push(p.clone());
        }
    }
    Ok(UnitaryExpression::from_parts_unchecked(
        expr.name().to_string(),
        expr.radices().to_vec(),
        params,
        elements,
    ))
}

/// Fixes a parameter to a constant value (partial application).
///
/// # Errors
///
/// Returns [`QglError::ParameterMismatch`] if `param` is not a parameter of `expr`.
pub fn fix_param(expr: &UnitaryExpression, param: &str, value: f64) -> Result<UnitaryExpression> {
    substitute(expr, param, &Expr::constant(value), &[])
}

/// Builds the controlled version of `expr` with a control qudit of the given radix.
///
/// The control is prepended (most-significant qudit). The gate applies `expr` when the
/// control is in its highest basis state `|radix-1⟩` and the identity otherwise, the
/// usual generalization of the qubit-controlled gate to qudits.
pub fn control(expr: &UnitaryExpression, control_radix: usize) -> UnitaryExpression {
    let d = expr.dim();
    let dim = d * control_radix;
    let mut elements = vec![vec![ComplexExpr::zero(); dim]; dim];
    // Identity blocks for control states 0..radix-2.
    for block in 0..control_radix - 1 {
        for k in 0..d {
            elements[block * d + k][block * d + k] = ComplexExpr::one();
        }
    }
    // The target block.
    let last = (control_radix - 1) * d;
    for r in 0..d {
        for c in 0..d {
            elements[last + r][last + c] = expr.element(r, c).clone();
        }
    }
    let mut radices = vec![control_radix];
    radices.extend_from_slice(expr.radices());
    UnitaryExpression::from_parts_unchecked(
        format!("C{}", expr.name()),
        radices,
        expr.params().to_vec(),
        elements,
    )
}

/// Symbolic trace of the expression matrix (sum of the diagonal elements).
///
/// Contraction-tree construction applies traces symbolically at the leaves so the runtime
/// bytecode never needs a trace instruction (Sec. IV-A of the paper).
pub fn trace(expr: &UnitaryExpression) -> ComplexExpr {
    let mut acc = ComplexExpr::zero();
    for i in 0..expr.dim() {
        let el = expr.element(i, i);
        if acc.is_zero() {
            acc = el.clone();
        } else if !el.is_zero() {
            acc = acc.add(el);
        }
    }
    acc
}

/// Permutes the qudit wires of the expression: wire `i` of the result is wire `perm[i]`
/// of the original.
///
/// # Errors
///
/// Returns [`QglError::DimensionMismatch`] if `perm` is not a permutation of the qudits.
pub fn permute_qudits(expr: &UnitaryExpression, perm: &[usize]) -> Result<UnitaryExpression> {
    let n = expr.num_qudits();
    let mut seen = vec![false; n];
    if perm.len() != n || perm.iter().any(|&p| p >= n || std::mem::replace(&mut seen[p], true)) {
        return Err(QglError::DimensionMismatch {
            op: format!("qudit permutation {perm:?} on {n} qudits"),
        });
    }
    let radices = expr.radices();
    let new_radices: Vec<usize> = perm.iter().map(|&p| radices[p]).collect();
    let dim = expr.dim();

    // Map a flat basis index under the new radices to a flat index under the old ones.
    let decode = |mut flat: usize, rad: &[usize]| -> Vec<usize> {
        let mut digits = vec![0usize; rad.len()];
        for i in (0..rad.len()).rev() {
            digits[i] = flat % rad[i];
            flat /= rad[i];
        }
        digits
    };
    let encode = |digits: &[usize], rad: &[usize]| -> usize {
        digits.iter().zip(rad.iter()).fold(0usize, |acc, (&d, &r)| acc * r + d)
    };

    let mut elements = vec![vec![ComplexExpr::zero(); dim]; dim];
    #[allow(clippy::needless_range_loop)] // r/c index both the digit decoding and the matrix
    for r in 0..dim {
        let new_digits_r = decode(r, &new_radices);
        // new wire i carries old wire perm[i]
        let mut old_digits_r = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() {
            old_digits_r[p] = new_digits_r[i];
        }
        let old_r = encode(&old_digits_r, radices);
        for c in 0..dim {
            let new_digits_c = decode(c, &new_radices);
            let mut old_digits_c = vec![0usize; n];
            for (i, &p) in perm.iter().enumerate() {
                old_digits_c[p] = new_digits_c[i];
            }
            let old_c = encode(&old_digits_c, radices);
            elements[r][c] = expr.element(old_r, old_c).clone();
        }
    }
    Ok(UnitaryExpression::from_parts_unchecked(
        format!("perm({})", expr.name()),
        new_radices,
        expr.params().to_vec(),
        elements,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_tensor::Matrix;

    fn rx() -> UnitaryExpression {
        UnitaryExpression::new(
            "RX(theta) { [[cos(theta/2), ~i*sin(theta/2)], [~i*sin(theta/2), cos(theta/2)]] }",
        )
        .unwrap()
    }

    fn rz() -> UnitaryExpression {
        UnitaryExpression::new("RZ(phi) { [[e^(~i*phi/2), 0], [0, e^(i*phi/2)]] }").unwrap()
    }

    fn x_gate() -> UnitaryExpression {
        UnitaryExpression::new("X() { [[0, 1], [1, 0]] }").unwrap()
    }

    #[test]
    fn dagger_is_inverse() {
        let g = rx();
        let composed = matmul(&dagger(&g), &g).unwrap();
        let m = composed.to_matrix::<f64>(&[0.83]).unwrap();
        assert!(m.is_identity(1e-12));
    }

    #[test]
    fn dagger_of_constant_gate() {
        let x = x_gate();
        let xd = dagger(&x);
        assert!(matmul(&xd, &x).unwrap().to_matrix::<f64>(&[]).unwrap().is_identity(1e-15));
        assert!(xd.name().contains('†'));
    }

    #[test]
    fn conjugate_and_transpose_compose_to_dagger() {
        let g = rz();
        let via = transpose(&conjugate(&g));
        let direct = dagger(&g);
        let a = via.to_matrix::<f64>(&[1.3]).unwrap();
        let b = direct.to_matrix::<f64>(&[1.3]).unwrap();
        assert!(a.max_elementwise_distance(&b) < 1e-14);
    }

    #[test]
    fn matmul_matches_numeric_product() {
        let a = rx();
        let b = rz();
        let ab = matmul(&a, &b).unwrap();
        assert_eq!(ab.params(), &["theta".to_string(), "phi".to_string()]);
        let sym = ab.to_matrix::<f64>(&[0.4, 1.1]).unwrap();
        let num = a.to_matrix::<f64>(&[0.4]).unwrap().matmul(&b.to_matrix::<f64>(&[1.1]).unwrap());
        assert!(sym.max_elementwise_distance(&num) < 1e-13);
    }

    #[test]
    fn matmul_shared_parameter_is_single_parameter() {
        let a = rx();
        let b = rx(); // same parameter name "theta"
        let ab = matmul(&a, &b).unwrap();
        assert_eq!(ab.num_params(), 1);
        // RX(t)·RX(t) = RX(2t)
        let m = ab.to_matrix::<f64>(&[0.6]).unwrap();
        let expect = rx().to_matrix::<f64>(&[1.2]).unwrap();
        assert!(m.max_elementwise_distance(&expect) < 1e-13);
    }

    #[test]
    fn matmul_rejects_radix_mismatch() {
        let qutrit = UnitaryExpression::new("P<3>(x) { [[1,0,0],[0,e^(i*x),0],[0,0,1]] }").unwrap();
        assert!(matmul(&rx(), &qutrit).is_err());
    }

    #[test]
    fn kron_matches_numeric_kron() {
        let a = rx();
        let b = rz();
        let ab = kron(&a, &b);
        assert_eq!(ab.radices(), &[2, 2]);
        let sym = ab.to_matrix::<f64>(&[0.9, -0.2]).unwrap();
        let num = a.to_matrix::<f64>(&[0.9]).unwrap().kron(&b.to_matrix::<f64>(&[-0.2]).unwrap());
        assert!(sym.max_elementwise_distance(&num) < 1e-13);
    }

    #[test]
    fn kron_mixed_radices() {
        let qutrit = UnitaryExpression::new("P<3>(x) { [[1,0,0],[0,e^(i*x),0],[0,0,1]] }").unwrap();
        let k = kron(&rx(), &qutrit);
        assert_eq!(k.radices(), &[2, 3]);
        assert_eq!(k.dim(), 6);
        assert!(k.check_unitary(&[0.3, 0.8], 1e-12));
    }

    #[test]
    fn substitution_reparameterizes() {
        let g = rx();
        // θ ↦ 2·α
        let s = substitute(
            &g,
            "theta",
            &Expr::mul(Expr::constant(2.0), Expr::var("alpha")),
            &["alpha".to_string()],
        )
        .unwrap();
        assert_eq!(s.params(), &["alpha".to_string()]);
        let a = s.to_matrix::<f64>(&[0.4]).unwrap();
        let b = g.to_matrix::<f64>(&[0.8]).unwrap();
        assert!(a.max_elementwise_distance(&b) < 1e-14);
        assert!(substitute(&g, "missing", &Expr::zero(), &[]).is_err());
    }

    #[test]
    fn fix_param_creates_constant_gate() {
        let g = rx();
        let fixed = fix_param(&g, "theta", std::f64::consts::PI).unwrap();
        assert!(fixed.is_constant());
        let m = fixed.to_matrix::<f64>(&[]).unwrap();
        // RX(π) = -i X
        let mut expect = Matrix::<f64>::zeros(2, 2);
        expect.set(0, 1, qudit_tensor::C64::new(0.0, -1.0));
        expect.set(1, 0, qudit_tensor::C64::new(0.0, -1.0));
        assert!(m.max_elementwise_distance(&expect) < 1e-14);
    }

    #[test]
    fn controlled_x_is_cnot() {
        let cx = control(&x_gate(), 2);
        assert_eq!(cx.radices(), &[2, 2]);
        let m = cx.to_matrix::<f64>(&[]).unwrap();
        let mut cnot = Matrix::<f64>::identity(4);
        cnot.set(2, 2, qudit_tensor::C64::zero());
        cnot.set(3, 3, qudit_tensor::C64::zero());
        cnot.set(2, 3, qudit_tensor::C64::one());
        cnot.set(3, 2, qudit_tensor::C64::one());
        assert!(m.max_elementwise_distance(&cnot) < 1e-15);
    }

    #[test]
    fn qutrit_control_block_structure() {
        let cg = control(&rx(), 3);
        assert_eq!(cg.radices(), &[3, 2]);
        let m = cg.to_matrix::<f64>(&[0.7]).unwrap();
        // First 4x4 block is identity.
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((m.get(i, j).re - expect).abs() < 1e-15);
            }
        }
        assert!(m.is_unitary(1e-12));
    }

    #[test]
    fn trace_of_rz_matches_numeric() {
        let tr = trace(&rz());
        let (re, im) = tr.eval_with(&["phi".to_string()], &[0.9]);
        // Tr RZ(φ) = 2 cos(φ/2)
        assert!((re - 2.0 * (0.45f64).cos()).abs() < 1e-13);
        assert!(im.abs() < 1e-13);
    }

    #[test]
    fn permute_qudits_swaps_cnot_direction() {
        let cnot =
            UnitaryExpression::new("CNOT() { [[1,0,0,0],[0,1,0,0],[0,0,0,1],[0,0,1,0]] }").unwrap();
        let swapped = permute_qudits(&cnot, &[1, 0]).unwrap();
        let m = swapped.to_matrix::<f64>(&[]).unwrap();
        // Reverse CNOT: |ab⟩ → |a⊕b, b⟩
        let mut expect = Matrix::<f64>::zeros(4, 4);
        for (r, c) in [(0usize, 0usize), (3, 1), (2, 2), (1, 3)] {
            expect.set(r, c, qudit_tensor::C64::one());
        }
        assert!(m.max_elementwise_distance(&expect) < 1e-15);
        assert!(permute_qudits(&cnot, &[0, 0]).is_err());
        assert!(permute_qudits(&cnot, &[0]).is_err());
    }

    #[test]
    fn transpose_pushdown_equivalence() {
        // Pushing a transpose into the expression and evaluating equals evaluating then
        // transposing numerically — the property the fusion pass relies on.
        let g = rx();
        let sym = transpose(&g).to_matrix::<f64>(&[1.0]).unwrap();
        let num = g.to_matrix::<f64>(&[1.0]).unwrap().transpose();
        assert!(sym.max_elementwise_distance(&num) < 1e-15);
    }
}
