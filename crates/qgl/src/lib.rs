//! # qudit-qgl
//!
//! The **Qudit Gate Language (QGL)** front-end and symbolic IR of the OpenQudit
//! reproduction.
//!
//! QGL lets a quantum expert define a gate as a symbolic, unitary-valued expression whose
//! syntax mirrors the on-paper matrix formulation:
//!
//! ```
//! use qudit_qgl::UnitaryExpression;
//!
//! let u3 = UnitaryExpression::new(
//!     "U3(θ, ϕ, λ) {
//!         [
//!             [ cos(θ/2), ~ e^(i*λ) * sin(θ/2) ],
//!             [ e^(i*ϕ) * sin(θ/2), e^(i*(ϕ+λ)) * cos(θ/2) ],
//!         ]
//!     }",
//! )?;
//! assert!(u3.check_unitary(&[0.4, 1.0, -0.3], 1e-12));
//!
//! // The analytical gradient is derived automatically — no Listing-1 boilerplate.
//! let grads = u3.gradient_matrices::<f64>(&[0.4, 1.0, -0.3])?;
//! assert_eq!(grads.len(), 3);
//! # Ok::<(), qudit_qgl::QglError>(())
//! ```
//!
//! The crate provides:
//!
//! * [`lexer`], [`parser`], [`ast`] — the QGL grammar of Fig. 2 in the paper,
//! * [`expr`] — real/imaginary symbolic trees ([`Expr`], [`ComplexExpr`]),
//! * [`lower`] — AST → symbolic-matrix lowering with Euler expansion and trig
//!   canonicalization,
//! * [`diff`] — symbolic differentiation,
//! * [`UnitaryExpression`] — the composable symbolic gate IR,
//! * [`transform`] — matrix product, Kronecker product, dagger, control, substitution,
//!   wire permutation, and trace.

pub mod ast;
pub mod diff;
pub mod error;
pub mod expr;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod transform;
pub mod unitary_expr;

pub use error::{QglError, Result};
pub use expr::{ComplexExpr, Expr};
pub use unitary_expr::UnitaryExpression;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<Expr>();
        assert_ss::<ComplexExpr>();
        assert_ss::<UnitaryExpression>();
        assert_ss::<QglError>();
    }
}
