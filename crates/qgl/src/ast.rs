//! Abstract syntax tree for QGL definitions, mirroring the grammar of Fig. 2 in the
//! paper.

/// A parsed QGL gate definition:
/// `ident [radices] ( [varlist] ) { expression } [;]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Definition {
    /// The gate name.
    pub name: String,
    /// Optional qudit radices (e.g. `<2, 3>` for a qubit–qutrit gate). Empty when
    /// omitted, in which case the gate is assumed to act on qubits only.
    pub radices: Vec<usize>,
    /// The symbolic parameter names, in declaration order.
    pub params: Vec<String>,
    /// The gate body.
    pub body: AstExpr,
}

/// Binary operators of QGL's expression grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^`
    Pow,
}

/// A QGL expression node.
///
/// Matrix literals appear directly in the expression grammar (productions 7–8 of
/// Fig. 2), so an expression may evaluate to either a scalar or a matrix; the
/// distinction is resolved during lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// A numeric literal.
    Number(f64),
    /// A variable reference (parameter name or one of the reserved constants
    /// `i`, `e`, `pi`/`π`).
    Variable(String),
    /// A function application, e.g. `cos(θ/2)`.
    Call {
        /// Function name.
        name: String,
        /// Argument expressions.
        args: Vec<AstExpr>,
    },
    /// Unary negation (spelled `~` or a leading `-`).
    Neg(Box<AstExpr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<AstExpr>,
        /// Right operand.
        rhs: Box<AstExpr>,
    },
    /// A matrix literal: a list of rows, each a list of element expressions.
    Matrix(Vec<Vec<AstExpr>>),
}

impl AstExpr {
    /// Convenience constructor for a binary node.
    pub fn binary(op: BinaryOp, lhs: AstExpr, rhs: AstExpr) -> AstExpr {
        AstExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Counts the nodes of the AST (used in parser tests).
    pub fn node_count(&self) -> usize {
        match self {
            AstExpr::Number(_) | AstExpr::Variable(_) => 1,
            AstExpr::Call { args, .. } => 1 + args.iter().map(AstExpr::node_count).sum::<usize>(),
            AstExpr::Neg(inner) => 1 + inner.node_count(),
            AstExpr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
            AstExpr::Matrix(rows) => {
                1 + rows.iter().flat_map(|r| r.iter()).map(AstExpr::node_count).sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_walks_all_variants() {
        let e = AstExpr::Matrix(vec![
            vec![AstExpr::Number(1.0), AstExpr::Neg(Box::new(AstExpr::Variable("x".into())))],
            vec![
                AstExpr::Call { name: "sin".into(), args: vec![AstExpr::Variable("x".into())] },
                AstExpr::binary(BinaryOp::Add, AstExpr::Number(1.0), AstExpr::Number(2.0)),
            ],
        ]);
        assert_eq!(e.node_count(), 1 + 1 + 2 + 2 + 3);
    }
}
