//! Symbolic differentiation of QGL expressions.
//!
//! OpenQudit replaces hand-derived analytical gradients (Listing 1 of the paper) with a
//! symbolic differentiation engine: every [`Expr`]/[`ComplexExpr`] can be differentiated
//! with respect to a named parameter, producing another symbolic expression that is then
//! simplified by the e-graph pass and compiled alongside the original.

use crate::expr::{ComplexExpr, Expr};

/// Differentiates `expr` with respect to the variable `var`.
///
/// The resulting expression is built with the simplifying constructors on [`Expr`], so
/// trivially-zero branches collapse immediately.
pub fn diff(expr: &Expr, var: &str) -> Expr {
    match expr {
        Expr::Const(_) | Expr::Pi => Expr::zero(),
        Expr::Var(name) => {
            if name == var {
                Expr::one()
            } else {
                Expr::zero()
            }
        }
        Expr::Neg(a) => Expr::neg(diff(a, var)),
        Expr::Add(a, b) => Expr::add(diff(a, var), diff(b, var)),
        Expr::Sub(a, b) => Expr::sub(diff(a, var), diff(b, var)),
        Expr::Mul(a, b) => {
            // Product rule: a'b + ab'
            Expr::add(
                Expr::mul(diff(a, var), b.as_ref().clone()),
                Expr::mul(a.as_ref().clone(), diff(b, var)),
            )
        }
        Expr::Div(a, b) => {
            // Quotient rule: (a'b - ab') / b²
            let da = diff(a, var);
            let db = diff(b, var);
            if db.is_zero() {
                return Expr::div(da, b.as_ref().clone());
            }
            Expr::div(
                Expr::sub(Expr::mul(da, b.as_ref().clone()), Expr::mul(a.as_ref().clone(), db)),
                Expr::mul(b.as_ref().clone(), b.as_ref().clone()),
            )
        }
        Expr::Pow(a, b) => {
            let da = diff(a, var);
            let db = diff(b, var);
            if db.is_zero() {
                // d/dx a^c = c·a^(c-1)·a'
                let c = b.as_ref().clone();
                let cm1 = Expr::sub(c.clone(), Expr::one());
                Expr::mul(Expr::mul(c, Expr::pow(a.as_ref().clone(), cm1)), da)
            } else {
                // General case: a^b = exp(b·ln a); d = a^b (b'·ln a + b·a'/a)
                let term1 = Expr::mul(db, Expr::ln(a.as_ref().clone()));
                let term2 = Expr::div(Expr::mul(b.as_ref().clone(), da), a.as_ref().clone());
                Expr::mul(expr.clone(), Expr::add(term1, term2))
            }
        }
        Expr::Sin(a) => Expr::mul(Expr::cos(a.as_ref().clone()), diff(a, var)),
        Expr::Cos(a) => Expr::neg(Expr::mul(Expr::sin(a.as_ref().clone()), diff(a, var))),
        Expr::Sqrt(a) => {
            // d/dx √a = a' / (2√a)
            Expr::div(diff(a, var), Expr::mul(Expr::constant(2.0), Expr::sqrt(a.as_ref().clone())))
        }
        Expr::Exp(a) => Expr::mul(Expr::exp(a.as_ref().clone()), diff(a, var)),
        Expr::Ln(a) => Expr::div(diff(a, var), a.as_ref().clone()),
    }
}

/// Differentiates a complex symbolic element component-wise (∂/∂θ of a real parameter
/// commutes with taking real and imaginary parts).
pub fn diff_complex(expr: &ComplexExpr, var: &str) -> ComplexExpr {
    ComplexExpr { re: diff(&expr.re, var), im: diff(&expr.im, var) }
}

/// Central finite-difference approximation used by tests to validate the symbolic
/// derivative (`f'(x) ≈ [f(x+h) - f(x-h)] / 2h`).
pub fn finite_difference(expr: &Expr, names: &[String], values: &[f64], var: &str, h: f64) -> f64 {
    let idx = names.iter().position(|n| n == var).expect("finite_difference: unknown variable");
    let mut plus = values.to_vec();
    let mut minus = values.to_vec();
    plus[idx] += h;
    minus[idx] -= h;
    (expr.eval_with(names, &plus) - expr.eval_with(names, &minus)) / (2.0 * h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn check_derivative(expr: &Expr, vars: &[&str], at: &[f64], wrt: &str) {
        let ns = names(vars);
        let sym = diff(expr, wrt).eval_with(&ns, at);
        let num = finite_difference(expr, &ns, at, wrt, 1e-6);
        assert!((sym - num).abs() < 1e-5, "d/d{wrt} of {expr}: symbolic {sym} vs numeric {num}");
    }

    #[test]
    fn constants_and_variables() {
        assert!(diff(&Expr::constant(3.0), "x").is_zero());
        assert!(diff(&Expr::Pi, "x").is_zero());
        assert!(diff(&Expr::var("x"), "x").is_one());
        assert!(diff(&Expr::var("y"), "x").is_zero());
    }

    #[test]
    fn trig_derivatives() {
        let x = Expr::var("x");
        let e = Expr::sin(Expr::div(x.clone(), Expr::constant(2.0)));
        check_derivative(&e, &["x"], &[0.9], "x");
        let e = Expr::cos(Expr::mul(Expr::constant(3.0), x.clone()));
        check_derivative(&e, &["x"], &[0.4], "x");
    }

    #[test]
    fn product_quotient_chain() {
        let x = Expr::var("x");
        let y = Expr::var("y");
        let e = Expr::mul(Expr::sin(x.clone()), Expr::cos(y.clone()));
        check_derivative(&e, &["x", "y"], &[0.3, 1.1], "x");
        check_derivative(&e, &["x", "y"], &[0.3, 1.1], "y");

        let q =
            Expr::div(Expr::sin(x.clone()), Expr::add(Expr::constant(2.0), Expr::cos(x.clone())));
        check_derivative(&q, &["x"], &[0.7], "x");
    }

    #[test]
    fn exp_ln_sqrt_pow() {
        let x = Expr::var("x");
        let e = Expr::exp(Expr::mul(Expr::constant(-0.5), x.clone()));
        check_derivative(&e, &["x"], &[1.3], "x");
        let e = Expr::ln(Expr::add(x.clone(), Expr::constant(2.0)));
        check_derivative(&e, &["x"], &[0.5], "x");
        let e = Expr::sqrt(Expr::add(Expr::mul(x.clone(), x.clone()), Expr::one()));
        check_derivative(&e, &["x"], &[0.8], "x");
        let e = Expr::pow(x.clone(), Expr::constant(3.0));
        check_derivative(&e, &["x"], &[1.7], "x");
        // Variable exponent (general power rule).
        let e = Expr::pow(Expr::add(x.clone(), Expr::constant(1.5)), Expr::var("x"));
        check_derivative(&e, &["x"], &[0.6], "x");
    }

    #[test]
    fn derivative_of_independent_expression_is_zero() {
        let e = Expr::mul(Expr::sin(Expr::var("a")), Expr::exp(Expr::var("b")));
        assert!(diff(&e, "c").is_zero());
    }

    #[test]
    fn u3_style_gradient_entry() {
        // The (0,0) entry of U3 is cos(θ/2); its derivative is -sin(θ/2)/2,
        // matching the hand-derived `-0.5 * st` of Listing 1 in the paper.
        let theta = Expr::var("theta");
        let entry = Expr::cos(Expr::div(theta.clone(), Expr::constant(2.0)));
        let d = diff(&entry, "theta");
        let ns = names(&["theta"]);
        for &t in &[0.0, 0.5, 1.3, 2.9] {
            let got = d.eval_with(&ns, &[t]);
            let expect = -0.5 * (t / 2.0).sin();
            assert!((got - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_diff_is_componentwise() {
        let theta = Expr::var("t");
        // e^{iθ} = cos θ + i sin θ; derivative = -sin θ + i cos θ = i·e^{iθ}
        let z = ComplexExpr::new(Expr::cos(theta.clone()), Expr::sin(theta.clone()));
        let dz = diff_complex(&z, "t");
        let ns = names(&["t"]);
        let (re, im) = dz.eval_with(&ns, &[0.77]);
        assert!((re + 0.77f64.sin()).abs() < 1e-14);
        assert!((im - 0.77f64.cos()).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn finite_difference_unknown_var_panics() {
        finite_difference(&Expr::var("x"), &names(&["x"]), &[1.0], "y", 1e-6);
    }
}
