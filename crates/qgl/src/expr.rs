//! Real-valued symbolic expression trees and complex symbolic elements.
//!
//! After parsing, QGL definitions are lowered into an internal representation consisting
//! of a 2-D array of complex symbolic elements; each element stores *separate* symbolic
//! trees for its real and imaginary parts, with all trigonometric functions
//! canonicalized to `sin`/`cos` (Sec. III-B of the paper). [`Expr`] is the real-valued
//! tree and [`ComplexExpr`] is the pair of trees.
//!
//! The constructors on [`Expr`] perform light local simplification (constant folding,
//! additive/multiplicative identities) so that programmatically composed expressions —
//! particularly gradients — do not balloon before they ever reach the e-graph pass.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A real-valued symbolic expression.
///
/// Subtrees are reference-counted ([`Arc`]) so that common subexpressions created during
/// composition and differentiation share storage.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A literal constant.
    Const(f64),
    /// The constant π.
    Pi,
    /// A named real parameter (e.g. `θ`).
    Var(String),
    /// Unary negation.
    Neg(Arc<Expr>),
    /// Addition.
    Add(Arc<Expr>, Arc<Expr>),
    /// Subtraction.
    Sub(Arc<Expr>, Arc<Expr>),
    /// Multiplication.
    Mul(Arc<Expr>, Arc<Expr>),
    /// Division.
    Div(Arc<Expr>, Arc<Expr>),
    /// Power with an arbitrary real exponent.
    Pow(Arc<Expr>, Arc<Expr>),
    /// Sine.
    Sin(Arc<Expr>),
    /// Cosine.
    Cos(Arc<Expr>),
    /// Square root.
    Sqrt(Arc<Expr>),
    /// Natural exponential.
    Exp(Arc<Expr>),
    /// Natural logarithm.
    Ln(Arc<Expr>),
}

impl Expr {
    /// The constant zero.
    pub fn zero() -> Expr {
        Expr::Const(0.0)
    }

    /// The constant one.
    pub fn one() -> Expr {
        Expr::Const(1.0)
    }

    /// A literal constant.
    pub fn constant(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// A named variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Returns `true` if this expression is syntactically the constant zero.
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Const(c) if *c == 0.0)
    }

    /// Returns `true` if this expression is syntactically the constant one.
    pub fn is_one(&self) -> bool {
        matches!(self, Expr::Const(c) if *c == 1.0)
    }

    /// Returns the constant value if this node is a literal constant or π.
    pub fn as_const(&self) -> Option<f64> {
        match self {
            Expr::Const(c) => Some(*c),
            Expr::Pi => Some(std::f64::consts::PI),
            _ => None,
        }
    }

    /// Addition with constant folding and identity elimination.
    #[allow(clippy::should_implement_trait)] // constructor-style API, not an operator
    pub fn add(a: Expr, b: Expr) -> Expr {
        match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => return Expr::Const(x + y),
            (Some(0.0), None) => return b,
            (None, Some(0.0)) => return a,
            _ => {}
        }
        Expr::Add(Arc::new(a), Arc::new(b))
    }

    /// Subtraction with constant folding and identity elimination.
    #[allow(clippy::should_implement_trait)] // constructor-style API, not an operator
    pub fn sub(a: Expr, b: Expr) -> Expr {
        match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => return Expr::Const(x - y),
            (None, Some(0.0)) => return a,
            (Some(0.0), None) => return Expr::neg(b),
            _ => {}
        }
        Expr::Sub(Arc::new(a), Arc::new(b))
    }

    /// Multiplication with constant folding and identity/annihilator elimination.
    #[allow(clippy::should_implement_trait)] // constructor-style API, not an operator
    pub fn mul(a: Expr, b: Expr) -> Expr {
        match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => return Expr::Const(x * y),
            (Some(0.0), _) | (_, Some(0.0)) => return Expr::zero(),
            (Some(1.0), None) => return b,
            (None, Some(1.0)) => return a,
            (Some(-1.0), None) => return Expr::neg(b),
            (None, Some(-1.0)) => return Expr::neg(a),
            _ => {}
        }
        Expr::Mul(Arc::new(a), Arc::new(b))
    }

    /// Division with constant folding and identity elimination.
    #[allow(clippy::should_implement_trait)] // constructor-style API, not an operator
    pub fn div(a: Expr, b: Expr) -> Expr {
        match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) if y != 0.0 => return Expr::Const(x / y),
            (Some(0.0), None) => return Expr::zero(),
            (None, Some(1.0)) => return a,
            _ => {}
        }
        Expr::Div(Arc::new(a), Arc::new(b))
    }

    /// Negation with double-negation and constant folding.
    #[allow(clippy::should_implement_trait)] // constructor-style API, not an operator
    pub fn neg(a: Expr) -> Expr {
        if let Some(c) = a.as_const() {
            return Expr::Const(-c);
        }
        if let Expr::Neg(inner) = &a {
            return inner.as_ref().clone();
        }
        Expr::Neg(Arc::new(a))
    }

    /// Power with folding of the trivial exponents 0 and 1.
    pub fn pow(a: Expr, b: Expr) -> Expr {
        if let Some(e) = b.as_const() {
            if e == 0.0 {
                return Expr::one();
            }
            if e == 1.0 {
                return a;
            }
            if let Some(base) = a.as_const() {
                return Expr::Const(base.powf(e));
            }
        }
        Expr::Pow(Arc::new(a), Arc::new(b))
    }

    /// Sine with constant folding.
    pub fn sin(a: Expr) -> Expr {
        if let Some(c) = a.as_const() {
            return Expr::Const(c.sin());
        }
        Expr::Sin(Arc::new(a))
    }

    /// Cosine with constant folding.
    pub fn cos(a: Expr) -> Expr {
        if let Some(c) = a.as_const() {
            return Expr::Const(c.cos());
        }
        Expr::Cos(Arc::new(a))
    }

    /// Square root with constant folding.
    pub fn sqrt(a: Expr) -> Expr {
        if let Some(c) = a.as_const() {
            if c >= 0.0 {
                return Expr::Const(c.sqrt());
            }
        }
        Expr::Sqrt(Arc::new(a))
    }

    /// Natural exponential with constant folding of `exp(0) = 1`.
    pub fn exp(a: Expr) -> Expr {
        if let Some(c) = a.as_const() {
            if c == 0.0 {
                return Expr::one();
            }
            return Expr::Const(c.exp());
        }
        Expr::Exp(Arc::new(a))
    }

    /// Natural logarithm with constant folding.
    pub fn ln(a: Expr) -> Expr {
        if let Some(c) = a.as_const() {
            if c > 0.0 {
                return Expr::Const(c.ln());
            }
        }
        Expr::Ln(Arc::new(a))
    }

    /// Evaluates the expression given a mapping from variable name to value.
    ///
    /// Unknown variables evaluate to `f64::NAN`, which makes accidental unbound
    /// parameters loud in tests.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<f64>) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Pi => std::f64::consts::PI,
            Expr::Var(name) => lookup(name).unwrap_or(f64::NAN),
            Expr::Neg(a) => -a.eval(lookup),
            Expr::Add(a, b) => a.eval(lookup) + b.eval(lookup),
            Expr::Sub(a, b) => a.eval(lookup) - b.eval(lookup),
            Expr::Mul(a, b) => a.eval(lookup) * b.eval(lookup),
            Expr::Div(a, b) => a.eval(lookup) / b.eval(lookup),
            Expr::Pow(a, b) => a.eval(lookup).powf(b.eval(lookup)),
            Expr::Sin(a) => a.eval(lookup).sin(),
            Expr::Cos(a) => a.eval(lookup).cos(),
            Expr::Sqrt(a) => a.eval(lookup).sqrt(),
            Expr::Exp(a) => a.eval(lookup).exp(),
            Expr::Ln(a) => a.eval(lookup).ln(),
        }
    }

    /// Evaluates using an ordered parameter list (`names[i]` ↦ `values[i]`).
    pub fn eval_with(&self, names: &[String], values: &[f64]) -> f64 {
        self.eval(&|n| names.iter().position(|p| p == n).map(|i| values[i]))
    }

    /// Collects the free variables of the expression in sorted order.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Const(_) | Expr::Pi => {}
            Expr::Var(name) => {
                out.insert(name.clone());
            }
            Expr::Neg(a)
            | Expr::Sin(a)
            | Expr::Cos(a)
            | Expr::Sqrt(a)
            | Expr::Exp(a)
            | Expr::Ln(a) => a.collect_variables(out),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
        }
    }

    /// Returns `true` if the expression references `name`.
    pub fn depends_on(&self, name: &str) -> bool {
        match self {
            Expr::Const(_) | Expr::Pi => false,
            Expr::Var(n) => n == name,
            Expr::Neg(a)
            | Expr::Sin(a)
            | Expr::Cos(a)
            | Expr::Sqrt(a)
            | Expr::Exp(a)
            | Expr::Ln(a) => a.depends_on(name),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b) => a.depends_on(name) || b.depends_on(name),
        }
    }

    /// Substitutes every occurrence of variable `name` with `replacement`.
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Const(_) | Expr::Pi => self.clone(),
            Expr::Var(n) => {
                if n == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Neg(a) => Expr::neg(a.substitute(name, replacement)),
            Expr::Add(a, b) => {
                Expr::add(a.substitute(name, replacement), b.substitute(name, replacement))
            }
            Expr::Sub(a, b) => {
                Expr::sub(a.substitute(name, replacement), b.substitute(name, replacement))
            }
            Expr::Mul(a, b) => {
                Expr::mul(a.substitute(name, replacement), b.substitute(name, replacement))
            }
            Expr::Div(a, b) => {
                Expr::div(a.substitute(name, replacement), b.substitute(name, replacement))
            }
            Expr::Pow(a, b) => {
                Expr::pow(a.substitute(name, replacement), b.substitute(name, replacement))
            }
            Expr::Sin(a) => Expr::sin(a.substitute(name, replacement)),
            Expr::Cos(a) => Expr::cos(a.substitute(name, replacement)),
            Expr::Sqrt(a) => Expr::sqrt(a.substitute(name, replacement)),
            Expr::Exp(a) => Expr::exp(a.substitute(name, replacement)),
            Expr::Ln(a) => Expr::ln(a.substitute(name, replacement)),
        }
    }

    /// Renames a variable (a substitution by another variable).
    pub fn rename(&self, from: &str, to: &str) -> Expr {
        self.substitute(from, &Expr::var(to))
    }

    /// Number of nodes in the expression tree.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Pi | Expr::Var(_) => 1,
            Expr::Neg(a)
            | Expr::Sin(a)
            | Expr::Cos(a)
            | Expr::Sqrt(a)
            | Expr::Exp(a)
            | Expr::Ln(a) => 1 + a.node_count(),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b) => 1 + a.node_count() + b.node_count(),
        }
    }

    /// Number of trigonometric (`sin`/`cos`) nodes — the dominant cost in the paper's
    /// extraction cost model (Table I).
    pub fn trig_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Pi | Expr::Var(_) => 0,
            Expr::Sin(a) | Expr::Cos(a) => 1 + a.trig_count(),
            Expr::Neg(a) | Expr::Sqrt(a) | Expr::Exp(a) | Expr::Ln(a) => a.trig_count(),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b) => a.trig_count() + b.trig_count(),
        }
    }
}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        use Expr::*;
        match (self, other) {
            (Const(a), Const(b)) => a.to_bits() == b.to_bits(),
            (Pi, Pi) => true,
            (Var(a), Var(b)) => a == b,
            (Neg(a), Neg(b))
            | (Sin(a), Sin(b))
            | (Cos(a), Cos(b))
            | (Sqrt(a), Sqrt(b))
            | (Exp(a), Exp(b))
            | (Ln(a), Ln(b)) => a == b,
            (Add(a1, a2), Add(b1, b2))
            | (Sub(a1, a2), Sub(b1, b2))
            | (Mul(a1, a2), Mul(b1, b2))
            | (Div(a1, a2), Div(b1, b2))
            | (Pow(a1, a2), Pow(b1, b2)) => a1 == b1 && a2 == b2,
            _ => false,
        }
    }
}

impl Eq for Expr {}

impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Expr::Const(c) => c.to_bits().hash(state),
            Expr::Pi => {}
            Expr::Var(name) => name.hash(state),
            Expr::Neg(a)
            | Expr::Sin(a)
            | Expr::Cos(a)
            | Expr::Sqrt(a)
            | Expr::Exp(a)
            | Expr::Ln(a) => a.hash(state),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b) => {
                a.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Pi => write!(f, "pi"),
            Expr::Var(name) => write!(f, "{name}"),
            Expr::Neg(a) => write!(f, "(- {a})"),
            Expr::Add(a, b) => write!(f, "(+ {a} {b})"),
            Expr::Sub(a, b) => write!(f, "(- {a} {b})"),
            Expr::Mul(a, b) => write!(f, "(* {a} {b})"),
            Expr::Div(a, b) => write!(f, "(/ {a} {b})"),
            Expr::Pow(a, b) => write!(f, "(pow {a} {b})"),
            Expr::Sin(a) => write!(f, "(sin {a})"),
            Expr::Cos(a) => write!(f, "(cos {a})"),
            Expr::Sqrt(a) => write!(f, "(sqrt {a})"),
            Expr::Exp(a) => write!(f, "(exp {a})"),
            Expr::Ln(a) => write!(f, "(ln {a})"),
        }
    }
}

/// A complex-valued symbolic element: separate real and imaginary [`Expr`] trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ComplexExpr {
    /// Real part.
    pub re: Expr,
    /// Imaginary part.
    pub im: Expr,
}

impl ComplexExpr {
    /// Creates a complex symbolic element from its parts.
    pub fn new(re: Expr, im: Expr) -> Self {
        ComplexExpr { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        ComplexExpr { re: Expr::zero(), im: Expr::zero() }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        ComplexExpr { re: Expr::one(), im: Expr::zero() }
    }

    /// The imaginary unit.
    pub fn i() -> Self {
        ComplexExpr { re: Expr::zero(), im: Expr::one() }
    }

    /// A purely real element from a constant.
    pub fn from_const(v: f64) -> Self {
        ComplexExpr { re: Expr::constant(v), im: Expr::zero() }
    }

    /// A purely real element from a real expression.
    pub fn from_real(re: Expr) -> Self {
        ComplexExpr { re, im: Expr::zero() }
    }

    /// Returns `true` if both parts are syntactically zero.
    pub fn is_zero(&self) -> bool {
        self.re.is_zero() && self.im.is_zero()
    }

    /// Returns `true` if this is syntactically the constant one.
    pub fn is_one(&self) -> bool {
        self.re.is_one() && self.im.is_zero()
    }

    /// Returns `true` if the element contains no free variables.
    pub fn is_constant(&self) -> bool {
        self.re.variables().is_empty() && self.im.variables().is_empty()
    }

    /// Complex addition.
    pub fn add(&self, other: &ComplexExpr) -> ComplexExpr {
        ComplexExpr {
            re: Expr::add(self.re.clone(), other.re.clone()),
            im: Expr::add(self.im.clone(), other.im.clone()),
        }
    }

    /// Complex subtraction.
    pub fn sub(&self, other: &ComplexExpr) -> ComplexExpr {
        ComplexExpr {
            re: Expr::sub(self.re.clone(), other.re.clone()),
            im: Expr::sub(self.im.clone(), other.im.clone()),
        }
    }

    /// Complex multiplication `(a+bi)(c+di) = (ac-bd) + (ad+bc)i`.
    pub fn mul(&self, other: &ComplexExpr) -> ComplexExpr {
        ComplexExpr {
            re: Expr::sub(
                Expr::mul(self.re.clone(), other.re.clone()),
                Expr::mul(self.im.clone(), other.im.clone()),
            ),
            im: Expr::add(
                Expr::mul(self.re.clone(), other.im.clone()),
                Expr::mul(self.im.clone(), other.re.clone()),
            ),
        }
    }

    /// Complex division.
    pub fn div(&self, other: &ComplexExpr) -> ComplexExpr {
        // (a+bi)/(c+di) = [(ac+bd) + (bc-ad)i] / (c²+d²)
        let denom = Expr::add(
            Expr::mul(other.re.clone(), other.re.clone()),
            Expr::mul(other.im.clone(), other.im.clone()),
        );
        ComplexExpr {
            re: Expr::div(
                Expr::add(
                    Expr::mul(self.re.clone(), other.re.clone()),
                    Expr::mul(self.im.clone(), other.im.clone()),
                ),
                denom.clone(),
            ),
            im: Expr::div(
                Expr::sub(
                    Expr::mul(self.im.clone(), other.re.clone()),
                    Expr::mul(self.re.clone(), other.im.clone()),
                ),
                denom,
            ),
        }
    }

    /// Negation.
    pub fn neg(&self) -> ComplexExpr {
        ComplexExpr { re: Expr::neg(self.re.clone()), im: Expr::neg(self.im.clone()) }
    }

    /// Complex conjugate.
    pub fn conj(&self) -> ComplexExpr {
        ComplexExpr { re: self.re.clone(), im: Expr::neg(self.im.clone()) }
    }

    /// Complex exponential of a symbolic element:
    /// `exp(a + bi) = e^a (cos b + i sin b)`.
    pub fn exp(&self) -> ComplexExpr {
        if self.re.is_zero() {
            // Pure phase: e^{ib} = cos b + i sin b (Euler), avoiding a spurious e^0.
            return ComplexExpr { re: Expr::cos(self.im.clone()), im: Expr::sin(self.im.clone()) };
        }
        let mag = Expr::exp(self.re.clone());
        ComplexExpr {
            re: Expr::mul(mag.clone(), Expr::cos(self.im.clone())),
            im: Expr::mul(mag, Expr::sin(self.im.clone())),
        }
    }

    /// Evaluates both parts with an ordered parameter list.
    pub fn eval_with(&self, names: &[String], values: &[f64]) -> (f64, f64) {
        (self.re.eval_with(names, values), self.im.eval_with(names, values))
    }

    /// Substitutes a variable in both parts.
    pub fn substitute(&self, name: &str, replacement: &Expr) -> ComplexExpr {
        ComplexExpr {
            re: self.re.substitute(name, replacement),
            im: self.im.substitute(name, replacement),
        }
    }

    /// Free variables of both parts.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut v = self.re.variables();
        v.extend(self.im.variables());
        v
    }

    /// Total node count of both parts.
    pub fn node_count(&self) -> usize {
        self.re.node_count() + self.im.node_count()
    }
}

impl fmt::Display for ComplexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) + i({})", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Expr {
        Expr::var("t")
    }

    #[test]
    fn constant_folding_in_constructors() {
        assert_eq!(Expr::add(Expr::constant(2.0), Expr::constant(3.0)), Expr::Const(5.0));
        assert_eq!(Expr::mul(Expr::constant(2.0), Expr::constant(3.0)), Expr::Const(6.0));
        assert_eq!(Expr::mul(Expr::zero(), t()), Expr::Const(0.0));
        assert_eq!(Expr::mul(Expr::one(), t()), t());
        assert_eq!(Expr::add(t(), Expr::zero()), t());
        assert_eq!(Expr::sub(t(), Expr::zero()), t());
        assert_eq!(Expr::div(t(), Expr::one()), t());
        assert_eq!(Expr::pow(t(), Expr::zero()), Expr::one());
        assert_eq!(Expr::pow(t(), Expr::one()), t());
        assert_eq!(Expr::neg(Expr::neg(t())), t());
        assert_eq!(Expr::exp(Expr::zero()), Expr::one());
    }

    #[test]
    fn eval_matches_rust_math() {
        let e = Expr::add(
            Expr::mul(Expr::sin(t()), Expr::sin(t())),
            Expr::mul(Expr::cos(t()), Expr::cos(t())),
        );
        let v = e.eval_with(&["t".to_string()], &[0.37]);
        assert!((v - 1.0).abs() < 1e-14);

        let e2 = Expr::pow(Expr::var("x"), Expr::constant(3.0));
        assert!((e2.eval_with(&["x".to_string()], &[2.0]) - 8.0).abs() < 1e-14);

        let e3 = Expr::div(Expr::Pi, Expr::constant(2.0));
        assert!((e3.eval(&|_| None) - std::f64::consts::FRAC_PI_2).abs() < 1e-14);
    }

    #[test]
    fn unknown_variable_is_nan() {
        assert!(Expr::var("missing").eval(&|_| None).is_nan());
    }

    #[test]
    fn variables_and_depends_on() {
        let e = Expr::mul(Expr::sin(Expr::var("a")), Expr::add(Expr::var("b"), Expr::Pi));
        let vars: Vec<String> = e.variables().into_iter().collect();
        assert_eq!(vars, vec!["a".to_string(), "b".to_string()]);
        assert!(e.depends_on("a"));
        assert!(!e.depends_on("c"));
    }

    #[test]
    fn substitution() {
        let e = Expr::sin(Expr::var("x"));
        let s = e.substitute("x", &Expr::div(Expr::var("y"), Expr::constant(2.0)));
        assert_eq!(s, Expr::sin(Expr::div(Expr::var("y"), Expr::constant(2.0))));
        let r = e.rename("x", "z");
        assert!(r.depends_on("z") && !r.depends_on("x"));
    }

    #[test]
    fn node_and_trig_counts() {
        let e = Expr::mul(Expr::sin(t()), Expr::cos(t()));
        assert_eq!(e.trig_count(), 2);
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn display_is_sexpr() {
        let e = Expr::add(Expr::sin(t()), Expr::constant(1.0));
        assert_eq!(e.to_string(), "(+ (sin t) 1)");
    }

    #[test]
    fn hash_eq_consistency() {
        use std::collections::HashSet;
        let a = Expr::mul(Expr::sin(t()), Expr::cos(t()));
        let b = Expr::mul(Expr::sin(t()), Expr::cos(t()));
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn complex_mul_matches_numeric() {
        let a = ComplexExpr::new(Expr::var("x"), Expr::constant(1.0));
        let b = ComplexExpr::new(Expr::constant(2.0), Expr::var("y"));
        let prod = a.mul(&b);
        let names = vec!["x".to_string(), "y".to_string()];
        let (re, im) = prod.eval_with(&names, &[3.0, 4.0]);
        // (3+i)(2+4i) = 6+12i+2i-4 = 2 + 14i
        assert!((re - 2.0).abs() < 1e-14);
        assert!((im - 14.0).abs() < 1e-14);
    }

    #[test]
    fn complex_div_matches_numeric() {
        let a = ComplexExpr::from_const(1.0);
        let b = ComplexExpr::new(Expr::constant(0.0), Expr::constant(1.0));
        let q = a.div(&b); // 1/i = -i
        let (re, im) = q.eval_with(&[], &[]);
        assert!((re - 0.0).abs() < 1e-14);
        assert!((im + 1.0).abs() < 1e-14);
    }

    #[test]
    fn complex_exp_is_euler_for_pure_imaginary() {
        let theta = Expr::var("t");
        let z = ComplexExpr::new(Expr::zero(), theta);
        let e = z.exp();
        assert_eq!(e.re, Expr::cos(Expr::var("t")));
        assert_eq!(e.im, Expr::sin(Expr::var("t")));
        // And no `exp` node should appear for the pure-phase case.
        assert!(!e.re.to_string().contains("exp"));
    }

    #[test]
    fn complex_exp_general() {
        let z = ComplexExpr::new(Expr::var("a"), Expr::var("b"));
        let e = z.exp();
        let names = vec!["a".to_string(), "b".to_string()];
        let (re, im) = e.eval_with(&names, &[0.5, 1.2]);
        let expected = (0.5f64).exp();
        assert!((re - expected * 1.2f64.cos()).abs() < 1e-12);
        assert!((im - expected * 1.2f64.sin()).abs() < 1e-12);
    }

    #[test]
    fn complex_helpers() {
        assert!(ComplexExpr::zero().is_zero());
        assert!(ComplexExpr::one().is_one());
        assert!(ComplexExpr::from_const(2.5).is_constant());
        assert!(!ComplexExpr::new(Expr::var("x"), Expr::zero()).is_constant());
        let conj = ComplexExpr::i().conj();
        let (re, im) = conj.eval_with(&[], &[]);
        assert_eq!((re, im), (0.0, -1.0));
    }
}
