//! # qudit-baseline
//!
//! A "traditional numerical compiler" baseline for the OpenQudit reproduction.
//!
//! The paper compares OpenQudit against BQSKit (and, for construction, Qiskit and Tket).
//! Those are out-of-process Python stacks; this crate reproduces the *strategy* they
//! embody so the comparison can run in-repo (see DESIGN.md §3): hand-written gate
//! classes with manually derived analytical gradients (Listing 1 of the paper),
//! per-append safety/equality checks during circuit construction, and unitary/gradient
//! evaluation by accumulating full-width embedded matrices. The baseline plugs into the
//! same Levenberg–Marquardt optimizer as the TNVM path through
//! [`qudit_optimize::GradientEvaluator`].

pub mod circuit;
pub mod gates;

pub use circuit::{BaselineCircuit, BaselineError, BaselineEvaluator, Result};
pub use gates::{
    gate_by_name, BaselineGate, CPhaseGate, ConstantGate, QutritPhaseGate, QutritUGate, RxGate,
    RzGate, RzzGate, U3Gate,
};
