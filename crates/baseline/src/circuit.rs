//! The baseline circuit container and evaluation engine.
//!
//! [`BaselineCircuit`] models how a traditional numerical compiler builds and evaluates
//! circuits: every append repeats safety checks (location validation, a numerical
//! unitarity probe of the gate, and an equality scan against the already-registered
//! gates), and the unitary/gradient are computed by accumulating full-width matrices with
//! prefix/suffix products — no tensor network, no symbolic simplification, no caching.
//! This is the comparison side of Figs. 4, 6, and 7 (see DESIGN.md §3 for the
//! substitution rationale).

use std::sync::Arc;

use qudit_circuit::{embed_gate, OpParams, QuditCircuit};
use qudit_optimize::GradientEvaluator;
use qudit_tensor::Matrix;

use crate::gates::{gate_by_name, BaselineGate};

/// Errors produced by the baseline circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Location/radix validation failed.
    InvalidLocation(String),
    /// The gate failed its per-append unitarity probe.
    NotUnitary(String),
    /// Wrong number of parameter values.
    ParameterCount {
        /// Expected count.
        expected: usize,
        /// Found count.
        found: usize,
    },
    /// No baseline implementation exists for a gate name.
    UnknownGate(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::InvalidLocation(d) => write!(f, "invalid location: {d}"),
            BaselineError::NotUnitary(d) => write!(f, "gate is not unitary: {d}"),
            BaselineError::ParameterCount { expected, found } => {
                write!(f, "expected {expected} parameters, found {found}")
            }
            BaselineError::UnknownGate(name) => write!(f, "no baseline gate named '{name}'"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Result alias for baseline operations.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// Parameter binding of one baseline operation.
#[derive(Debug, Clone)]
enum Binding {
    Free { offset: usize },
    Fixed(Vec<f64>),
}

/// One gate application.
#[derive(Debug, Clone)]
struct BaselineOp {
    gate: Arc<dyn BaselineGate>,
    location: Vec<usize>,
    binding: Binding,
}

/// A circuit evaluated the traditional way.
#[derive(Debug, Clone, Default)]
pub struct BaselineCircuit {
    radices: Vec<usize>,
    ops: Vec<BaselineOp>,
    registered: Vec<Arc<dyn BaselineGate>>,
    num_params: usize,
}

impl BaselineCircuit {
    /// Creates an empty circuit over qudits with the given radices.
    pub fn new(radices: Vec<usize>) -> Self {
        BaselineCircuit { radices, ..Default::default() }
    }

    /// Creates an empty `n`-qubit circuit.
    pub fn qubits(n: usize) -> Self {
        BaselineCircuit::new(vec![2; n])
    }

    /// Number of qudits.
    pub fn num_qudits(&self) -> usize {
        self.radices.len()
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.radices.iter().product()
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of free parameters.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// The per-append validation a traditional framework performs: location checking, a
    /// numerical unitarity probe, and an equality scan against every gate registered so
    /// far (to deduplicate definitions).
    fn check_gate(&mut self, gate: &Arc<dyn BaselineGate>, location: &[usize]) -> Result<()> {
        if location.len() != gate.radices().len() {
            return Err(BaselineError::InvalidLocation(format!(
                "gate '{}' arity {} vs location {:?}",
                gate.name(),
                gate.radices().len(),
                location
            )));
        }
        let mut seen = vec![false; self.num_qudits()];
        for (&q, &r) in location.iter().zip(gate.radices().iter()) {
            if q >= self.num_qudits() || seen[q] || self.radices[q] != r {
                return Err(BaselineError::InvalidLocation(format!(
                    "qudit {q} invalid for gate '{}'",
                    gate.name()
                )));
            }
            seen[q] = true;
        }
        // Unitarity probe at an arbitrary parameter point (repeated on every append —
        // this is the cost the reference-append mechanism of OpenQudit amortizes away).
        let probe: Vec<f64> = (0..gate.num_params()).map(|k| 0.37 + 0.59 * k as f64).collect();
        if !gate.unitary(&probe).is_unitary(1e-8) {
            return Err(BaselineError::NotUnitary(gate.name().to_string()));
        }
        // Equality scan against registered gates.
        let already_known = self.registered.iter().any(|g| {
            g.name() == gate.name()
                && g.num_params() == gate.num_params()
                && g.radices() == gate.radices()
                && g.unitary(&probe).max_elementwise_distance(&gate.unitary(&probe)) < 1e-12
        });
        if !already_known {
            self.registered.push(Arc::clone(gate));
        }
        Ok(())
    }

    /// Appends a parameterized gate.
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineError`] if validation fails.
    pub fn append(&mut self, gate: Arc<dyn BaselineGate>, location: Vec<usize>) -> Result<()> {
        self.check_gate(&gate, &location)?;
        let offset = self.num_params;
        self.num_params += gate.num_params();
        self.ops.push(BaselineOp { gate, location, binding: Binding::Free { offset } });
        Ok(())
    }

    /// Appends a gate with fixed parameter values.
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineError`] if validation fails or the value count is wrong.
    pub fn append_constant(
        &mut self,
        gate: Arc<dyn BaselineGate>,
        location: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<()> {
        self.check_gate(&gate, &location)?;
        if values.len() != gate.num_params() {
            return Err(BaselineError::ParameterCount {
                expected: gate.num_params(),
                found: values.len(),
            });
        }
        self.ops.push(BaselineOp { gate, location, binding: Binding::Fixed(values) });
        Ok(())
    }

    /// Converts an OpenQudit [`QuditCircuit`] into a baseline circuit by looking up each
    /// gate's hand-written implementation by name. Used by the benchmarks so both
    /// backends evaluate *exactly* the same ansatz.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::UnknownGate`] if a gate has no baseline implementation.
    pub fn from_qudit_circuit(circuit: &QuditCircuit) -> Result<Self> {
        let mut out = BaselineCircuit::new(circuit.radices().to_vec());
        for op in circuit.ops() {
            let expr = circuit
                .expression(op.expr)
                .expect("circuit operations reference cached expressions");
            let gate = gate_by_name(expr.name())
                .ok_or_else(|| BaselineError::UnknownGate(expr.name().to_string()))?;
            match &op.params {
                OpParams::Parameterized { .. } => out.append(gate, op.location.clone())?,
                OpParams::Constant(values) => {
                    out.append_constant(gate, op.location.clone(), values.clone())?
                }
            }
        }
        Ok(out)
    }

    fn op_values(&self, op: &BaselineOp, params: &[f64]) -> Vec<f64> {
        match &op.binding {
            Binding::Fixed(values) => values.clone(),
            Binding::Free { offset } => params[*offset..*offset + op.gate.num_params()].to_vec(),
        }
    }

    /// Computes the circuit unitary by direct accumulation of embedded gate matrices.
    ///
    /// # Panics
    ///
    /// Panics if `params` has the wrong length.
    pub fn unitary(&self, params: &[f64]) -> Matrix<f64> {
        assert_eq!(params.len(), self.num_params, "wrong parameter count");
        let dim = self.dim();
        let mut total = Matrix::<f64>::identity(dim);
        for op in &self.ops {
            let values = self.op_values(op, params);
            let gate = op.gate.unitary(&values);
            let embedded = embed_gate(&gate, op.gate.radices(), &op.location, &self.radices);
            total = embedded.matmul(&total);
        }
        total
    }

    /// Computes the circuit unitary and its gradient with prefix/suffix full-width
    /// products (the standard non-tensor-network approach).
    ///
    /// # Panics
    ///
    /// Panics if `params` has the wrong length.
    pub fn unitary_and_gradient(&self, params: &[f64]) -> (Matrix<f64>, Vec<Matrix<f64>>) {
        assert_eq!(params.len(), self.num_params, "wrong parameter count");
        let dim = self.dim();
        let k = self.ops.len();
        // Embedded gate matrices.
        let mats: Vec<Matrix<f64>> = self
            .ops
            .iter()
            .map(|op| {
                let values = self.op_values(op, params);
                embed_gate(
                    &op.gate.unitary(&values),
                    op.gate.radices(),
                    &op.location,
                    &self.radices,
                )
            })
            .collect();
        // prefix[i] = op_{i-1} · … · op_0 (identity for i = 0).
        let mut prefix = Vec::with_capacity(k + 1);
        prefix.push(Matrix::<f64>::identity(dim));
        for m in &mats {
            let last = prefix.last().expect("prefix is non-empty");
            prefix.push(m.matmul(last));
        }
        // suffix[i] = op_{k-1} · … · op_i (identity for i = k).
        let mut suffix = vec![Matrix::<f64>::identity(dim); k + 1];
        for i in (0..k).rev() {
            suffix[i] = suffix[i + 1].matmul(&mats[i]);
        }
        let unitary = prefix[k].clone();

        let mut gradient = vec![Matrix::<f64>::zeros(dim, dim); self.num_params];
        for (i, op) in self.ops.iter().enumerate() {
            let Binding::Free { offset } = op.binding else { continue };
            let values = self.op_values(op, params);
            for (j, dgate) in op.gate.gradient(&values).into_iter().enumerate() {
                let embedded = embed_gate(&dgate, op.gate.radices(), &op.location, &self.radices);
                gradient[offset + j] = suffix[i + 1].matmul(&embedded).matmul(&prefix[i]);
            }
        }
        (unitary, gradient)
    }
}

/// A [`GradientEvaluator`] backed by the baseline engine, so the same LM optimizer and
/// instantiation driver can be used for both sides of the comparison.
#[derive(Debug, Clone)]
pub struct BaselineEvaluator {
    circuit: BaselineCircuit,
}

impl BaselineEvaluator {
    /// Wraps a baseline circuit.
    pub fn new(circuit: BaselineCircuit) -> Self {
        BaselineEvaluator { circuit }
    }

    /// Builds the evaluator directly from an OpenQudit circuit.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::UnknownGate`] if a gate has no baseline implementation.
    pub fn from_qudit_circuit(circuit: &QuditCircuit) -> Result<Self> {
        Ok(BaselineEvaluator::new(BaselineCircuit::from_qudit_circuit(circuit)?))
    }
}

impl GradientEvaluator for BaselineEvaluator {
    fn num_params(&self) -> usize {
        self.circuit.num_params()
    }

    fn dim(&self) -> usize {
        self.circuit.dim()
    }

    fn evaluate(&mut self, params: &[f64]) -> (Matrix<f64>, Vec<Matrix<f64>>) {
        self.circuit.unitary_and_gradient(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::{ConstantGate, RzzGate, U3Gate};
    use qudit_circuit::builders;
    use qudit_tensor::C64;

    fn rng_params(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 30) as f64) - 2.0
            })
            .collect()
    }

    #[test]
    fn append_validation() {
        let mut c = BaselineCircuit::qubits(2);
        assert!(c.append(Arc::new(U3Gate), vec![0]).is_ok());
        assert!(matches!(
            c.append(Arc::new(U3Gate), vec![5]),
            Err(BaselineError::InvalidLocation(_))
        ));
        assert!(matches!(
            c.append(Arc::new(ConstantGate::csum()), vec![0, 1]),
            Err(BaselineError::InvalidLocation(_))
        ));
        assert!(matches!(
            c.append_constant(Arc::new(RzzGate), vec![0, 1], vec![]),
            Err(BaselineError::ParameterCount { .. })
        ));
        assert_eq!(c.num_params(), 3);
        assert_eq!(c.num_ops(), 1);
    }

    #[test]
    fn matches_openqudit_reference_unitary() {
        for (n, layers) in [(2usize, 1usize), (3, 2)] {
            let reference = builders::pqc_qubit_ladder(n, layers).unwrap();
            let baseline = BaselineCircuit::from_qudit_circuit(&reference).unwrap();
            assert_eq!(baseline.num_params(), reference.num_params());
            let params = rng_params(reference.num_params(), 3);
            let a = baseline.unitary(&params);
            let b = reference.unitary::<f64>(&params).unwrap();
            assert!(a.max_elementwise_distance(&b) < 1e-10);
        }
    }

    #[test]
    fn qutrit_conversion_matches_reference() {
        let reference = builders::pqc_qutrit_ladder(2, 1).unwrap();
        let baseline = BaselineCircuit::from_qudit_circuit(&reference).unwrap();
        let params = rng_params(reference.num_params(), 17);
        let a = baseline.unitary(&params);
        let b = reference.unitary::<f64>(&params).unwrap();
        assert!(a.max_elementwise_distance(&b) < 1e-10);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let reference = builders::pqc_qubit_ladder(2, 1).unwrap();
        let baseline = BaselineCircuit::from_qudit_circuit(&reference).unwrap();
        let params = rng_params(baseline.num_params(), 9);
        let (u, grads) = baseline.unitary_and_gradient(&params);
        assert!(u.is_unitary(1e-10));
        let h = 1e-6;
        for k in 0..baseline.num_params() {
            let mut plus = params.clone();
            let mut minus = params.clone();
            plus[k] += h;
            minus[k] -= h;
            let fd = baseline
                .unitary(&plus)
                .sub(&baseline.unitary(&minus))
                .unwrap()
                .scale(C64::from_real(1.0 / (2.0 * h)));
            assert!(grads[k].max_elementwise_distance(&fd) < 1e-5, "parameter {k}");
        }
    }

    #[test]
    fn gradient_agrees_with_tnvm() {
        let circuit = builders::pqc_qubit_ladder(3, 2).unwrap();
        let baseline = BaselineCircuit::from_qudit_circuit(&circuit).unwrap();
        let params = rng_params(circuit.num_params(), 23);
        let (bu, bg) = baseline.unitary_and_gradient(&params);

        let cache = qudit_qvm::ExpressionCache::new();
        let mut tnvm_eval = qudit_optimize::TnvmEvaluator::new(&circuit, &cache);
        let (tu, tg) = tnvm_eval.evaluate(&params);
        assert!(bu.max_elementwise_distance(&tu) < 1e-9);
        for (a, b) in bg.iter().zip(tg.iter()) {
            assert!(a.max_elementwise_distance(b) < 1e-9);
        }
    }

    #[test]
    fn unknown_gate_conversion_fails_loudly() {
        let mut c = qudit_circuit::QuditCircuit::qubits(1);
        let custom = qudit_qgl::UnitaryExpression::new(
            "Mystery(t) { [[cos(t), ~sin(t)], [sin(t), cos(t)]] }",
        )
        .unwrap();
        let r = c.cache_operation(custom).unwrap();
        c.append_ref(r, vec![0]).unwrap();
        assert!(matches!(
            BaselineCircuit::from_qudit_circuit(&c),
            Err(BaselineError::UnknownGate(_))
        ));
    }

    #[test]
    fn evaluator_trait_wiring() {
        let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
        let mut evaluator = BaselineEvaluator::from_qudit_circuit(&circuit).unwrap();
        assert_eq!(evaluator.num_params(), circuit.num_params());
        assert_eq!(evaluator.dim(), 4);
        let (u, g) = evaluator.evaluate(&rng_params(circuit.num_params(), 2));
        assert!(u.is_unitary(1e-10));
        assert_eq!(g.len(), circuit.num_params());
    }

    #[test]
    fn error_display() {
        assert!(BaselineError::UnknownGate("Q".into()).to_string().contains("Q"));
        assert!(BaselineError::NotUnitary("X".into()).to_string().contains("unitary"));
    }
}
