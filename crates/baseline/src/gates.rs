//! Hand-written gate implementations in the style of a traditional numerical compiler.
//!
//! Each gate provides a `unitary` and a manually derived `gradient` function — exactly
//! the Listing-1 pattern the paper argues is labor-intensive and error-prone. These
//! implementations exist so the baseline engine evaluates circuits the way BQSKit-like
//! frameworks do, providing the comparison side of Figs. 4, 6, and 7.

use std::sync::Arc;

use qudit_tensor::{Matrix, C64};

/// A gate with hand-coded unitary and analytical-gradient functions.
pub trait BaselineGate: Send + Sync + std::fmt::Debug {
    /// The gate's name (matches the QGL gate library naming).
    fn name(&self) -> &str;
    /// Number of real parameters.
    fn num_params(&self) -> usize;
    /// Qudit radices the gate acts on.
    fn radices(&self) -> &[usize];
    /// The unitary matrix at `params`.
    fn unitary(&self, params: &[f64]) -> Matrix<f64>;
    /// The hand-derived gradient: one matrix per parameter.
    fn gradient(&self, params: &[f64]) -> Vec<Matrix<f64>>;
    /// Matrix dimension.
    fn dim(&self) -> usize {
        self.radices().iter().product()
    }
}

fn m2(rows: [[C64; 2]; 2]) -> Matrix<f64> {
    Matrix::from_rows(&[rows[0].to_vec(), rows[1].to_vec()])
}

fn m3(rows: [[C64; 3]; 3]) -> Matrix<f64> {
    Matrix::from_rows(&[rows[0].to_vec(), rows[1].to_vec(), rows[2].to_vec()])
}

fn zero() -> C64 {
    C64::zero()
}

/// The U3 gate with the hand-derived gradient of Listing 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct U3Gate;

impl BaselineGate for U3Gate {
    fn name(&self) -> &str {
        "U3"
    }
    fn num_params(&self) -> usize {
        3
    }
    fn radices(&self) -> &[usize] {
        &[2]
    }
    fn unitary(&self, p: &[f64]) -> Matrix<f64> {
        let (ct, st) = ((p[0] / 2.0).cos(), (p[0] / 2.0).sin());
        let ep = C64::cis(p[1]);
        let el = C64::cis(p[2]);
        m2([[C64::from_real(ct), -el.scale(st)], [ep.scale(st), ep * el.scale(ct)]])
    }
    fn gradient(&self, p: &[f64]) -> Vec<Matrix<f64>> {
        let (ct, st) = ((p[0] / 2.0).cos(), (p[0] / 2.0).sin());
        let ep = C64::cis(p[1]);
        let el = C64::cis(p[2]);
        let dep = C64::i() * ep;
        let del = C64::i() * el;
        vec![
            m2([
                [C64::from_real(-0.5 * st), -el.scale(0.5 * ct)],
                [ep.scale(0.5 * ct), ep * el.scale(-0.5 * st)],
            ]),
            m2([[zero(), zero()], [dep.scale(st), dep * el.scale(ct)]]),
            m2([[zero(), -del.scale(st)], [zero(), ep * del.scale(ct)]]),
        ]
    }
}

/// RX rotation with hand-derived gradient.
#[derive(Debug, Clone, Copy, Default)]
pub struct RxGate;

impl BaselineGate for RxGate {
    fn name(&self) -> &str {
        "RX"
    }
    fn num_params(&self) -> usize {
        1
    }
    fn radices(&self) -> &[usize] {
        &[2]
    }
    fn unitary(&self, p: &[f64]) -> Matrix<f64> {
        let (c, s) = ((p[0] / 2.0).cos(), (p[0] / 2.0).sin());
        m2([[C64::from_real(c), C64::new(0.0, -s)], [C64::new(0.0, -s), C64::from_real(c)]])
    }
    fn gradient(&self, p: &[f64]) -> Vec<Matrix<f64>> {
        let (c, s) = ((p[0] / 2.0).cos(), (p[0] / 2.0).sin());
        vec![m2([
            [C64::from_real(-0.5 * s), C64::new(0.0, -0.5 * c)],
            [C64::new(0.0, -0.5 * c), C64::from_real(-0.5 * s)],
        ])]
    }
}

/// RZ rotation with hand-derived gradient.
#[derive(Debug, Clone, Copy, Default)]
pub struct RzGate;

impl BaselineGate for RzGate {
    fn name(&self) -> &str {
        "RZ"
    }
    fn num_params(&self) -> usize {
        1
    }
    fn radices(&self) -> &[usize] {
        &[2]
    }
    fn unitary(&self, p: &[f64]) -> Matrix<f64> {
        m2([[C64::cis(-p[0] / 2.0), zero()], [zero(), C64::cis(p[0] / 2.0)]])
    }
    fn gradient(&self, p: &[f64]) -> Vec<Matrix<f64>> {
        vec![m2([
            [C64::cis(-p[0] / 2.0) * C64::new(0.0, -0.5), zero()],
            [zero(), C64::cis(p[0] / 2.0) * C64::new(0.0, 0.5)],
        ])]
    }
}

/// RZZ two-qubit interaction with hand-derived gradient.
#[derive(Debug, Clone, Copy, Default)]
pub struct RzzGate;

impl BaselineGate for RzzGate {
    fn name(&self) -> &str {
        "RZZ"
    }
    fn num_params(&self) -> usize {
        1
    }
    fn radices(&self) -> &[usize] {
        &[2, 2]
    }
    fn unitary(&self, p: &[f64]) -> Matrix<f64> {
        let minus = C64::cis(-p[0] / 2.0);
        let plus = C64::cis(p[0] / 2.0);
        let mut m = Matrix::<f64>::zeros(4, 4);
        m.set(0, 0, minus);
        m.set(1, 1, plus);
        m.set(2, 2, plus);
        m.set(3, 3, minus);
        m
    }
    fn gradient(&self, p: &[f64]) -> Vec<Matrix<f64>> {
        let dminus = C64::cis(-p[0] / 2.0) * C64::new(0.0, -0.5);
        let dplus = C64::cis(p[0] / 2.0) * C64::new(0.0, 0.5);
        let mut m = Matrix::<f64>::zeros(4, 4);
        m.set(0, 0, dminus);
        m.set(1, 1, dplus);
        m.set(2, 2, dplus);
        m.set(3, 3, dminus);
        vec![m]
    }
}

/// Controlled-phase gate with hand-derived gradient.
#[derive(Debug, Clone, Copy, Default)]
pub struct CPhaseGate;

impl BaselineGate for CPhaseGate {
    fn name(&self) -> &str {
        "CP"
    }
    fn num_params(&self) -> usize {
        1
    }
    fn radices(&self) -> &[usize] {
        &[2, 2]
    }
    fn unitary(&self, p: &[f64]) -> Matrix<f64> {
        let mut m = Matrix::<f64>::identity(4);
        m.set(3, 3, C64::cis(p[0]));
        m
    }
    fn gradient(&self, p: &[f64]) -> Vec<Matrix<f64>> {
        let mut m = Matrix::<f64>::zeros(4, 4);
        m.set(3, 3, C64::i() * C64::cis(p[0]));
        vec![m]
    }
}

/// A constant (parameter-free) gate defined by an explicit matrix.
#[derive(Debug, Clone)]
pub struct ConstantGate {
    name: String,
    radices: Vec<usize>,
    matrix: Matrix<f64>,
}

impl ConstantGate {
    /// Creates a constant gate.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not match the radices.
    pub fn new(name: &str, radices: Vec<usize>, matrix: Matrix<f64>) -> Self {
        assert_eq!(
            radices.iter().product::<usize>(),
            matrix.rows(),
            "constant gate dimension mismatch"
        );
        ConstantGate { name: name.to_string(), radices, matrix }
    }

    /// CNOT gate.
    pub fn cnot() -> Self {
        let mut m = Matrix::<f64>::zeros(4, 4);
        for (r, c) in [(0usize, 0usize), (1, 1), (2, 3), (3, 2)] {
            m.set(r, c, C64::one());
        }
        ConstantGate::new("CNOT", vec![2, 2], m)
    }

    /// Hadamard gate.
    pub fn hadamard() -> Self {
        let s = 1.0 / 2.0_f64.sqrt();
        ConstantGate::new(
            "H",
            vec![2],
            m2([[C64::from_real(s), C64::from_real(s)], [C64::from_real(s), C64::from_real(-s)]]),
        )
    }

    /// SWAP gate.
    pub fn swap() -> Self {
        let mut m = Matrix::<f64>::zeros(4, 4);
        for (r, c) in [(0usize, 0usize), (1, 2), (2, 1), (3, 3)] {
            m.set(r, c, C64::one());
        }
        ConstantGate::new("SWAP", vec![2, 2], m)
    }

    /// Two-qutrit CSUM gate.
    pub fn csum() -> Self {
        let mut m = Matrix::<f64>::zeros(9, 9);
        for a in 0..3usize {
            for b in 0..3usize {
                m.set(3 * a + (a + b) % 3, 3 * a + b, C64::one());
            }
        }
        ConstantGate::new("CSUM", vec![3, 3], m)
    }
}

impl BaselineGate for ConstantGate {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_params(&self) -> usize {
        0
    }
    fn radices(&self) -> &[usize] {
        &self.radices
    }
    fn unitary(&self, _params: &[f64]) -> Matrix<f64> {
        self.matrix.clone()
    }
    fn gradient(&self, _params: &[f64]) -> Vec<Matrix<f64>> {
        Vec::new()
    }
}

/// Single-qutrit phase gate `diag(1, e^{ia}, e^{ib})`.
#[derive(Debug, Clone, Copy, Default)]
pub struct QutritPhaseGate;

impl BaselineGate for QutritPhaseGate {
    fn name(&self) -> &str {
        "P3"
    }
    fn num_params(&self) -> usize {
        2
    }
    fn radices(&self) -> &[usize] {
        &[3]
    }
    fn unitary(&self, p: &[f64]) -> Matrix<f64> {
        m3([
            [C64::one(), zero(), zero()],
            [zero(), C64::cis(p[0]), zero()],
            [zero(), zero(), C64::cis(p[1])],
        ])
    }
    fn gradient(&self, p: &[f64]) -> Vec<Matrix<f64>> {
        vec![
            m3([
                [zero(), zero(), zero()],
                [zero(), C64::i() * C64::cis(p[0]), zero()],
                [zero(), zero(), zero()],
            ]),
            m3([
                [zero(), zero(), zero()],
                [zero(), zero(), zero()],
                [zero(), zero(), C64::i() * C64::cis(p[1])],
            ]),
        ]
    }
}

/// The general single-qutrit gate used by the qutrit PQC benchmark: three embedded
/// two-level rotations followed by a diagonal phase, with the gradient assembled by hand
/// via the product rule over the four factors.
#[derive(Debug, Clone, Copy, Default)]
pub struct QutritUGate;

impl QutritUGate {
    fn factors(p: &[f64]) -> [Matrix<f64>; 4] {
        let r01 = {
            let (c, s) = ((p[0] / 2.0).cos(), (p[0] / 2.0).sin());
            let e = C64::cis(p[1]);
            m3([
                [C64::from_real(c), -e.scale(s), zero()],
                [e.conj().scale(s), C64::from_real(c), zero()],
                [zero(), zero(), C64::one()],
            ])
        };
        let r02 = {
            let (c, s) = ((p[2] / 2.0).cos(), (p[2] / 2.0).sin());
            let e = C64::cis(p[3]);
            m3([
                [C64::from_real(c), zero(), -e.scale(s)],
                [zero(), C64::one(), zero()],
                [e.conj().scale(s), zero(), C64::from_real(c)],
            ])
        };
        let r12 = {
            let (c, s) = ((p[4] / 2.0).cos(), (p[4] / 2.0).sin());
            let e = C64::cis(p[5]);
            m3([
                [C64::one(), zero(), zero()],
                [zero(), C64::from_real(c), -e.scale(s)],
                [zero(), e.conj().scale(s), C64::from_real(c)],
            ])
        };
        let diag = m3([
            [C64::one(), zero(), zero()],
            [zero(), C64::cis(p[6]), zero()],
            [zero(), zero(), C64::cis(p[7])],
        ]);
        [r01, r02, r12, diag]
    }

    fn factor_grads(p: &[f64]) -> [[Matrix<f64>; 2]; 4] {
        let z3 = Matrix::<f64>::zeros(3, 3);
        let dr01 = {
            let (c, s) = ((p[0] / 2.0).cos(), (p[0] / 2.0).sin());
            let e = C64::cis(p[1]);
            [
                m3([
                    [C64::from_real(-0.5 * s), -e.scale(0.5 * c), zero()],
                    [e.conj().scale(0.5 * c), C64::from_real(-0.5 * s), zero()],
                    [zero(), zero(), zero()],
                ]),
                m3([
                    [zero(), -(C64::i() * e).scale(s), zero()],
                    [(-C64::i() * e.conj()).scale(s), zero(), zero()],
                    [zero(), zero(), zero()],
                ]),
            ]
        };
        let dr02 = {
            let (c, s) = ((p[2] / 2.0).cos(), (p[2] / 2.0).sin());
            let e = C64::cis(p[3]);
            [
                m3([
                    [C64::from_real(-0.5 * s), zero(), -e.scale(0.5 * c)],
                    [zero(), zero(), zero()],
                    [e.conj().scale(0.5 * c), zero(), C64::from_real(-0.5 * s)],
                ]),
                m3([
                    [zero(), zero(), -(C64::i() * e).scale(s)],
                    [zero(), zero(), zero()],
                    [(-C64::i() * e.conj()).scale(s), zero(), zero()],
                ]),
            ]
        };
        let dr12 = {
            let (c, s) = ((p[4] / 2.0).cos(), (p[4] / 2.0).sin());
            let e = C64::cis(p[5]);
            [
                m3([
                    [zero(), zero(), zero()],
                    [zero(), C64::from_real(-0.5 * s), -e.scale(0.5 * c)],
                    [zero(), e.conj().scale(0.5 * c), C64::from_real(-0.5 * s)],
                ]),
                m3([
                    [zero(), zero(), zero()],
                    [zero(), zero(), -(C64::i() * e).scale(s)],
                    [zero(), (-C64::i() * e.conj()).scale(s), zero()],
                ]),
            ]
        };
        let ddiag = [
            m3([
                [zero(), zero(), zero()],
                [zero(), C64::i() * C64::cis(p[6]), zero()],
                [zero(), zero(), zero()],
            ]),
            m3([
                [zero(), zero(), zero()],
                [zero(), zero(), zero()],
                [zero(), zero(), C64::i() * C64::cis(p[7])],
            ]),
        ];
        let _ = z3;
        [dr01, dr02, dr12, ddiag]
    }
}

impl BaselineGate for QutritUGate {
    fn name(&self) -> &str {
        "QutritU"
    }
    fn num_params(&self) -> usize {
        8
    }
    fn radices(&self) -> &[usize] {
        &[3]
    }
    fn unitary(&self, p: &[f64]) -> Matrix<f64> {
        let [a, b, c, d] = Self::factors(p);
        a.matmul(&b).matmul(&c).matmul(&d)
    }
    fn gradient(&self, p: &[f64]) -> Vec<Matrix<f64>> {
        let factors = Self::factors(p);
        let grads = Self::factor_grads(p);
        let mut out = Vec::with_capacity(8);
        for (fi, fgrads) in grads.iter().enumerate() {
            for dg in fgrads {
                // Product rule: replace factor fi by its derivative.
                let mut acc = if fi == 0 { dg.clone() } else { factors[0].clone() };
                for (k, factor) in factors.iter().enumerate().skip(1) {
                    let term = if k == fi { dg } else { factor };
                    acc = acc.matmul(term);
                }
                out.push(acc);
            }
        }
        out
    }
}

/// Looks up a baseline gate implementation by the QGL gate library name.
pub fn gate_by_name(name: &str) -> Option<Arc<dyn BaselineGate>> {
    match name {
        "U3" => Some(Arc::new(U3Gate)),
        "RX" => Some(Arc::new(RxGate)),
        "RZ" => Some(Arc::new(RzGate)),
        "RZZ" => Some(Arc::new(RzzGate)),
        "CP" => Some(Arc::new(CPhaseGate)),
        "CNOT" => Some(Arc::new(ConstantGate::cnot())),
        "H" => Some(Arc::new(ConstantGate::hadamard())),
        "SWAP" => Some(Arc::new(ConstantGate::swap())),
        "CSUM" => Some(Arc::new(ConstantGate::csum())),
        "P3" => Some(Arc::new(QutritPhaseGate)),
        "QutritU" => Some(Arc::new(QutritUGate)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_difference_check(gate: &dyn BaselineGate, params: &[f64]) {
        let h = 1e-6;
        let grads = gate.gradient(params);
        assert_eq!(grads.len(), gate.num_params());
        for k in 0..gate.num_params() {
            let mut plus = params.to_vec();
            let mut minus = params.to_vec();
            plus[k] += h;
            minus[k] -= h;
            let fd = gate
                .unitary(&plus)
                .sub(&gate.unitary(&minus))
                .unwrap()
                .scale(C64::from_real(1.0 / (2.0 * h)));
            assert!(
                grads[k].max_elementwise_distance(&fd) < 1e-5,
                "{}: hand-coded gradient for parameter {k} disagrees with finite differences",
                gate.name()
            );
        }
    }

    #[test]
    fn all_parameterized_gates_match_finite_differences() {
        let gates: Vec<Box<dyn BaselineGate>> = vec![
            Box::new(U3Gate),
            Box::new(RxGate),
            Box::new(RzGate),
            Box::new(RzzGate),
            Box::new(CPhaseGate),
            Box::new(QutritPhaseGate),
            Box::new(QutritUGate),
        ];
        for gate in &gates {
            let params: Vec<f64> = (0..gate.num_params()).map(|k| 0.31 + 0.63 * k as f64).collect();
            assert!(gate.unitary(&params).is_unitary(1e-10), "{} unitarity", gate.name());
            finite_difference_check(gate.as_ref(), &params);
        }
    }

    #[test]
    fn constant_gates_are_unitary() {
        for gate in [
            ConstantGate::cnot(),
            ConstantGate::hadamard(),
            ConstantGate::swap(),
            ConstantGate::csum(),
        ] {
            assert!(gate.unitary(&[]).is_unitary(1e-12), "{}", gate.name());
            assert!(gate.gradient(&[]).is_empty());
        }
    }

    #[test]
    fn baseline_gates_match_qgl_library() {
        use qudit_circuit::gates as qgl;
        let cases: Vec<(Arc<dyn BaselineGate>, qudit_qgl::UnitaryExpression)> = vec![
            (Arc::new(U3Gate), qgl::u3()),
            (Arc::new(RxGate), qgl::rx()),
            (Arc::new(RzGate), qgl::rz()),
            (Arc::new(RzzGate), qgl::rzz()),
            (Arc::new(CPhaseGate), qgl::cphase()),
            (Arc::new(QutritPhaseGate), qgl::qutrit_phase()),
            (Arc::new(QutritUGate), qgl::qutrit_u()),
            (Arc::new(ConstantGate::cnot()), qgl::cnot()),
            (Arc::new(ConstantGate::csum()), qgl::csum()),
        ];
        for (baseline, expr) in cases {
            let params: Vec<f64> =
                (0..baseline.num_params()).map(|k| -0.8 + 0.47 * k as f64).collect();
            let a = baseline.unitary(&params);
            let b = expr.to_matrix::<f64>(&params).unwrap();
            assert!(
                a.max_elementwise_distance(&b) < 1e-10,
                "{} disagrees with its QGL definition",
                baseline.name()
            );
        }
    }

    #[test]
    fn gate_lookup_by_name() {
        assert!(gate_by_name("U3").is_some());
        assert!(gate_by_name("CSUM").is_some());
        assert!(gate_by_name("NOPE").is_none());
    }
}
