//! The dataflow-analysis framework over TNVM bytecode: def-use chains, liveness,
//! and the buffer-interference graph.
//!
//! The analyses view a [`TnvmProgram`] as one linearized instruction sequence —
//! the constant section followed by the dynamic section — with two control-flow
//! edges beyond straight-line fallthrough:
//!
//! * an **exit edge** keeping the program's output buffer live past the last
//!   instruction (the VM reads it after every evaluation), and
//! * a **back edge** from the end of the dynamic section to its start, modeling
//!   that [`Tnvm::evaluate`](qudit_tnvm::Tnvm) re-runs the dynamic section on
//!   every call while the constant section ran exactly once. Any buffer a dynamic
//!   instruction reads that was written in the constant section is therefore live
//!   across the *entire* dynamic region, every iteration.
//!
//! Liveness is the standard backward may-analysis, iterated to a fixed point
//! (`live_in(i) = (live_out(i) \ def(i)) ∪ use(i)`); because the bytecode is
//! single-assignment over a small buffer set, the iteration converges in two
//! passes. [`Liveness::is_fixed_point`] re-applies one transfer round and checks
//! nothing changes — the property the proptest campaign pins.
//!
//! The [`InterferenceGraph`] derives from liveness: two buffers interfere when
//! some instruction has both *occupied* (live-in, live-out, or being defined
//! there). Defining an instruction's output as occupied alongside its live-in
//! set also encodes the VM's disjoint-slice rule — an output may never share
//! storage with that instruction's inputs — so a coloring of this graph is
//! exactly an arena layout the VM can execute.

use std::collections::BTreeSet;

use qudit_network::{BufId, InstrRef, TnvmOp, TnvmProgram};

/// The definition site and use sites of one buffer, in linearized program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefUse {
    /// The instruction writing the buffer, if any (the bytecode is
    /// single-assignment, so there is at most one).
    pub def: Option<InstrRef>,
    /// Every instruction reading the buffer, in program order.
    pub uses: Vec<InstrRef>,
}

/// Per-buffer def-use chains for a program.
#[derive(Debug, Clone)]
pub struct DefUseChains {
    /// One entry per buffer, indexed by [`BufId`].
    pub buffers: Vec<DefUse>,
}

impl DefUseChains {
    /// Builds the def-use chains of `program`.
    pub fn build(program: &TnvmProgram) -> DefUseChains {
        let mut buffers = vec![DefUse { def: None, uses: Vec::new() }; program.buffers.len()];
        for (constant, ops) in [(true, &program.constant_ops), (false, &program.dynamic_ops)] {
            for (index, op) in ops.iter().enumerate() {
                let at = InstrRef { constant, index };
                for input in op.inputs() {
                    buffers[input].uses.push(at);
                }
                buffers[op.out()].def = Some(at);
            }
        }
        DefUseChains { buffers }
    }

    /// Buffers that are written but never read and are not the program output —
    /// the seeds of dead-instruction elimination.
    pub fn dead_buffers(&self, program: &TnvmProgram) -> Vec<BufId> {
        self.buffers
            .iter()
            .enumerate()
            .filter(|(buf, du)| du.def.is_some() && du.uses.is_empty() && *buf != program.output)
            .map(|(buf, _)| buf)
            .collect()
    }
}

/// The linearized instruction list: constant section first, then dynamic.
fn linearize(program: &TnvmProgram) -> Vec<&TnvmOp> {
    program.constant_ops.iter().chain(program.dynamic_ops.iter()).collect()
}

/// Liveness intervals over the linearized program.
///
/// Index `i` ranges over `0..program.len()` with the constant section first;
/// [`Liveness::live_in`]/[`Liveness::live_out`] expose the per-instruction sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<BTreeSet<BufId>>,
    live_out: Vec<BTreeSet<BufId>>,
    constant_len: usize,
    output: BufId,
}

impl Liveness {
    /// Computes liveness for `program` by backward fixed-point iteration.
    pub fn compute(program: &TnvmProgram) -> Liveness {
        let ops = linearize(program);
        let n = ops.len();
        let mut live = Liveness {
            live_in: vec![BTreeSet::new(); n],
            live_out: vec![BTreeSet::new(); n],
            constant_len: program.constant_ops.len(),
            output: program.output,
        };
        // Two rounds always suffice for straight-line code with one back edge,
        // but iterate until stable so the fixed-point property is by construction.
        loop {
            if !live.transfer_round(&ops) {
                break;
            }
        }
        live
    }

    /// One backward transfer round; returns whether any set changed.
    fn transfer_round(&mut self, ops: &[&TnvmOp]) -> bool {
        let n = ops.len();
        let mut changed = false;
        for i in (0..n).rev() {
            // Successor union: fallthrough, the exit edge (output live forever),
            // and the dynamic back edge into the first dynamic instruction.
            let mut out = BTreeSet::new();
            if i + 1 < n {
                out.extend(self.live_in[i + 1].iter().copied());
            }
            if i + 1 == n {
                out.insert(self.output);
                if self.constant_len < n {
                    out.extend(self.live_in[self.constant_len].iter().copied());
                }
            }
            let mut inn: BTreeSet<BufId> = out.clone();
            inn.remove(&ops[i].out());
            inn.extend(ops[i].inputs());
            if inn != self.live_in[i] || out != self.live_out[i] {
                changed = true;
                self.live_in[i] = inn;
                self.live_out[i] = out;
            }
        }
        changed
    }

    /// The buffers live on entry to linearized instruction `i`.
    pub fn live_in(&self, i: usize) -> &BTreeSet<BufId> {
        &self.live_in[i]
    }

    /// The buffers live on exit from linearized instruction `i`.
    pub fn live_out(&self, i: usize) -> &BTreeSet<BufId> {
        &self.live_out[i]
    }

    /// Number of linearized instructions covered.
    pub fn len(&self) -> usize {
        self.live_in.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.live_in.is_empty()
    }

    /// Whether these sets are a fixed point of the transfer function: one more
    /// backward round over `program` must change nothing. The proptest campaign
    /// asserts this on random well-formed programs.
    pub fn is_fixed_point(&self, program: &TnvmProgram) -> bool {
        let ops = linearize(program);
        if ops.len() != self.live_in.len() || program.constant_ops.len() != self.constant_len {
            return false;
        }
        !self.clone().transfer_round(&ops)
    }

    /// The buffers *occupying* storage at instruction `i`: live-in, live-out, and
    /// the instruction's own output. Including the output alongside live-in means
    /// an interference-respecting layout also satisfies the VM's rule that an
    /// output slice never aliases that instruction's input slices.
    pub fn occupied(&self, i: usize, program: &TnvmProgram) -> BTreeSet<BufId> {
        let ops = linearize(program);
        let mut set = self.live_in[i].clone();
        set.extend(self.live_out[i].iter().copied());
        set.insert(ops[i].out());
        set
    }
}

/// The buffer-interference graph: which buffer pairs may never share arena
/// elements.
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    n: usize,
    /// Adjacency as a flattened boolean matrix (programs have tens of buffers,
    /// so the quadratic representation is exact and cheap).
    edges: Vec<bool>,
}

impl InterferenceGraph {
    /// Builds the interference graph of `program` from `liveness`: buffers `a`
    /// and `b` interfere when both occupy storage at some instruction.
    pub fn build(program: &TnvmProgram, liveness: &Liveness) -> InterferenceGraph {
        let n = program.buffers.len();
        let mut graph = InterferenceGraph { n, edges: vec![false; n * n] };
        for i in 0..liveness.len() {
            let occupied: Vec<BufId> = liveness.occupied(i, program).into_iter().collect();
            for (k, &a) in occupied.iter().enumerate() {
                for &b in &occupied[k + 1..] {
                    graph.edges[a * n + b] = true;
                    graph.edges[b * n + a] = true;
                }
            }
        }
        graph
    }

    /// Number of buffers (nodes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether buffers `a` and `b` may not share storage.
    pub fn interferes(&self, a: BufId, b: BufId) -> bool {
        a != b && self.edges[a * self.n + b]
    }

    /// The buffers interfering with `buf`, in ascending order.
    pub fn neighbors(&self, buf: BufId) -> Vec<BufId> {
        (0..self.n).filter(|&other| self.interferes(buf, other)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::builders;
    use qudit_network::{compile_network, TensorNetwork};

    fn program() -> TnvmProgram {
        let circuit = builders::pqc_qubit_ladder(3, 1).unwrap();
        compile_network(&TensorNetwork::from_circuit(&circuit))
    }

    #[test]
    fn def_use_chains_cover_every_instruction() {
        let p = program();
        let chains = DefUseChains::build(&p);
        assert_eq!(chains.buffers.len(), p.buffers.len());
        // Single-assignment: every buffer written at most once, and the output
        // buffer has a definition.
        assert!(chains.buffers[p.output].def.is_some());
        let total_uses: usize = chains.buffers.iter().map(|du| du.uses.len()).sum();
        let total_inputs: usize =
            p.constant_ops.iter().chain(p.dynamic_ops.iter()).map(|op| op.inputs().len()).sum();
        assert_eq!(total_uses, total_inputs);
        // Codegen never emits dead instructions on its own output.
        assert!(chains.dead_buffers(&p).is_empty());
    }

    #[test]
    fn liveness_is_a_fixed_point_and_output_is_live_at_exit() {
        let p = program();
        let live = Liveness::compute(&p);
        assert!(live.is_fixed_point(&p));
        assert_eq!(live.len(), p.len());
        assert!(live.live_out(p.len() - 1).contains(&p.output));
    }

    #[test]
    fn constant_buffers_read_dynamically_stay_live_across_the_dynamic_section() {
        let p = program();
        let live = Liveness::compute(&p);
        // Any buffer a dynamic op reads that the constant section wrote must be
        // live on entry to every dynamic instruction up to its last use —
        // including the first, via the back edge.
        let constant_written: BTreeSet<BufId> = p.constant_ops.iter().map(TnvmOp::out).collect();
        let dynamic_reads_constant =
            p.dynamic_ops.iter().flat_map(TnvmOp::inputs).any(|b| constant_written.contains(&b));
        if dynamic_reads_constant && !p.dynamic_ops.is_empty() {
            let first_dynamic = p.constant_ops.len();
            let cross: Vec<BufId> = p
                .dynamic_ops
                .iter()
                .flat_map(TnvmOp::inputs)
                .filter(|b| constant_written.contains(b))
                .collect();
            for b in cross {
                assert!(
                    live.live_in(first_dynamic).contains(&b),
                    "constant buffer {b} read by the dynamic section must be live at its head"
                );
            }
        }
    }

    #[test]
    fn interference_relates_simultaneously_live_buffers_only() {
        let p = program();
        let live = Liveness::compute(&p);
        let graph = InterferenceGraph::build(&p, &live);
        assert_eq!(graph.len(), p.buffers.len());
        // An instruction's output always interferes with its live inputs.
        for (i, op) in p.constant_ops.iter().chain(p.dynamic_ops.iter()).enumerate() {
            for input in op.inputs() {
                if live.live_out(i).contains(&input) || live.live_in(i).contains(&input) {
                    assert!(graph.interferes(op.out(), input));
                }
            }
        }
        // Interference is irreflexive and symmetric.
        for a in 0..graph.len() {
            assert!(!graph.interferes(a, a));
            for b in 0..graph.len() {
                assert_eq!(graph.interferes(a, b), graph.interferes(b, a));
            }
        }
    }
}
