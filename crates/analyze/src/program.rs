//! Layer 1: the TNVM bytecode / [`ExecPlan`] verifier.
//!
//! [`verify_program`] runs the full per-instruction typing discipline over both
//! bytecode sections — shapes, arities, radices, parameter-dependence annotations,
//! output aliasing — on top of the dataflow check
//! ([`TnvmProgram::validate`]). [`verify_plan`] then checks a lowered [`ExecPlan`]
//! against the tier's [`TargetDescriptor`]: section alignment, [`KernelSel`]
//! legality (blocked kernels only where the descriptor's thresholds are met, and
//! only on instructions that have a blocked implementation), and workspace bounds
//! for every blocked GEMM. [`verify_backend`] combines lowering and plan
//! verification for one registered tier.

use qudit_network::{InstrRef, TnvmOp, TnvmProgram};
use qudit_tensor::gemm;
use qudit_tnvm::{BackendKind, ExecPlan, KernelSel, TargetDescriptor};

use crate::dataflow::{InterferenceGraph, Liveness};
use crate::AnalyzeError;

/// A typing violation inside a [`TnvmProgram`], naming the offending instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramViolation {
    /// A qudit radix below 2.
    RadixTooSmall {
        /// Index of the qudit.
        index: usize,
        /// The offending radix.
        radix: usize,
    },
    /// The output buffer's shape does not match the program's Hilbert dimension.
    OutputShape {
        /// What was found versus what the radices require.
        detail: String,
    },
    /// A WRITE references an expression outside the expression table.
    ExprOutOfRange {
        /// The offending instruction.
        at: InstrRef,
        /// The out-of-range expression index.
        expr_index: usize,
        /// The expression-table length.
        table_len: usize,
    },
    /// A WRITE's binding count disagrees with its expression's parameter count.
    BindingArity {
        /// The offending instruction.
        at: InstrRef,
        /// The expression's parameter count.
        expected: usize,
        /// The binding count found.
        found: usize,
    },
    /// A WRITE binds a circuit parameter outside the program's parameter range.
    BindingOutOfRange {
        /// The offending instruction.
        at: InstrRef,
        /// The out-of-range circuit-parameter index.
        param: usize,
        /// The program's parameter count.
        num_params: usize,
    },
    /// An instruction's operand/output shapes are inconsistent.
    ShapeMismatch {
        /// The offending instruction.
        at: InstrRef,
        /// What disagreed.
        detail: String,
    },
    /// A TRANSPOSE's permutation is not a permutation of its axes.
    BadPermutation {
        /// The offending instruction.
        at: InstrRef,
        /// What disagreed.
        detail: String,
    },
    /// An instruction's output buffer is also one of its inputs (the interpreter's
    /// slice-disjointness contract forbids this).
    OutputAliasing {
        /// The offending instruction.
        at: InstrRef,
        /// The aliased buffer.
        buf: usize,
    },
    /// An instruction's output parameter-dependence annotation disagrees with its
    /// inputs (dependence must propagate as the exact sorted union).
    ParamAnnotation {
        /// The offending instruction.
        at: InstrRef,
        /// What disagreed.
        detail: String,
    },
    /// A buffer's parameter-dependence annotation is malformed (unsorted, duplicated,
    /// or out of range).
    BufferParams {
        /// The offending buffer.
        buf: usize,
        /// What is malformed.
        detail: String,
    },
    /// A constant-section instruction produces a parameter-dependent buffer (the
    /// constant section executes once, before any parameters exist).
    ConstantSectionParams {
        /// The offending instruction.
        at: InstrRef,
        /// Its parameter-dependent output buffer.
        buf: usize,
    },
    /// The attached arena layout maps two simultaneously-live buffers to
    /// overlapping elements — executing it would let one value clobber another.
    LayoutOverlap {
        /// One overlapping buffer.
        a: usize,
        /// The other overlapping buffer.
        b: usize,
        /// The overlapping element ranges.
        detail: String,
    },
}

impl std::fmt::Display for ProgramViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramViolation::RadixTooSmall { index, radix } => {
                write!(f, "qudit {index} has radix {radix} (must be at least 2)")
            }
            ProgramViolation::OutputShape { detail } => {
                write!(f, "output buffer shape mismatch: {detail}")
            }
            ProgramViolation::ExprOutOfRange { at, expr_index, table_len } => write!(
                f,
                "instruction {at} references expression {expr_index} of a {table_len}-entry table"
            ),
            ProgramViolation::BindingArity { at, expected, found } => write!(
                f,
                "instruction {at} binds {found} parameter(s) but its expression has {expected}"
            ),
            ProgramViolation::BindingOutOfRange { at, param, num_params } => write!(
                f,
                "instruction {at} binds circuit parameter {param} of a {num_params}-parameter program"
            ),
            ProgramViolation::ShapeMismatch { at, detail } => {
                write!(f, "instruction {at} shape mismatch: {detail}")
            }
            ProgramViolation::BadPermutation { at, detail } => {
                write!(f, "instruction {at} bad permutation: {detail}")
            }
            ProgramViolation::OutputAliasing { at, buf } => {
                write!(f, "instruction {at} aliases buffer {buf} as both input and output")
            }
            ProgramViolation::ParamAnnotation { at, detail } => {
                write!(f, "instruction {at} parameter-dependence mismatch: {detail}")
            }
            ProgramViolation::BufferParams { buf, detail } => {
                write!(f, "buffer {buf} has malformed parameter annotation: {detail}")
            }
            ProgramViolation::ConstantSectionParams { at, buf } => write!(
                f,
                "constant-section instruction {at} writes parameter-dependent buffer {buf}"
            ),
            ProgramViolation::LayoutOverlap { a, b, detail } => write!(
                f,
                "arena layout overlaps simultaneously-live buffers {a} and {b}: {detail}"
            ),
        }
    }
}

/// A legality violation in an [`ExecPlan`] against its tier's descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanViolation {
    /// A kernel-selection vector is not index-aligned with its bytecode section.
    SectionLength {
        /// `"constant"` or `"dynamic"`.
        section: &'static str,
        /// The section's instruction count.
        expected: usize,
        /// The plan's selection count.
        found: usize,
    },
    /// A blocked kernel was selected where the tier's descriptor forbids it.
    IllegalKernel {
        /// The offending instruction.
        at: InstrRef,
        /// The tier whose descriptor was violated.
        tier: String,
        /// Why the selection is illegal.
        detail: String,
    },
    /// The plan's workspace is too small for a blocked GEMM it schedules.
    WorkspaceOverflow {
        /// The offending instruction.
        at: InstrRef,
        /// The workspace length the blocked kernel needs.
        required: usize,
        /// The workspace length the plan provides.
        provided: usize,
    },
}

impl std::fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanViolation::SectionLength { section, expected, found } => write!(
                f,
                "{section} kernel selections ({found}) are not aligned with the \
                 {section} section ({expected} instruction(s))"
            ),
            PlanViolation::IllegalKernel { at, tier, detail } => {
                write!(f, "instruction {at} has an illegal kernel for tier '{tier}': {detail}")
            }
            PlanViolation::WorkspaceOverflow { at, required, provided } => write!(
                f,
                "instruction {at} needs a {required}-scalar workspace but the plan \
                 provides {provided}"
            ),
        }
    }
}

/// What [`verify_program`] measured while checking (fed into the `analyze.*` trace
/// counters by the pipeline's verify pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramReport {
    /// Instructions checked across both sections.
    pub instructions: usize,
    /// Buffers whose annotations were checked.
    pub buffers: usize,
}

fn params_sorted_dedup(params: &[usize]) -> bool {
    params.windows(2).all(|w| w[0] < w[1])
}

/// Verifies the full per-instruction typing discipline of a [`TnvmProgram`].
///
/// Runs the dataflow check first ([`TnvmProgram::validate`]: single assignment,
/// def-before-use, output written), then checks, for every instruction of both
/// sections: operand/output shape consistency, WRITE expression/binding arity and
/// binding ranges, TRANSPOSE shape/permutation validity, output aliasing, exact
/// parameter-dependence propagation, and constant-section parameter independence;
/// plus buffer-annotation well-formedness, radix sanity, and the output buffer's
/// shape against the program's radices.
///
/// # Errors
///
/// Returns the first [`AnalyzeError`] violated, naming the offending instruction.
pub fn verify_program(program: &TnvmProgram) -> Result<ProgramReport, AnalyzeError> {
    program.validate()?;

    for (index, &radix) in program.radices.iter().enumerate() {
        if radix < 2 {
            return Err(ProgramViolation::RadixTooSmall { index, radix }.into());
        }
    }
    for (buf, info) in program.buffers.iter().enumerate() {
        if !params_sorted_dedup(&info.params) {
            return Err(ProgramViolation::BufferParams {
                buf,
                detail: format!("{:?} is not strictly ascending", info.params),
            }
            .into());
        }
        if let Some(&p) = info.params.last() {
            if p >= program.num_params {
                return Err(ProgramViolation::BufferParams {
                    buf,
                    detail: format!(
                        "depends on parameter {p} of a {}-parameter program",
                        program.num_params
                    ),
                }
                .into());
            }
        }
    }

    let mut report = ProgramReport { instructions: 0, buffers: program.buffers.len() };
    let sections = [(true, &program.constant_ops), (false, &program.dynamic_ops)];
    for (constant, ops) in sections {
        for (index, op) in ops.iter().enumerate() {
            let at = InstrRef { constant, index };
            report.instructions += 1;
            verify_op(program, op, at)?;
            if constant && !program.buffers[op.out()].params.is_empty() {
                return Err(ProgramViolation::ConstantSectionParams { at, buf: op.out() }.into());
            }
        }
    }

    let out = &program.buffers[program.output];
    let dim = program.dim();
    if out.rows != dim || out.cols != dim {
        return Err(ProgramViolation::OutputShape {
            detail: format!(
                "radices {:?} require {dim}x{dim}, output buffer {} is {}x{}",
                program.radices, program.output, out.rows, out.cols
            ),
        }
        .into());
    }
    verify_layout(program)?;
    Ok(report)
}

/// When the program carries a coalesced [`ArenaLayout`], prove it sound with the
/// dataflow framework: no two buffers that interfere (are simultaneously live,
/// or are an instruction's inputs and output) may occupy overlapping element
/// ranges. `TnvmProgram::validate` already checked the layout's bounds and
/// per-instruction aliasing; this is the global liveness obligation.
fn verify_layout(program: &TnvmProgram) -> Result<(), AnalyzeError> {
    let Some(layout) = &program.layout else {
        return Ok(());
    };
    let liveness = Liveness::compute(program);
    let graph = InterferenceGraph::build(program, &liveness);
    for a in 0..program.buffers.len() {
        let (a_start, a_end) = (layout.offsets[a], layout.offsets[a] + program.buffers[a].len());
        for b in (a + 1)..program.buffers.len() {
            if !graph.interferes(a, b) {
                continue;
            }
            let (b_start, b_end) =
                (layout.offsets[b], layout.offsets[b] + program.buffers[b].len());
            if a_start < b_end && b_start < a_end {
                return Err(ProgramViolation::LayoutOverlap {
                    a,
                    b,
                    detail: format!("[{a_start}, {a_end}) overlaps [{b_start}, {b_end})"),
                }
                .into());
            }
        }
    }
    Ok(())
}

fn verify_op(program: &TnvmProgram, op: &TnvmOp, at: InstrRef) -> Result<(), AnalyzeError> {
    let buffers = &program.buffers;
    // Aliasing: the interpreter hands out disjoint sub-slices of one arena, so an
    // output that is also an input would be undefined behavior territory (and panics
    // in the slice-splitting helper today).
    for input in op.inputs() {
        if input == op.out() {
            return Err(ProgramViolation::OutputAliasing { at, buf: input }.into());
        }
    }
    match op {
        TnvmOp::Write { expr_index, bindings, out } => {
            let Some(expr) = program.exprs.get(*expr_index) else {
                return Err(ProgramViolation::ExprOutOfRange {
                    at,
                    expr_index: *expr_index,
                    table_len: program.exprs.len(),
                }
                .into());
            };
            if bindings.len() != expr.num_params() {
                return Err(ProgramViolation::BindingArity {
                    at,
                    expected: expr.num_params(),
                    found: bindings.len(),
                }
                .into());
            }
            let dim = expr.dim();
            let out_info = &buffers[*out];
            if out_info.rows != dim || out_info.cols != dim {
                return Err(ProgramViolation::ShapeMismatch {
                    at,
                    detail: format!(
                        "expression '{}' produces {dim}x{dim}, output buffer {out} is {}x{}",
                        expr.name(),
                        out_info.rows,
                        out_info.cols
                    ),
                }
                .into());
            }
            let mut circuit_params: Vec<usize> = Vec::new();
            for binding in bindings {
                if let Some(p) = binding.circuit_index() {
                    if p >= program.num_params {
                        return Err(ProgramViolation::BindingOutOfRange {
                            at,
                            param: p,
                            num_params: program.num_params,
                        }
                        .into());
                    }
                    circuit_params.push(p);
                }
            }
            circuit_params.sort_unstable();
            circuit_params.dedup();
            if out_info.params != circuit_params {
                return Err(ProgramViolation::ParamAnnotation {
                    at,
                    detail: format!(
                        "bindings depend on {:?}, output buffer {out} is annotated {:?}",
                        circuit_params, out_info.params
                    ),
                }
                .into());
            }
        }
        TnvmOp::Matmul { a, b, out } => {
            let (ai, bi, oi) = (&buffers[*a], &buffers[*b], &buffers[*out]);
            if ai.cols != bi.rows || oi.rows != ai.rows || oi.cols != bi.cols {
                return Err(ProgramViolation::ShapeMismatch {
                    at,
                    detail: format!(
                        "matmul ({}x{}) . ({}x{}) -> ({}x{})",
                        ai.rows, ai.cols, bi.rows, bi.cols, oi.rows, oi.cols
                    ),
                }
                .into());
            }
            check_union_params(program, at, &[*a, *b], *out)?;
        }
        TnvmOp::Kron { a, b, out } => {
            let (ai, bi, oi) = (&buffers[*a], &buffers[*b], &buffers[*out]);
            if oi.rows != ai.rows * bi.rows || oi.cols != ai.cols * bi.cols {
                return Err(ProgramViolation::ShapeMismatch {
                    at,
                    detail: format!(
                        "kron ({}x{}) x ({}x{}) -> ({}x{})",
                        ai.rows, ai.cols, bi.rows, bi.cols, oi.rows, oi.cols
                    ),
                }
                .into());
            }
            check_union_params(program, at, &[*a, *b], *out)?;
        }
        TnvmOp::Hadamard { a, b, out } => {
            let (ai, bi, oi) = (&buffers[*a], &buffers[*b], &buffers[*out]);
            if ai.rows != bi.rows || ai.cols != bi.cols || oi.rows != ai.rows || oi.cols != ai.cols
            {
                return Err(ProgramViolation::ShapeMismatch {
                    at,
                    detail: format!(
                        "hadamard ({}x{}) o ({}x{}) -> ({}x{})",
                        ai.rows, ai.cols, bi.rows, bi.cols, oi.rows, oi.cols
                    ),
                }
                .into());
            }
            check_union_params(program, at, &[*a, *b], *out)?;
        }
        TnvmOp::Transpose { input, shape, perm, out } => {
            let (ii, oi) = (&buffers[*input], &buffers[*out]);
            if perm.len() != shape.len() {
                return Err(ProgramViolation::BadPermutation {
                    at,
                    detail: format!(
                        "permutation has {} entries for a {}-axis shape",
                        perm.len(),
                        shape.len()
                    ),
                }
                .into());
            }
            let mut seen = vec![false; shape.len()];
            for &axis in perm {
                if axis >= shape.len() || seen[axis] {
                    return Err(ProgramViolation::BadPermutation {
                        at,
                        detail: format!("{perm:?} is not a permutation of 0..{}", shape.len()),
                    }
                    .into());
                }
                seen[axis] = true;
            }
            let volume: usize = shape.iter().product();
            if volume != ii.len() {
                return Err(ProgramViolation::ShapeMismatch {
                    at,
                    detail: format!(
                        "shape {shape:?} covers {volume} element(s), input buffer {input} \
                         holds {}",
                        ii.len()
                    ),
                }
                .into());
            }
            if oi.len() != ii.len() {
                return Err(ProgramViolation::ShapeMismatch {
                    at,
                    detail: format!(
                        "transpose preserves {} element(s), output buffer {out} holds {}",
                        ii.len(),
                        oi.len()
                    ),
                }
                .into());
            }
            check_union_params(program, at, &[*input], *out)?;
        }
    }
    Ok(())
}

fn check_union_params(
    program: &TnvmProgram,
    at: InstrRef,
    inputs: &[usize],
    out: usize,
) -> Result<(), AnalyzeError> {
    let mut union: Vec<usize> =
        inputs.iter().flat_map(|&b| program.buffers[b].params.iter().copied()).collect();
    union.sort_unstable();
    union.dedup();
    if program.buffers[out].params != union {
        return Err(ProgramViolation::ParamAnnotation {
            at,
            detail: format!(
                "inputs depend on {:?}, output buffer {out} is annotated {:?}",
                union, program.buffers[out].params
            ),
        }
        .into());
    }
    Ok(())
}

/// Verifies an [`ExecPlan`]'s legality against a tier's [`TargetDescriptor`].
///
/// Checks that both kernel-selection vectors are index-aligned with the bytecode
/// sections, that every [`KernelSel::Blocked`] selection lands on an instruction
/// family with a blocked implementation (MATMUL, KRON) *and* clears the descriptor's
/// threshold for it, and that the plan's workspace covers every blocked GEMM it
/// schedules. Scalar selections are always legal — a tier may lower conservatively,
/// never aggressively.
///
/// # Errors
///
/// Returns the first [`AnalyzeError`] violated, naming the offending instruction.
pub fn verify_plan(
    program: &TnvmProgram,
    plan: &ExecPlan,
    descriptor: &TargetDescriptor,
    tier: &str,
) -> Result<(), AnalyzeError> {
    if plan.constant_kernels.len() != program.constant_ops.len() {
        return Err(PlanViolation::SectionLength {
            section: "constant",
            expected: program.constant_ops.len(),
            found: plan.constant_kernels.len(),
        }
        .into());
    }
    if plan.dynamic_kernels.len() != program.dynamic_ops.len() {
        return Err(PlanViolation::SectionLength {
            section: "dynamic",
            expected: program.dynamic_ops.len(),
            found: plan.dynamic_kernels.len(),
        }
        .into());
    }
    let sections = [
        (true, &program.constant_ops, &plan.constant_kernels),
        (false, &program.dynamic_ops, &plan.dynamic_kernels),
    ];
    for (constant, ops, kernels) in sections {
        for (index, (op, sel)) in ops.iter().zip(kernels.iter()).enumerate() {
            if *sel != KernelSel::Blocked {
                continue;
            }
            let at = InstrRef { constant, index };
            match op {
                TnvmOp::Matmul { a, b, .. } => {
                    let m = program.buffers[*a].rows;
                    let k = program.buffers[*a].cols;
                    let n = program.buffers[*b].cols;
                    if m * n * k < descriptor.min_blocked_flops {
                        return Err(PlanViolation::IllegalKernel {
                            at,
                            tier: tier.to_string(),
                            detail: format!(
                                "blocked matmul below the flop threshold \
                                 ({m}*{n}*{k} < {})",
                                descriptor.min_blocked_flops
                            ),
                        }
                        .into());
                    }
                    let required = gemm::blocked_workspace_len(k);
                    if required > plan.workspace_scalars {
                        return Err(PlanViolation::WorkspaceOverflow {
                            at,
                            required,
                            provided: plan.workspace_scalars,
                        }
                        .into());
                    }
                }
                TnvmOp::Kron { out, .. } => {
                    let len = program.buffers[*out].len();
                    if len < descriptor.min_blocked_kron {
                        return Err(PlanViolation::IllegalKernel {
                            at,
                            tier: tier.to_string(),
                            detail: format!(
                                "blocked kron below the output threshold ({len} < {})",
                                descriptor.min_blocked_kron
                            ),
                        }
                        .into());
                    }
                }
                _ => {
                    return Err(PlanViolation::IllegalKernel {
                        at,
                        tier: tier.to_string(),
                        detail: "only MATMUL and KRON have blocked kernels".to_string(),
                    }
                    .into());
                }
            }
        }
    }
    Ok(())
}

/// Lowers `program` through one registered tier and verifies the resulting plan
/// against that tier's own descriptor.
///
/// # Errors
///
/// Returns the first [`AnalyzeError`] violated (program typing is *not* re-checked
/// here — run [`verify_program`] first).
pub fn verify_backend(program: &TnvmProgram, kind: BackendKind) -> Result<ExecPlan, AnalyzeError> {
    let backend = kind.instance();
    let plan = backend.lower(program);
    verify_plan(program, &plan, &backend.descriptor(), kind.name())?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::builders;
    use qudit_network::{compile_network, TensorNetwork};

    fn program_for(radices: &[usize]) -> TnvmProgram {
        let blocks: Vec<(usize, usize)> = (0..radices.len() - 1).map(|i| (i, i + 1)).collect();
        let circuit = builders::pqc_template(radices, &blocks).unwrap();
        compile_network(&TensorNetwork::from_circuit(&circuit))
    }

    #[test]
    fn codegen_output_verifies_clean_across_radix_mixes() {
        for radices in [vec![2, 2], vec![3, 3], vec![2, 3], vec![2, 2, 2]] {
            let program = program_for(&radices);
            let report = verify_program(&program).unwrap();
            assert!(report.instructions >= program.len());
            for kind in BackendKind::all() {
                verify_backend(&program, kind).unwrap();
            }
        }
    }

    #[test]
    fn shape_corruption_is_rejected_with_the_instruction_named() {
        let mut program = program_for(&[2, 2]);
        // Corrupt the first dynamic instruction's output buffer shape.
        let out = program.dynamic_ops[0].out();
        program.buffers[out].rows += 1;
        let err = verify_program(&program).unwrap_err();
        let msg = err.to_string();
        assert!(
            matches!(
                err,
                AnalyzeError::Program(ProgramViolation::ShapeMismatch { .. })
                    | AnalyzeError::Program(ProgramViolation::OutputShape { .. })
            ),
            "{err:?}"
        );
        assert!(msg.contains("dynamic[0]") || msg.contains("output buffer"), "{msg}");
    }

    #[test]
    fn scalar_tier_plan_with_blocked_kernel_is_illegal() {
        let program = program_for(&[2, 2]);
        let mut plan = BackendKind::Scalar.instance().lower(&program);
        // Force a blocked selection the scalar descriptor forbids.
        let idx = program
            .dynamic_ops
            .iter()
            .position(|op| matches!(op, TnvmOp::Matmul { .. } | TnvmOp::Kron { .. }))
            .expect("pqc template contracts at least once dynamically");
        plan.dynamic_kernels[idx] = KernelSel::Blocked;
        let err = verify_plan(&program, &plan, &TargetDescriptor::scalar(), "scalar").unwrap_err();
        match &err {
            AnalyzeError::Plan(PlanViolation::IllegalKernel { at, tier, .. }) => {
                assert!(!at.constant);
                assert_eq!(at.index, idx);
                assert_eq!(tier, "scalar");
            }
            other => panic!("expected IllegalKernel, got {other:?}"),
        }
        assert!(err.to_string().contains(&format!("dynamic[{idx}]")));
    }

    #[test]
    fn workspace_overflow_is_rejected() {
        let program = program_for(&[2, 2]);
        let idx = program
            .dynamic_ops
            .iter()
            .position(|op| matches!(op, TnvmOp::Matmul { .. }))
            .expect("pqc template multiplies overlapping supports");
        // A permissive descriptor makes the blocked selection legal, so the
        // too-small workspace is the first violation.
        let permissive =
            TargetDescriptor { panel_columns: 8, min_blocked_flops: 1, min_blocked_kron: 1 };
        let mut plan = ExecPlan {
            constant_kernels: vec![KernelSel::Scalar; program.constant_ops.len()],
            dynamic_kernels: vec![KernelSel::Scalar; program.dynamic_ops.len()],
            workspace_scalars: 0,
        };
        plan.dynamic_kernels[idx] = KernelSel::Blocked;
        let err = verify_plan(&program, &plan, &permissive, "custom").unwrap_err();
        assert!(
            matches!(err, AnalyzeError::Plan(PlanViolation::WorkspaceOverflow { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn section_misalignment_is_rejected() {
        let program = program_for(&[2, 2]);
        let mut plan = BackendKind::Scalar.instance().lower(&program);
        plan.dynamic_kernels.pop();
        let err = verify_plan(&program, &plan, &TargetDescriptor::scalar(), "scalar").unwrap_err();
        assert!(matches!(err, AnalyzeError::Plan(PlanViolation::SectionLength { .. })), "{err:?}");
    }

    #[test]
    fn overlapping_layout_of_live_buffers_is_rejected() {
        use qudit_network::ArenaLayout;
        let mut program = program_for(&[2, 2]);
        // A dense layout verifies clean...
        program.layout = Some(ArenaLayout::dense(&program.buffers));
        verify_program(&program).unwrap();
        // ...but piling every buffer at offset 0 overlaps live pairs. Grow the
        // arena so TnvmProgram::validate's bounds checks stay satisfied and the
        // liveness obligation is the violation that fires. Per-instruction
        // input/output aliasing would also trip validate(), so expect either the
        // structural BadLayout or the liveness LayoutOverlap — both reject.
        let arena_len = program.buffers.iter().map(|b| b.len()).max().unwrap();
        program.layout = Some(ArenaLayout { offsets: vec![0; program.buffers.len()], arena_len });
        let err = verify_program(&program).unwrap_err();
        assert!(
            matches!(
                err,
                AnalyzeError::Program(ProgramViolation::LayoutOverlap { .. })
                    | AnalyzeError::Bytecode(_)
            ),
            "{err:?}"
        );
    }

    #[test]
    fn dataflow_corruption_surfaces_as_bytecode_error() {
        let mut program = program_for(&[2, 2]);
        let out = program.dynamic_ops[0].out();
        // Duplicate the first dynamic instruction: a double write.
        let dup = program.dynamic_ops[0].clone();
        program.dynamic_ops.push(dup);
        let err = verify_program(&program).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, AnalyzeError::Bytecode(_)), "{err:?}");
        assert!(msg.contains(&format!("buffer {out}")), "{msg}");
    }
}
