//! Layer 2: the circuit / gate-set structural validator.
//!
//! [`verify_circuit`] re-derives, from the outside, every invariant
//! [`QuditCircuit`]'s mutating API enforces at construction time — expression-table
//! references, location arity/range/repeats, wire-radix agreement, the packed
//! parameter-offset discipline, and constant-application arity — so artifacts that
//! crossed a serialization or transformation boundary can be re-checked without
//! trusting their producer. [`verify_gateset`] checks the synthesis-side contract:
//! every expression a circuit applies is a member of the [`GateSet`] the task
//! declared (membership by canonical key, the same identity
//! [`QuditCircuit::cache_operation`] dedupes on).

use std::collections::BTreeSet;

use qudit_circuit::{GateSet, OpParams, QuditCircuit};

use crate::AnalyzeError;

/// A structural violation inside a [`QuditCircuit`], naming the offending operation.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitViolation {
    /// An operation references an expression outside the circuit's table.
    UnknownExpression {
        /// Index of the offending operation.
        op_index: usize,
        /// The out-of-range expression reference.
        expr_index: usize,
        /// The expression-table length.
        table_len: usize,
    },
    /// An operation's location is malformed (wrong arity, out-of-range wire, or a
    /// repeated wire).
    Location {
        /// Index of the offending operation.
        op_index: usize,
        /// What is malformed.
        detail: String,
    },
    /// A gate's wire radices disagree with the circuit radices at its location.
    RadixMismatch {
        /// Index of the offending operation.
        op_index: usize,
        /// What disagreed.
        detail: String,
    },
    /// A parameterized operation's offset breaks the packed-offset discipline
    /// (offsets must tile the parameter vector in operation order).
    ParamOffset {
        /// Index of the offending operation.
        op_index: usize,
        /// The offset the packing discipline requires.
        expected: usize,
        /// The offset found.
        found: usize,
    },
    /// A constant operation's baked-in value count disagrees with its expression's
    /// parameter count.
    ConstantArity {
        /// Index of the offending operation.
        op_index: usize,
        /// The expression's parameter count.
        expected: usize,
        /// The value count found.
        found: usize,
    },
    /// The circuit's declared parameter count disagrees with the sum over its
    /// parameterized operations.
    ParamCount {
        /// The count the operations imply.
        expected: usize,
        /// The count the circuit declares.
        found: usize,
    },
    /// An operation applies an expression that is not a member of the declared
    /// [`GateSet`].
    GateSet {
        /// Index of the offending operation.
        op_index: usize,
        /// The foreign expression's name.
        name: String,
    },
}

impl std::fmt::Display for CircuitViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitViolation::UnknownExpression { op_index, expr_index, table_len } => write!(
                f,
                "operation {op_index} references expression {expr_index} of a \
                 {table_len}-entry table"
            ),
            CircuitViolation::Location { op_index, detail } => {
                write!(f, "operation {op_index} has an invalid location: {detail}")
            }
            CircuitViolation::RadixMismatch { op_index, detail } => {
                write!(f, "operation {op_index} has a radix mismatch: {detail}")
            }
            CircuitViolation::ParamOffset { op_index, expected, found } => write!(
                f,
                "operation {op_index} starts at parameter offset {found}, packing \
                 requires {expected}"
            ),
            CircuitViolation::ConstantArity { op_index, expected, found } => write!(
                f,
                "operation {op_index} bakes in {found} value(s) but its expression \
                 has {expected} parameter(s)"
            ),
            CircuitViolation::ParamCount { expected, found } => write!(
                f,
                "circuit declares {found} parameter(s) but its operations imply {expected}"
            ),
            CircuitViolation::GateSet { op_index, name } => {
                write!(f, "operation {op_index} applies '{name}', which is not in the gate set")
            }
        }
    }
}

/// What [`verify_circuit`] measured while checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitReport {
    /// Operations checked.
    pub ops: usize,
}

/// Verifies a circuit's structural invariants from the outside.
///
/// Checks every operation's expression reference, location (arity, wire range,
/// repeats), wire-radix agreement, parameter binding (packed offsets for
/// parameterized operations, exact value counts for constant ones), and finally the
/// circuit's declared parameter count against the sum its operations imply.
///
/// # Errors
///
/// Returns the first [`AnalyzeError`] violated, naming the offending operation.
pub fn verify_circuit(circuit: &QuditCircuit) -> Result<CircuitReport, AnalyzeError> {
    let exprs = circuit.expressions();
    let mut next_offset = 0usize;
    for (op_index, op) in circuit.ops().iter().enumerate() {
        let Some(expr) = exprs.get(op.expr.index()) else {
            return Err(CircuitViolation::UnknownExpression {
                op_index,
                expr_index: op.expr.index(),
                table_len: exprs.len(),
            }
            .into());
        };
        if op.location.len() != expr.num_qudits() {
            return Err(CircuitViolation::Location {
                op_index,
                detail: format!(
                    "gate '{}' acts on {} qudit(s) but location has {}",
                    expr.name(),
                    expr.num_qudits(),
                    op.location.len()
                ),
            }
            .into());
        }
        let mut seen = vec![false; circuit.num_qudits()];
        for (&q, &expected_radix) in op.location.iter().zip(expr.radices().iter()) {
            if q >= circuit.num_qudits() {
                return Err(CircuitViolation::Location {
                    op_index,
                    detail: format!(
                        "qudit index {q} out of range for {} qudits",
                        circuit.num_qudits()
                    ),
                }
                .into());
            }
            if seen[q] {
                return Err(CircuitViolation::Location {
                    op_index,
                    detail: format!("qudit index {q} repeated in location"),
                }
                .into());
            }
            seen[q] = true;
            if circuit.radices()[q] != expected_radix {
                return Err(CircuitViolation::RadixMismatch {
                    op_index,
                    detail: format!(
                        "gate '{}' expects radix {expected_radix}, circuit qudit {q} \
                         has radix {}",
                        expr.name(),
                        circuit.radices()[q]
                    ),
                }
                .into());
            }
        }
        match &op.params {
            OpParams::Parameterized { offset } => {
                if *offset != next_offset {
                    return Err(CircuitViolation::ParamOffset {
                        op_index,
                        expected: next_offset,
                        found: *offset,
                    }
                    .into());
                }
                next_offset += expr.num_params();
            }
            OpParams::Constant(values) => {
                if values.len() != expr.num_params() {
                    return Err(CircuitViolation::ConstantArity {
                        op_index,
                        expected: expr.num_params(),
                        found: values.len(),
                    }
                    .into());
                }
            }
        }
    }
    if next_offset != circuit.num_params() {
        return Err(CircuitViolation::ParamCount {
            expected: next_offset,
            found: circuit.num_params(),
        }
        .into());
    }
    Ok(CircuitReport { ops: circuit.num_ops() })
}

/// Verifies that every expression a circuit applies is a member of `gate_set`.
///
/// Membership is by canonical key — the same content identity
/// [`QuditCircuit::cache_operation`] dedupes on — so a renamed but structurally
/// identical gate still passes, while a foreign gate with a registered name does
/// not. Only *applied* expressions are checked; a cached-but-unused table entry is
/// not a violation.
///
/// # Errors
///
/// Returns [`CircuitViolation::GateSet`] (as an [`AnalyzeError`]) naming the first
/// operation that applies a foreign expression, or
/// [`CircuitViolation::UnknownExpression`] for a dangling reference.
pub fn verify_gateset(circuit: &QuditCircuit, gate_set: &GateSet) -> Result<(), AnalyzeError> {
    let members: BTreeSet<String> = gate_set
        .locals()
        .map(|(_, expr)| expr.canonical_key())
        .chain(gate_set.entanglers().map(|(_, expr)| expr.canonical_key()))
        .collect();
    for (op_index, op) in circuit.ops().iter().enumerate() {
        let Some(expr) = circuit.expressions().get(op.expr.index()) else {
            return Err(CircuitViolation::UnknownExpression {
                op_index,
                expr_index: op.expr.index(),
                table_len: circuit.expressions().len(),
            }
            .into());
        };
        if !members.contains(&expr.canonical_key()) {
            return Err(
                CircuitViolation::GateSet { op_index, name: expr.name().to_string() }.into()
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{builders, gates};

    #[test]
    fn builder_circuits_verify_clean() {
        for radices in [vec![2, 2], vec![3, 3], vec![2, 3, 2]] {
            let blocks: Vec<(usize, usize)> = (0..radices.len() - 1).map(|i| (i, i + 1)).collect();
            let circuit = builders::pqc_template(&radices, &blocks).unwrap();
            let report = verify_circuit(&circuit).unwrap();
            assert_eq!(report.ops, circuit.num_ops());
            let set = GateSet::default_for(&radices);
            verify_gateset(&circuit, &set).unwrap();
        }
    }

    #[test]
    fn constant_applications_verify_clean() {
        let mut circuit = QuditCircuit::qubits(2);
        let rx = circuit.cache_operation(gates::rx()).unwrap();
        let cx = circuit.cache_operation(gates::cnot()).unwrap();
        circuit.append_ref(rx, vec![0]).unwrap();
        circuit.append_ref_constant(rx, vec![1], vec![0.25]).unwrap();
        circuit.append_ref(cx, vec![0, 1]).unwrap();
        circuit.append_ref(rx, vec![1]).unwrap();
        verify_circuit(&circuit).unwrap();
        // Offsets stay packed across a mid-circuit deletion.
        circuit.delete_op(0).unwrap();
        verify_circuit(&circuit).unwrap();
    }

    #[test]
    fn foreign_gate_fails_gateset_membership() {
        let mut circuit = QuditCircuit::qubits(2);
        let h = circuit.cache_operation(gates::hadamard()).unwrap();
        circuit.append_ref(h, vec![0]).unwrap();
        let set = GateSet::default_for(&[2, 2]); // U3 + CNOT only
        let err = verify_gateset(&circuit, &set).unwrap_err();
        match &err {
            AnalyzeError::Circuit(CircuitViolation::GateSet { op_index, name }) => {
                assert_eq!(*op_index, 0);
                assert_eq!(name, "H");
            }
            other => panic!("expected GateSet violation, got {other:?}"),
        }
        assert!(err.to_string().contains("operation 0"));
    }

    #[test]
    fn cached_but_unused_expression_is_not_a_membership_violation() {
        let mut circuit = QuditCircuit::qubits(2);
        let _h = circuit.cache_operation(gates::hadamard()).unwrap();
        let set = GateSet::default_for(&[2, 2]);
        verify_gateset(&circuit, &set).unwrap();
    }
}
