//! # qudit-analyze
//!
//! Static analysis for the OpenQudit reproduction. The byte-for-byte determinism
//! contract (see `ROADMAP.md`) is enforced *dynamically* by CI diffs of repeated runs;
//! this crate adds the *static* half — checks that reject malformed artifacts and
//! hazard patterns at the source instead of hoping a schedule reveals them. Three
//! layers:
//!
//! 1. **TNVM bytecode / [`ExecPlan`](qudit_tnvm::ExecPlan) verifier**
//!    ([`program`]): per-instruction shape/arity/radix typing, buffer
//!    def-before-use, output-aliasing and workspace-bounds checks, and
//!    [`KernelSel`](qudit_tnvm::KernelSel) legality against a tier's
//!    [`TargetDescriptor`](qudit_tnvm::TargetDescriptor), over both the constant and
//!    dynamic sections.
//! 2. **Circuit / gate-set structural validator** ([`circuit`]): wire/radix
//!    consistency, parameter-offset packing, constant-application arity, and
//!    [`GateSet`](qudit_circuit::GateSet) membership.
//! 3. **Determinism linter** ([`detlint`], also the `detlint` binary): scans
//!    workspace sources for hazard patterns the determinism contract forbids —
//!    unsorted `HashMap`/`HashSet` iteration feeding compilation or reduction order,
//!    wall-clock reads outside the `qudit_trace::omit_timing` gate, and
//!    thread-order-dependent accumulation outside blessed join points.
//!
//! Layers 1–2 are wired into the compilation pipeline by `qudit-compile`'s
//! `VerifyPass` / `Compiler::verify(level)` knob; the [`VerifyLevel`] here is the
//! shared setting (environment-driven via [`VERIFY_ENV_VAR`], so CI turns
//! verification on for every test run while release binaries stay unverified and
//! fast). Every rejection is a typed [`AnalyzeError`] naming the offending
//! instruction or operation.

pub mod circuit;
pub mod dataflow;
pub mod detlint;
pub mod optimize;
pub mod program;

pub use circuit::{verify_circuit, verify_gateset, CircuitReport, CircuitViolation};
pub use dataflow::{DefUse, DefUseChains, InterferenceGraph, Liveness};
pub use optimize::{
    estimate_plan, optimize_program, OptimizeOutcome, OptimizeStats, PlanCostEstimate,
};
pub use program::{
    verify_backend, verify_plan, verify_program, PlanViolation, ProgramReport, ProgramViolation,
};

use qudit_network::BytecodeError;

/// Environment variable consulted by [`VerifyLevel::from_env`] (values: `off`,
/// `program`, `full`; also `0`/`1`/`on` as aliases for `off`/`full`).
pub const VERIFY_ENV_VAR: &str = "OPENQUDIT_VERIFY";

/// How much verification the pipeline runs between passes.
///
/// The default ([`VerifyLevel::from_env`]) is [`VerifyLevel::Off`], so release
/// binaries pay nothing; CI and the test suite export `OPENQUDIT_VERIFY=full` to
/// verify every intermediate result of every compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyLevel {
    /// No verification.
    #[default]
    Off,
    /// Verify the compiled TNVM program and the execution plan of the task's own
    /// tier after every pass.
    Program,
    /// [`VerifyLevel::Program`] plus the circuit structural validator, gate-set
    /// membership, and plan legality for *every* registered tier.
    Full,
}

impl VerifyLevel {
    /// Parses a verification level name as accepted by `OPENQUDIT_VERIFY`.
    pub fn parse(name: &str) -> Option<VerifyLevel> {
        match name.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(VerifyLevel::Off),
            "program" => Some(VerifyLevel::Program),
            "full" | "1" | "on" => Some(VerifyLevel::Full),
            _ => None,
        }
    }

    /// The process-wide default level: `OPENQUDIT_VERIFY` when set to a valid level
    /// name, otherwise [`VerifyLevel::Off`].
    ///
    /// An *invalid* value still falls back to [`VerifyLevel::Off`] — verification is
    /// an opt-in safety net, not a reason to refuse to start — but emits a one-time
    /// stderr warning naming the rejected value and the accepted set: silently
    /// running unverified when the operator asked for (say) `ful` is the worse
    /// failure mode.
    pub fn from_env() -> VerifyLevel {
        match std::env::var(VERIFY_ENV_VAR) {
            Ok(value) => match VerifyLevel::parse(&value) {
                Some(level) => level,
                None => {
                    warn_invalid_env(&value);
                    VerifyLevel::Off
                }
            },
            Err(_) => VerifyLevel::Off,
        }
    }

    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            VerifyLevel::Off => "off",
            VerifyLevel::Program => "program",
            VerifyLevel::Full => "full",
        }
    }

    /// `true` unless the level is [`VerifyLevel::Off`].
    pub fn is_enabled(self) -> bool {
        self != VerifyLevel::Off
    }
}

impl std::fmt::Display for VerifyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The warning text for an invalid `OPENQUDIT_VERIFY` value: names the value and
/// the accepted set. Factored out so tests can pin the message without touching the
/// process environment.
pub fn invalid_verify_env_warning(value: &str) -> String {
    format!(
        "warning: ignoring invalid {VERIFY_ENV_VAR}={value:?}; \
         accepted values: off, program, full (and 0/1/on/none aliases); \
         verification stays off"
    )
}

/// Emits [`invalid_verify_env_warning`] to stderr the first time it is called in
/// this process; later calls are no-ops. Returns whether this call emitted —
/// [`VerifyLevel::from_env`] runs once per compiler construction, so an unguarded
/// warning would flood a server's log.
pub fn warn_invalid_env(value: &str) -> bool {
    use std::sync::atomic::{AtomicBool, Ordering};
    static WARNED: AtomicBool = AtomicBool::new(false);
    let first = !WARNED.swap(true, Ordering::Relaxed);
    if first {
        eprintln!("{}", invalid_verify_env_warning(value));
    }
    first
}

/// Environment variable consulted by [`OptimizeLevel::from_env`] (values: `off`,
/// `instructions`, `full`; also `0`/`1`/`on` as aliases for `off`/`full`).
pub const OPTIMIZE_ENV_VAR: &str = "OPENQUDIT_OPTIMIZE";

/// How much verified bytecode optimization the pipeline runs.
///
/// The default ([`OptimizeLevel::from_env`]) is [`OptimizeLevel::Off`]; every
/// accepted transformation is translation-validated (see
/// [`optimize::optimize_program`]) regardless of level, so turning optimization on
/// can change instruction counts and arena sizes but never evaluated bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizeLevel {
    /// No optimization.
    #[default]
    Off,
    /// Instruction-level transforms only: dead-instruction elimination and
    /// common-subexpression elimination.
    Instructions,
    /// [`OptimizeLevel::Instructions`] plus liveness-driven buffer coalescing.
    Full,
}

impl OptimizeLevel {
    /// Parses an optimization level name as accepted by `OPENQUDIT_OPTIMIZE`.
    pub fn parse(name: &str) -> Option<OptimizeLevel> {
        match name.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(OptimizeLevel::Off),
            "instructions" => Some(OptimizeLevel::Instructions),
            "full" | "1" | "on" => Some(OptimizeLevel::Full),
            _ => None,
        }
    }

    /// The process-wide default level: `OPENQUDIT_OPTIMIZE` when set to a valid
    /// level name, otherwise [`OptimizeLevel::Off`].
    ///
    /// An invalid value falls back to [`OptimizeLevel::Off`] with a one-time
    /// stderr warning naming the rejected value and the accepted set — the same
    /// fail-open-but-visible policy as [`VerifyLevel::from_env`].
    pub fn from_env() -> OptimizeLevel {
        match std::env::var(OPTIMIZE_ENV_VAR) {
            Ok(value) => match OptimizeLevel::parse(&value) {
                Some(level) => level,
                None => {
                    warn_invalid_optimize_env(&value);
                    OptimizeLevel::Off
                }
            },
            Err(_) => OptimizeLevel::Off,
        }
    }

    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            OptimizeLevel::Off => "off",
            OptimizeLevel::Instructions => "instructions",
            OptimizeLevel::Full => "full",
        }
    }

    /// `true` unless the level is [`OptimizeLevel::Off`].
    pub fn is_enabled(self) -> bool {
        self != OptimizeLevel::Off
    }
}

impl std::fmt::Display for OptimizeLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The warning text for an invalid `OPENQUDIT_OPTIMIZE` value: names the value and
/// the accepted set. Factored out so tests can pin the message without touching
/// the process environment.
pub fn invalid_optimize_env_warning(value: &str) -> String {
    format!(
        "warning: ignoring invalid {OPTIMIZE_ENV_VAR}={value:?}; \
         accepted values: off, instructions, full (and 0/1/on/none aliases); \
         optimization stays off"
    )
}

/// Emits [`invalid_optimize_env_warning`] to stderr the first time it is called in
/// this process; later calls are no-ops. Returns whether this call emitted. The
/// guard is separate from the verify-level one so a doubly misconfigured
/// environment reports both problems.
pub fn warn_invalid_optimize_env(value: &str) -> bool {
    use std::sync::atomic::{AtomicBool, Ordering};
    static WARNED: AtomicBool = AtomicBool::new(false);
    let first = !WARNED.swap(true, Ordering::Relaxed);
    if first {
        eprintln!("{}", invalid_optimize_env_warning(value));
    }
    first
}

/// A static-analysis rejection: which layer rejected the artifact and why.
///
/// Instruction-level variants carry a
/// [`qudit_network::InstrRef`] naming the offending instruction; circuit-level
/// variants carry the operation index.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeError {
    /// The bytecode dataflow check ([`qudit_network::TnvmProgram::validate`])
    /// rejected the program.
    Bytecode(BytecodeError),
    /// The per-instruction typing verifier rejected the program.
    Program(ProgramViolation),
    /// The execution-plan verifier rejected a plan against its tier's descriptor.
    Plan(PlanViolation),
    /// The circuit structural validator rejected the circuit.
    Circuit(CircuitViolation),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Bytecode(e) => write!(f, "bytecode dataflow violation: {e}"),
            AnalyzeError::Program(v) => write!(f, "program typing violation: {v}"),
            AnalyzeError::Plan(v) => write!(f, "execution-plan violation: {v}"),
            AnalyzeError::Circuit(v) => write!(f, "circuit structure violation: {v}"),
        }
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzeError::Bytecode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BytecodeError> for AnalyzeError {
    fn from(e: BytecodeError) -> Self {
        AnalyzeError::Bytecode(e)
    }
}

impl From<ProgramViolation> for AnalyzeError {
    fn from(v: ProgramViolation) -> Self {
        AnalyzeError::Program(v)
    }
}

impl From<PlanViolation> for AnalyzeError {
    fn from(v: PlanViolation) -> Self {
        AnalyzeError::Plan(v)
    }
}

impl From<CircuitViolation> for AnalyzeError {
    fn from(v: CircuitViolation) -> Self {
        AnalyzeError::Circuit(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_level_parses_and_displays() {
        assert_eq!(VerifyLevel::parse("off"), Some(VerifyLevel::Off));
        assert_eq!(VerifyLevel::parse(" Full "), Some(VerifyLevel::Full));
        assert_eq!(VerifyLevel::parse("program"), Some(VerifyLevel::Program));
        assert_eq!(VerifyLevel::parse("1"), Some(VerifyLevel::Full));
        assert_eq!(VerifyLevel::parse("bogus"), None);
        assert_eq!(VerifyLevel::Full.to_string(), "full");
        assert!(VerifyLevel::Program.is_enabled());
        assert!(!VerifyLevel::Off.is_enabled());
        assert_eq!(VerifyLevel::default(), VerifyLevel::Off);
    }

    #[test]
    fn invalid_verify_values_fall_back_with_a_named_warning() {
        // Unknown level names reject (so `from_env` falls back to Off)...
        assert_eq!(VerifyLevel::parse("ful"), None);
        assert_eq!(VerifyLevel::parse(""), None);
        // ...and the warning names the rejected value and the accepted set.
        let warning = invalid_verify_env_warning("ful");
        assert!(warning.contains(VERIFY_ENV_VAR), "{warning}");
        assert!(warning.contains("\"ful\""), "{warning}");
        for accepted in ["off", "program", "full"] {
            assert!(warning.contains(accepted), "{warning}");
        }
    }

    #[test]
    fn invalid_verify_warning_fires_once_per_process() {
        let first = warn_invalid_env("bogus-level");
        let second = warn_invalid_env("bogus-level");
        assert!(first || !second, "a later call must never emit after the first");
        assert!(!warn_invalid_env("another-bogus-level"));
    }

    #[test]
    fn optimize_level_parses_and_displays() {
        assert_eq!(OptimizeLevel::parse("off"), Some(OptimizeLevel::Off));
        assert_eq!(OptimizeLevel::parse(" Full "), Some(OptimizeLevel::Full));
        assert_eq!(OptimizeLevel::parse("instructions"), Some(OptimizeLevel::Instructions));
        assert_eq!(OptimizeLevel::parse("1"), Some(OptimizeLevel::Full));
        assert_eq!(OptimizeLevel::parse("bogus"), None);
        assert_eq!(OptimizeLevel::Full.to_string(), "full");
        assert!(OptimizeLevel::Instructions.is_enabled());
        assert!(!OptimizeLevel::Off.is_enabled());
        assert_eq!(OptimizeLevel::default(), OptimizeLevel::Off);
    }

    #[test]
    fn invalid_optimize_values_fall_back_with_a_named_warning() {
        assert_eq!(OptimizeLevel::parse("ful"), None);
        assert_eq!(OptimizeLevel::parse(""), None);
        let warning = invalid_optimize_env_warning("ful");
        assert!(warning.contains(OPTIMIZE_ENV_VAR), "{warning}");
        assert!(warning.contains("\"ful\""), "{warning}");
        for accepted in ["off", "instructions", "full"] {
            assert!(warning.contains(accepted), "{warning}");
        }
    }

    #[test]
    fn invalid_optimize_warning_fires_once_per_process() {
        let first = warn_invalid_optimize_env("bogus-level");
        let second = warn_invalid_optimize_env("bogus-level");
        assert!(first || !second, "a later call must never emit after the first");
        assert!(!warn_invalid_optimize_env("another-bogus-level"));
    }
}
