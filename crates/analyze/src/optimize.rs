//! Verified bytecode optimization: DCE, CSE, and buffer coalescing over
//! [`TnvmProgram`]s, each gated by translation validation, plus the static cost
//! model ([`estimate_plan`]) that predicts the runtime `tnvm.*` kernel counters.
//!
//! ## Translation validation
//!
//! Optimizations here are *not trusted*. After the transforms run, the candidate
//! program must survive three checks before it replaces the original:
//!
//! 1. [`verify_program`] — the full per-instruction typing verifier (which also
//!    proves an attached [`ArenaLayout`] never maps
//!    two simultaneously-live buffers to overlapping elements);
//! 2. [`verify_backend`] for **every** registered tier — the lowered plan stays
//!    legal under each tier's descriptor;
//! 3. a differential check — the candidate evaluates **bit-identically** to the
//!    original (unitary *and* every gradient block) under both [`DiffMode`]s on
//!    both execution tiers, over deterministic pseudo-random parameter vectors.
//!
//! Any failure falls back to the original program; the caller observes the
//! rejection through [`OptimizeStats::rejected`] and (in the compile pipeline)
//! the `analyze.optimize.rejected` counter. Optimization can therefore change
//! instruction counts and arena sizes but never evaluated bytes — the
//! determinism contract survives `OPENQUDIT_OPTIMIZE=full` unchanged.

use std::collections::HashMap;

use qudit_network::{ArenaLayout, BufId, TnvmOp, TnvmProgram};
use qudit_qvm::{DiffMode, ExpressionCache};
use qudit_tensor::Matrix;
use qudit_tnvm::counters::BilinearTally;
use qudit_tnvm::{BackendKind, ExecPlan, KernelCounters, Tnvm};

use crate::dataflow::{InterferenceGraph, Liveness};
use crate::program::verify_backend;
use crate::{verify_program, OptimizeLevel};

/// What one [`optimize_program`] run did (or declined to do).
///
/// Every field derives purely from program structure, so stats are deterministic
/// and tier-invariant — they appear in the byte-diffed benchmark reports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// Instruction count (both sections) before optimization.
    pub instructions_before: usize,
    /// Instruction count after optimization (equals `instructions_before` when
    /// nothing applied or the candidate was rejected).
    pub instructions_after: usize,
    /// Instructions removed by dead-instruction elimination.
    pub dce_removed: usize,
    /// Instructions removed by common-subexpression elimination.
    pub cse_removed: usize,
    /// Value-arena size in complex elements before optimization.
    pub arena_before: usize,
    /// Value-arena size after optimization (coalesced when a layout attached).
    pub arena_after: usize,
    /// Why translation validation rejected the candidate, if it did. `None`
    /// means the returned program is the (possibly unchanged) optimized one.
    pub rejected: Option<String>,
}

/// The result of [`optimize_program`]: the program to use plus the stats.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The optimized program — or a clone of the original when the level is off,
    /// nothing applied, or validation rejected the candidate.
    pub program: TnvmProgram,
    /// What happened.
    pub stats: OptimizeStats,
}

/// Optimizes `program` at `level`, translation-validating through `cache`.
///
/// At [`OptimizeLevel::Instructions`], runs dead-instruction elimination and
/// common-subexpression elimination (then DCE again, since CSE orphans the
/// operands of merged instructions). [`OptimizeLevel::Full`] additionally
/// coalesces non-interfering buffers into a shrunken arena. See the module docs
/// for the validation contract; a rejected candidate is *never* returned.
pub fn optimize_program(
    program: &TnvmProgram,
    level: OptimizeLevel,
    cache: &ExpressionCache,
) -> OptimizeOutcome {
    let unchanged = |stats: OptimizeStats| OptimizeOutcome { program: program.clone(), stats };
    let mut stats = OptimizeStats {
        instructions_before: program.len(),
        instructions_after: program.len(),
        arena_before: program.arena_elements(),
        arena_after: program.arena_elements(),
        ..OptimizeStats::default()
    };
    if !level.is_enabled() {
        return unchanged(stats);
    }

    let mut candidate = program.clone();
    // Transforms compute their own placement; drop any inherited layout first.
    candidate.layout = None;
    let dce_first = eliminate_dead_instructions(&mut candidate);
    let cse = eliminate_common_subexpressions(&mut candidate);
    let dce_second = eliminate_dead_instructions(&mut candidate);
    compact_buffers(&mut candidate);
    if level == OptimizeLevel::Full {
        coalesce_buffers(&mut candidate);
    }

    stats.dce_removed = dce_first + dce_second;
    stats.cse_removed = cse;
    if stats.dce_removed == 0 && stats.cse_removed == 0 && candidate.layout.is_none() {
        // Nothing applied: the candidate is semantically the original program, so
        // skip the differential run entirely.
        return unchanged(stats);
    }
    stats.instructions_after = candidate.len();
    stats.arena_after = candidate.arena_elements();

    match translation_validate(program, &candidate, cache) {
        Ok(()) => OptimizeOutcome { program: candidate, stats },
        Err(reason) => {
            stats.instructions_after = stats.instructions_before;
            stats.arena_after = stats.arena_before;
            stats.dce_removed = 0;
            stats.cse_removed = 0;
            stats.rejected = Some(reason);
            unchanged(stats)
        }
    }
}

/// Dead-instruction elimination: backward reachability from the program output.
///
/// An instruction is live iff its output buffer transitively feeds the output
/// buffer. Returns the number of instructions removed.
fn eliminate_dead_instructions(program: &mut TnvmProgram) -> usize {
    let buffer_count = program.buffers.len();
    // Inputs of each buffer's (unique) writer.
    let mut writer_inputs: Vec<Option<Vec<BufId>>> = vec![None; buffer_count];
    for op in program.constant_ops.iter().chain(program.dynamic_ops.iter()) {
        writer_inputs[op.out()] = Some(op.inputs());
    }
    let mut live = vec![false; buffer_count];
    let mut stack = vec![program.output];
    live[program.output] = true;
    while let Some(buf) = stack.pop() {
        if let Some(inputs) = &writer_inputs[buf] {
            for &input in inputs {
                if !live[input] {
                    live[input] = true;
                    stack.push(input);
                }
            }
        }
    }
    let before = program.len();
    program.constant_ops.retain(|op| live[op.out()]);
    program.dynamic_ops.retain(|op| live[op.out()]);
    before - program.len()
}

/// The value-numbering key of an instruction: its kind and (already remapped)
/// operands, excluding the destination. Two instructions with equal keys compute
/// equal values — every TNVM op is a pure function of its operands.
fn cse_key(op: &TnvmOp) -> String {
    match op {
        TnvmOp::Write { expr_index, bindings, .. } => format!("W:{expr_index}:{bindings:?}"),
        TnvmOp::Matmul { a, b, .. } => format!("M:{a}:{b}"),
        TnvmOp::Kron { a, b, .. } => format!("K:{a}:{b}"),
        TnvmOp::Hadamard { a, b, .. } => format!("H:{a}:{b}"),
        TnvmOp::Transpose { input, shape, perm, .. } => format!("T:{input}:{shape:?}:{perm:?}"),
    }
}

/// Rewrites every input buffer of `op` through `remap` (the destination stays).
fn remap_inputs(op: &mut TnvmOp, remap: &[BufId]) {
    match op {
        TnvmOp::Write { .. } => {}
        TnvmOp::Matmul { a, b, .. } | TnvmOp::Kron { a, b, .. } | TnvmOp::Hadamard { a, b, .. } => {
            *a = remap[*a];
            *b = remap[*b];
        }
        TnvmOp::Transpose { input, .. } => *input = remap[*input],
    }
}

/// Common-subexpression elimination: one forward value-numbering pass over the
/// combined (constant, then dynamic) instruction order.
///
/// Operands are remapped on the fly, so chains of duplicates collapse in a
/// single pass. Processing the constant section first keeps section legality
/// automatic: a dynamic instruction may reuse a constant-section result (its
/// value is parameter-free and identical every evaluation), never the reverse.
/// Returns the number of instructions removed.
fn eliminate_common_subexpressions(program: &mut TnvmProgram) -> usize {
    let mut remap: Vec<BufId> = (0..program.buffers.len()).collect();
    let mut table: HashMap<String, BufId> = HashMap::new();
    let mut removed = 0usize;
    for constant in [true, false] {
        let ops = if constant {
            std::mem::take(&mut program.constant_ops)
        } else {
            std::mem::take(&mut program.dynamic_ops)
        };
        let mut kept = Vec::with_capacity(ops.len());
        for mut op in ops {
            remap_inputs(&mut op, &remap);
            let key = cse_key(&op);
            if let Some(&prev) = table.get(&key) {
                // Belt and braces: only merge buffers with identical metadata
                // (equal operands imply it, but the check is cheap).
                if program.buffers[prev] == program.buffers[op.out()] {
                    remap[op.out()] = prev;
                    removed += 1;
                    continue;
                }
            }
            table.insert(key, op.out());
            kept.push(op);
        }
        if constant {
            program.constant_ops = kept;
        } else {
            program.dynamic_ops = kept;
        }
    }
    program.output = remap[program.output];
    removed
}

/// Drops buffers no remaining instruction references, renumbering the rest in
/// ascending order (deterministic) and rewriting every instruction plus the
/// program output.
fn compact_buffers(program: &mut TnvmProgram) {
    let buffer_count = program.buffers.len();
    let mut used = vec![false; buffer_count];
    used[program.output] = true;
    for op in program.constant_ops.iter().chain(program.dynamic_ops.iter()) {
        used[op.out()] = true;
        for input in op.inputs() {
            used[input] = true;
        }
    }
    if used.iter().all(|&u| u) {
        return;
    }
    let mut remap = vec![usize::MAX; buffer_count];
    let mut buffers = Vec::new();
    for (old, info) in program.buffers.iter().enumerate() {
        if used[old] {
            remap[old] = buffers.len();
            buffers.push(info.clone());
        }
    }
    program.buffers = buffers;
    for op in program.constant_ops.iter_mut().chain(program.dynamic_ops.iter_mut()) {
        remap_inputs(op, &remap);
        match op {
            TnvmOp::Write { out, .. }
            | TnvmOp::Matmul { out, .. }
            | TnvmOp::Kron { out, .. }
            | TnvmOp::Hadamard { out, .. }
            | TnvmOp::Transpose { out, .. } => *out = remap[*out],
        }
    }
    program.output = remap[program.output];
}

/// Buffer coalescing: assigns non-interfering buffers to shared arena offsets by
/// greedy first-fit over the interference graph, attaching an [`ArenaLayout`]
/// only when it strictly shrinks the arena.
fn coalesce_buffers(program: &mut TnvmProgram) {
    let liveness = Liveness::compute(program);
    let graph = InterferenceGraph::build(program, &liveness);
    let buffer_count = program.buffers.len();
    let mut offsets = vec![0usize; buffer_count];
    let mut placed = vec![false; buffer_count];
    let mut arena_len = 0usize;
    for buf in 0..buffer_count {
        let len = program.buffers[buf].len();
        // Occupied ranges of already-placed interfering neighbors, by start.
        let mut blocked: Vec<(usize, usize)> = graph
            .neighbors(buf)
            .into_iter()
            .filter(|&other| placed[other])
            .map(|other| (offsets[other], offsets[other] + program.buffers[other].len()))
            .collect();
        blocked.sort_unstable();
        // First fit: slide past every blocking range the candidate overlaps.
        let mut candidate = 0usize;
        for &(start, end) in &blocked {
            if candidate + len <= start {
                break;
            }
            candidate = candidate.max(end);
        }
        offsets[buf] = candidate;
        placed[buf] = true;
        arena_len = arena_len.max(candidate + len);
    }
    let dense: usize = program.buffers.iter().map(|b| b.len()).sum();
    if arena_len < dense {
        program.layout = Some(ArenaLayout { offsets, arena_len });
    }
}

/// Deterministic pseudo-random parameter vectors for the differential check —
/// the same multiply-with-carry generator the conformance suite uses, so a
/// rejection here reproduces exactly in a test.
fn validation_params(count: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..count)
        .map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 2.0
        })
        .collect()
}

fn matrices_bit_identical(a: &Matrix<f64>, b: &Matrix<f64>) -> bool {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return false;
    }
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let (x, y) = (a.get(r, c), b.get(r, c));
            if x.re.to_bits() != y.re.to_bits() || x.im.to_bits() != y.im.to_bits() {
                return false;
            }
        }
    }
    true
}

/// Proves `candidate` is an acceptable replacement for `original`: the verifier
/// and every tier's lowering accept it, and it evaluates bit-identically (values
/// and gradients, both [`DiffMode`]s, every registered tier) on deterministic
/// parameter vectors. Returns the first failure as a human-readable reason.
fn translation_validate(
    original: &TnvmProgram,
    candidate: &TnvmProgram,
    cache: &ExpressionCache,
) -> Result<(), String> {
    verify_program(candidate)
        .map_err(|e| format!("verifier rejected the optimized program: {e}"))?;
    for kind in BackendKind::all() {
        verify_backend(candidate, kind)
            .map_err(|e| format!("{kind} lowering of the optimized program is illegal: {e}"))?;
    }
    let vectors: Vec<Vec<f64>> =
        (0..2).map(|seed| validation_params(original.num_params, seed)).collect();
    for diff_mode in [DiffMode::None, DiffMode::Gradient] {
        for kind in BackendKind::all() {
            let mut reference: Tnvm<f64> = Tnvm::with_backend(original, diff_mode, cache, kind);
            let mut optimized: Tnvm<f64> = Tnvm::with_backend(candidate, diff_mode, cache, kind);
            for (v, params) in vectors.iter().enumerate() {
                let expect = reference.evaluate(params);
                let got = optimized.evaluate(params);
                if !matrices_bit_identical(&expect.unitary, &got.unitary) {
                    return Err(format!(
                        "unitary differs ({kind} tier, {diff_mode:?} mode, vector {v})"
                    ));
                }
                if expect.gradient.len() != got.gradient.len() {
                    return Err(format!(
                        "gradient count differs ({kind} tier, {diff_mode:?} mode)"
                    ));
                }
                for (p, (ge, gg)) in expect.gradient.iter().zip(got.gradient.iter()).enumerate() {
                    if !matrices_bit_identical(ge, gg) {
                        return Err(format!(
                            "gradient {p} differs ({kind} tier, {diff_mode:?} mode, vector {v})"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// The static cost model's prediction for one lowered program: the kernel
/// counters the VM will accumulate at initialization and per evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCostEstimate {
    /// Counters from executing the constant section once at construction.
    /// `cache_hits`/`cache_misses` are left at zero — cache outcomes depend on
    /// process history, not on the plan.
    pub init: KernelCounters,
    /// Counters from one [`Tnvm::evaluate`] call (the dynamic section;
    /// `evaluations` is 1).
    pub per_evaluation: KernelCounters,
}

/// Kernel invocations one bilinear instruction makes: the value call plus one
/// product-rule call per surviving gradient term (a term survives when the
/// operand depends on the parameter) — the same counting as
/// `Tnvm::exec_bilinear`.
fn bilinear_calls(program: &TnvmProgram, a: BufId, b: BufId, out: BufId, mode: DiffMode) -> u64 {
    let mut calls = 1u64;
    if mode == DiffMode::Gradient {
        for param in &program.buffers[out].params {
            if program.buffers[a].params.contains(param) {
                calls += 1;
            }
            if program.buffers[b].params.contains(param) {
                calls += 1;
            }
        }
    }
    calls
}

fn section_counters(
    program: &TnvmProgram,
    ops: &[TnvmOp],
    kernels: &[qudit_tnvm::KernelSel],
    mode: DiffMode,
) -> KernelCounters {
    let mut counters = KernelCounters::default();
    for (op, &sel) in ops.iter().zip(kernels.iter()) {
        match op {
            TnvmOp::Write { .. } => counters.writes += 1,
            TnvmOp::Transpose { .. } => counters.transposes += 1,
            TnvmOp::Matmul { a, b, out } => {
                let (m, k) = (program.buffers[*a].rows, program.buffers[*a].cols);
                let n = program.buffers[*b].cols;
                let calls = bilinear_calls(program, *a, *b, *out, mode);
                counters.tally(BilinearTally::Matmul, sel, calls, 8 * (m * n * k) as u64);
            }
            TnvmOp::Kron { a, b, out } => {
                let calls = bilinear_calls(program, *a, *b, *out, mode);
                let flops = 6 * program.buffers[*out].len() as u64;
                counters.tally(BilinearTally::Kron, sel, calls, flops);
            }
            TnvmOp::Hadamard { a, b, out } => {
                let calls = bilinear_calls(program, *a, *b, *out, mode);
                let flops = 6 * program.buffers[*out].len() as u64;
                counters.tally(BilinearTally::Hadamard, sel, calls, flops);
            }
        }
    }
    counters
}

/// Predicts the [`KernelCounters`] a [`Tnvm`] running `program` under `plan`
/// in `mode` will accumulate, using the same dispatch and flop formulas as the
/// VM's tallying — the conformance suite cross-checks the prediction *exactly*
/// against the runtime `tnvm.*` counters, keeping the counters and the lowering
/// honest as new tiers land.
///
/// # Panics
///
/// Panics when `plan`'s kernel-selection vectors are not index-aligned with the
/// program's sections (use [`verify_plan`](crate::verify_plan) for a typed
/// rejection first).
pub fn estimate_plan(program: &TnvmProgram, plan: &ExecPlan, mode: DiffMode) -> PlanCostEstimate {
    assert_eq!(
        plan.constant_kernels.len(),
        program.constant_ops.len(),
        "plan constant section out of sync with program"
    );
    assert_eq!(
        plan.dynamic_kernels.len(),
        program.dynamic_ops.len(),
        "plan dynamic section out of sync with program"
    );
    let init = section_counters(program, &program.constant_ops, &plan.constant_kernels, mode);
    let mut per_evaluation =
        section_counters(program, &program.dynamic_ops, &plan.dynamic_kernels, mode);
    per_evaluation.evaluations = 1;
    PlanCostEstimate { init, per_evaluation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::builders;
    use qudit_network::{compile_network, TensorNetwork};

    fn program_for(radices: &[usize]) -> TnvmProgram {
        let couplings: Vec<(usize, usize)> = (0..radices.len() - 1).map(|i| (i, i + 1)).collect();
        let circuit = builders::pqc_template(radices, &couplings).unwrap();
        compile_network(&TensorNetwork::from_circuit(&circuit))
    }

    #[test]
    fn off_level_returns_the_program_unchanged() {
        let p = program_for(&[2, 2]);
        let cache = ExpressionCache::new();
        let out = optimize_program(&p, OptimizeLevel::Off, &cache);
        assert_eq!(out.stats.instructions_before, out.stats.instructions_after);
        assert_eq!(out.stats.dce_removed + out.stats.cse_removed, 0);
        assert!(out.stats.rejected.is_none());
        assert_eq!(out.program.len(), p.len());
    }

    #[test]
    fn optimized_programs_verify_and_keep_their_output_shape() {
        for radices in [&[2usize, 2][..], &[3, 3], &[2, 2, 2]] {
            let p = program_for(radices);
            let cache = ExpressionCache::new();
            let out = optimize_program(&p, OptimizeLevel::Full, &cache);
            assert!(out.stats.rejected.is_none(), "{:?}", out.stats.rejected);
            verify_program(&out.program).unwrap();
            assert_eq!(out.program.dim(), p.dim());
            assert!(out.stats.instructions_after <= out.stats.instructions_before);
            assert!(out.stats.arena_after <= out.stats.arena_before);
        }
    }

    #[test]
    fn cse_merges_duplicated_identity_padding_writes() {
        // A 3-qudit chain forces two separate single-wire identity paddings with
        // the same expression — the guaranteed CSE win.
        let p = program_for(&[2, 2, 2]);
        let cache = ExpressionCache::new();
        let out = optimize_program(&p, OptimizeLevel::Instructions, &cache);
        assert!(out.stats.rejected.is_none());
        assert!(
            out.stats.cse_removed >= 1,
            "expected at least one merged identity write: {:?}",
            out.stats
        );
        assert!(out.stats.instructions_after < out.stats.instructions_before);
    }

    #[test]
    fn dce_removes_an_artificially_dead_instruction() {
        let mut p = program_for(&[2, 2]);
        // Plant a dead constant write: duplicate the first constant op into a
        // fresh buffer nothing reads.
        let dead_buf = p.buffers.len();
        p.buffers.push(p.buffers[p.constant_ops[0].out()].clone());
        let mut dead_op = p.constant_ops[0].clone();
        if let TnvmOp::Write { out, .. } = &mut dead_op {
            *out = dead_buf;
        }
        p.constant_ops.push(dead_op);
        p.validate().unwrap();
        let cache = ExpressionCache::new();
        let out = optimize_program(&p, OptimizeLevel::Instructions, &cache);
        assert!(out.stats.rejected.is_none());
        assert!(out.stats.dce_removed + out.stats.cse_removed >= 1);
        assert!(out.program.len() < p.len());
    }

    #[test]
    fn full_level_coalescing_shrinks_the_arena_when_it_applies() {
        let p = program_for(&[2, 2, 2]);
        let cache = ExpressionCache::new();
        let out = optimize_program(&p, OptimizeLevel::Full, &cache);
        assert!(out.stats.rejected.is_none());
        if let Some(layout) = &out.program.layout {
            assert!(layout.arena_len < out.stats.arena_before);
            assert_eq!(out.stats.arena_after, layout.arena_len);
            out.program.validate().unwrap();
        }
    }

    #[test]
    fn estimate_matches_runtime_counters_exactly() {
        let p = program_for(&[2, 3]);
        let cache = ExpressionCache::new();
        for kind in BackendKind::all() {
            let plan = kind.instance().lower(&p);
            for mode in [DiffMode::None, DiffMode::Gradient] {
                let estimate = estimate_plan(&p, &plan, mode);
                let mut vm: Tnvm<f64> = Tnvm::with_backend(&p, mode, &cache, kind);
                let mut init = vm.take_counters();
                init.cache_hits = 0;
                init.cache_misses = 0;
                assert_eq!(init, estimate.init, "{kind} {mode:?} init");
                let params = validation_params(p.num_params, 7);
                vm.evaluate(&params);
                assert_eq!(vm.take_counters(), estimate.per_evaluation, "{kind} {mode:?} eval");
            }
        }
    }

    #[test]
    fn a_corrupted_candidate_is_rejected_by_the_differential_check() {
        let p = program_for(&[2, 2]);
        let mut corrupted = p.clone();
        // Swap the matmul operand order somewhere: same shapes, different value.
        let mut swapped = false;
        for op in corrupted.dynamic_ops.iter_mut().chain(corrupted.constant_ops.iter_mut()) {
            if let TnvmOp::Matmul { a, b, .. } = op {
                if corrupted.buffers[*a].params != corrupted.buffers[*b].params {
                    continue;
                }
                std::mem::swap(a, b);
                swapped = true;
                break;
            }
        }
        if !swapped {
            return; // no symmetric matmul to corrupt in this program shape
        }
        let cache = ExpressionCache::new();
        let err = translation_validate(&p, &corrupted, &cache).unwrap_err();
        assert!(err.contains("differs"), "{err}");
    }
}
