//! `detlint` — the determinism linter, as a CI-runnable binary.
//!
//! ```text
//! detlint [--self-test] [ROOT]
//! ```
//!
//! Lints every `crates/*/src/**/*.rs` file under `ROOT` (default: the current
//! directory) for the hazard patterns documented in `qudit_analyze::detlint` and
//! `docs/static-analysis.md`. With `--self-test`, first checks that the linter
//! still detects one planted hazard per rule — so a green run proves both "the
//! tree is clean" and "the linter still bites". Exits nonzero on any finding or
//! self-test failure.

use std::path::Path;
use std::process::ExitCode;

use qudit_analyze::detlint;

fn main() -> ExitCode {
    let mut self_test = false;
    let mut root = String::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                println!("usage: detlint [--self-test] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = other.to_string(),
        }
    }

    if self_test {
        match detlint::self_test() {
            Ok(()) => println!("detlint: self-test passed (all rules detect their plants)"),
            Err(detail) => {
                eprintln!("detlint: self-test FAILED: {detail}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match detlint::lint_workspace(Path::new(&root)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("detlint: cannot scan workspace at '{root}': {e}");
            return ExitCode::FAILURE;
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    if report.findings.is_empty() {
        println!("detlint: {} file(s) clean", report.files);
        ExitCode::SUCCESS
    } else {
        eprintln!("detlint: {} finding(s) across {} file(s)", report.findings.len(), report.files);
        ExitCode::FAILURE
    }
}
