//! Layer 3: `detlint`, the determinism linter.
//!
//! The byte-for-byte determinism contract (ROADMAP / `docs/determinism.md` lineage)
//! is enforced dynamically by CI diffing repeated runs — which only catches a hazard
//! when a schedule happens to expose it. This linter catches the *sources* of those
//! hazards statically, by scanning workspace sources for three patterns:
//!
//! * **`unsorted-map-iter`** — iteration over a `std::collections` hash map or hash
//!   set (whose order is seeded per process). Any such iteration feeding
//!   compilation or reduction order is a nondeterminism bug; sites that sort after
//!   collecting, or that provably don't depend on order, carry an explicit
//!   annotation.
//! * **`wall-clock`** — `Instant`/`SystemTime` reads. Timing must stay behind the
//!   `qudit_trace::omit_timing` gate so report artifacts byte-diff clean; bench
//!   code (`benches/` paths) is exempt.
//! * **`thread-accumulation`** — atomic read-modify-write accumulation
//!   (`fetch_add` and friends), which commits results in completion order. Only
//!   blessed join points — sites whose merged value is order-insensitive by
//!   construction — may do this, and each carries an annotation saying why.
//! * **`lock-unwrap`** — `.unwrap()`/`.expect(..)` on a `Mutex`/`RwLock` lock
//!   result. The workspace policy (see `qudit-serve`) is that a poisoned lock is
//!   recovered with `unwrap_or_else(PoisonError::into_inner)` — all protected
//!   state is valid-by-construction — so a panicking unwrap turns one worker's
//!   panic into a cascading denial of service. Sites that genuinely want
//!   poisoning to propagate carry an annotation saying why.
//!
//! A finding is suppressed by an annotation on the same or the immediately
//! preceding line:
//!
//! ```text
//! // detlint: allow(unsorted-map-iter) — sorted immediately after collection
//! ```
//!
//! Test modules are exempt: scanning stops at the first `#[cfg(test)]` attribute
//! (workspace convention keeps test modules at the bottom of each file).
//!
//! The linter's own pattern tables are assembled with `concat!` splits so that
//! scanning this file does not self-flag. [`self_test`] plants one snippet per rule
//! — including a replica of the PR-3 e-graph regression, where unsorted
//! `HashMap` key iteration fed rewrite order — and checks each is detected, and
//! that annotated variants are suppressed.

use std::fs;
use std::path::{Path, PathBuf};

/// Marker for the hash-map type, split so this file does not self-flag.
const HASH_MAP: &str = concat!("Hash", "Map");
/// Marker for the hash-set type, split so this file does not self-flag.
const HASH_SET: &str = concat!("Hash", "Set");

/// The determinism-hazard rules `detlint` checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Iteration over a hash-ordered map or set.
    UnsortedMapIter,
    /// A wall-clock read outside the timing gate.
    WallClock,
    /// Thread-order-dependent atomic accumulation.
    ThreadAccumulation,
    /// A panicking unwrap of a `Mutex`/`RwLock` lock result, outside the
    /// documented `PoisonError::into_inner` recovery policy.
    LockUnwrap,
}

impl Rule {
    /// All rules, in documentation order.
    pub fn all() -> [Rule; 4] {
        [Rule::UnsortedMapIter, Rule::WallClock, Rule::ThreadAccumulation, Rule::LockUnwrap]
    }

    /// The rule's stable name, as used in `detlint: allow(<name>)` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsortedMapIter => "unsorted-map-iter",
            Rule::WallClock => "wall-clock",
            Rule::ThreadAccumulation => "thread-accumulation",
            Rule::LockUnwrap => "lock-unwrap",
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One determinism hazard found in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The file the hazard is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path.display(), self.line, self.rule, self.excerpt)
    }
}

/// What a workspace lint covered, alongside its findings.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Source files scanned.
    pub files: usize,
    /// Hazards found, ordered by path then line.
    pub findings: Vec<Finding>,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The identifier ending at the end of `text`, if any.
fn ident_before(text: &str) -> Option<String> {
    let trimmed = text.trim_end();
    let start = trimmed
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident_char(c))
        .last()
        .map(|(i, _)| i)?;
    let ident = &trimmed[start..];
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(ident.to_string())
}

/// Collects the names bound to hash-ordered collections in `source`: struct fields
/// and arguments (`name: HashMap<..>`, `name: &HashMap<..>`) and let-bindings
/// (`let [mut] name = HashMap::new()` and the with-capacity/from forms).
fn hash_bound_names(lines: &[&str]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in lines {
        let code = line.trim();
        if code.starts_with("//") {
            continue;
        }
        if code.contains("#[cfg(test)]") {
            break;
        }
        for marker in [HASH_MAP, HASH_SET] {
            for (i, _) in line.match_indices(marker) {
                let prefix = &line[..i];
                let rest = &line[i + marker.len()..];
                // `let [mut] name = HashMap::new()` / `::with_capacity` / `::from`.
                if rest.starts_with("::") {
                    if let Some(eq) = prefix.rfind('=') {
                        if let Some(name) = ident_before(&prefix[..eq]) {
                            if name != "mut" && name != "let" {
                                names.push(name);
                            }
                            continue;
                        }
                    }
                }
                // `name: HashMap<..>` / `name: &HashMap<..>` / `name: &mut HashMap<..>`.
                let mut t = prefix.trim_end();
                loop {
                    let before = t;
                    t = t.trim_end_matches('&').trim_end();
                    if let Some(stripped) = t.strip_suffix("mut") {
                        if stripped.ends_with([' ', '&']) || stripped.is_empty() {
                            t = stripped.trim_end();
                        }
                    }
                    if t == before {
                        break;
                    }
                }
                if let Some(stripped) = t.strip_suffix(':') {
                    if let Some(name) = ident_before(stripped) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

fn mentions_word(line: &str, word: &str) -> bool {
    line.match_indices(word).any(|(i, _)| {
        let before_ok = line[..i].chars().next_back().is_none_or(|c| !is_ident_char(c));
        let after_ok = line[i + word.len()..].chars().next().is_none_or(|c| !is_ident_char(c));
        before_ok && after_ok
    })
}

/// True when line `index` (or the contiguous comment block ending just above it)
/// carries a `detlint: allow(<rule>)` annotation.
fn allowed(lines: &[&str], index: usize, rule: Rule) -> bool {
    let carries = |line: &str| line.contains("detlint: allow(") && line.contains(rule.name());
    if carries(lines[index]) {
        return true;
    }
    lines[..index]
        .iter()
        .rev()
        .take_while(|line| line.trim_start().starts_with("//"))
        .any(|line| carries(line))
}

/// Lints one source file's contents. `path` is used only to label findings and to
/// apply path-based exemptions (bench code is exempt from `wall-clock`).
pub fn lint_source(path: &Path, source: &str) -> Vec<Finding> {
    let lines: Vec<&str> = source.lines().collect();
    let hash_names = hash_bound_names(&lines);
    let in_benches = path.components().any(|c| c.as_os_str() == "benches");

    let iter_methods = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
    ];
    let clock_markers = [concat!("Instant", "::now"), concat!("SystemTime", "::now")];
    let accum_markers = [
        concat!("fetch", "_add("),
        concat!("fetch", "_sub("),
        concat!("fetch", "_min("),
        concat!("fetch", "_max("),
        concat!("fetch", "_and("),
        concat!("fetch", "_or("),
        concat!("fetch", "_xor("),
        concat!("fetch", "_update("),
    ];
    // Lock acquisitions and the panicking consumers that violate the
    // PoisonError::into_inner policy. Split so this file does not self-flag.
    let lock_calls = [".lock()", concat!(".r", "ead()"), concat!(".w", "rite()")];
    let panicking = [concat!(".unw", "rap()"), concat!(".exp", "ect(")];
    let lock_unwrap_markers: Vec<String> = lock_calls
        .iter()
        .flat_map(|lock| panicking.iter().map(move |sink| format!("{lock}{sink}")))
        .collect();

    let mut findings = Vec::new();
    let mut report = |index: usize, rule: Rule, lines: &[&str]| {
        if !allowed(lines, index, rule) {
            findings.push(Finding {
                path: path.to_path_buf(),
                line: index + 1,
                rule,
                excerpt: lines[index].trim().to_string(),
            });
        }
    };

    for (index, line) in lines.iter().enumerate() {
        let code = line.trim();
        if code.contains("#[cfg(test)]") {
            break;
        }
        if code.starts_with("//") {
            continue;
        }
        let map_iteration = hash_names.iter().any(|name| {
            let called = iter_methods.iter().any(|m| line.contains(&format!("{name}{m}")));
            let looped =
                code.starts_with("for ") && line.contains(" in ") && mentions_word(line, name);
            // Builder-style chains split the receiver and the method across lines:
            //     self.classes
            //         .iter()
            let chained = code.ends_with(name)
                && mentions_word(code, name)
                && lines.get(index + 1).is_some_and(|next| {
                    let next = next.trim_start();
                    iter_methods.iter().any(|m| next.starts_with(m))
                });
            called || looped || chained
        });
        if map_iteration {
            report(index, Rule::UnsortedMapIter, &lines);
        }
        if !in_benches && clock_markers.iter().any(|m| line.contains(m)) {
            report(index, Rule::WallClock, &lines);
        }
        if accum_markers.iter().any(|m| line.contains(m)) {
            report(index, Rule::ThreadAccumulation, &lines);
        }
        // Same-line `.lock().unwrap()` chains, plus the split form where the
        // acquisition ends one line and the panicking consumer opens the next.
        let lock_unwrap = lock_unwrap_markers.iter().any(|m| line.contains(m.as_str()))
            || (lock_calls.iter().any(|l| code.ends_with(l))
                && lines.get(index + 1).is_some_and(|next| {
                    let next = next.trim_start();
                    panicking.iter().any(|s| next.starts_with(s))
                }));
        if lock_unwrap {
            report(index, Rule::LockUnwrap, &lines);
        }
    }
    findings
}

fn visit_sources(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    // read_dir order is filesystem-dependent; sort so findings are deterministic.
    entries.sort();
    for path in entries {
        if path.is_dir() {
            visit_sources(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` file under `root` (the workspace root).
///
/// Vendored shims (`vendor/`), integration tests (`tests/`), and examples are out
/// of scope: the determinism contract binds the library crates.
///
/// # Errors
///
/// Returns an [`std::io::Error`] if the workspace layout cannot be read.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> =
        fs::read_dir(&crates_dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    crate_dirs.sort();
    let mut sources = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            visit_sources(&src, &mut sources)?;
        }
    }
    let mut report = LintReport::default();
    for path in sources {
        let source = fs::read_to_string(&path)?;
        report.findings.extend(lint_source(&path, &source));
        report.files += 1;
    }
    Ok(report)
}

/// Checks the linter against planted hazards; returns the failure description if
/// any rule misses its plant or flags a suppressed site.
///
/// The `unsorted-map-iter` plant replicates the PR-3 e-graph regression: hash-map
/// key iteration feeding reduction order.
pub fn self_test() -> Result<(), String> {
    let path = Path::new("detlint-self-test.rs");

    // Replica of the PR-3 regression: rewrite order driven by raw key iteration.
    let regression = [
        format!("use std::collections::{HASH_MAP};"),
        format!("struct EGraph {{ classes: {HASH_MAP}<u64, usize> }}"),
        "impl EGraph {".to_string(),
        "    fn class_ids(&self) -> Vec<u64> {".to_string(),
        "        self.classes.keys().copied().collect()".to_string(),
        "    }".to_string(),
        "}".to_string(),
    ]
    .join("\n");
    let findings = lint_source(path, &regression);
    if findings.len() != 1 || findings[0].rule != Rule::UnsortedMapIter || findings[0].line != 5 {
        return Err(format!(
            "unsorted-map-iter missed the planted e-graph regression: {findings:?}"
        ));
    }

    let looped = [
        format!("fn sum(counts: &{HASH_MAP}<u64, f64>) -> f64 {{"),
        "    let mut total = 0.0;".to_string(),
        "    for (_k, v) in counts { total += v; }".to_string(),
        "    total".to_string(),
        "}".to_string(),
    ]
    .join("\n");
    let findings = lint_source(path, &looped);
    if findings.len() != 1 || findings[0].rule != Rule::UnsortedMapIter || findings[0].line != 3 {
        return Err(format!("unsorted-map-iter missed the planted for-loop: {findings:?}"));
    }

    let clock = format!(
        "fn stamp() -> std::time::{} {{ std::time::{}() }}",
        "Instant",
        concat!("Instant", "::now")
    );
    let findings = lint_source(path, &clock);
    if findings.len() != 1 || findings[0].rule != Rule::WallClock {
        return Err(format!("wall-clock missed the planted read: {findings:?}"));
    }

    let accum = format!("fn bump(c: &AtomicUsize) {{ c.{}1, Ordering::Relaxed); }}", {
        concat!("fetch", "_add(")
    });
    let findings = lint_source(path, &accum);
    if findings.len() != 1 || findings[0].rule != Rule::ThreadAccumulation {
        return Err(format!("thread-accumulation missed the planted fetch: {findings:?}"));
    }

    // A panicking lock unwrap — the cascading-DoS regression the policy exists
    // to prevent — in both the same-line and split-chain spellings.
    let lock = [
        format!(
            "fn peek(q: &Mutex<Vec<u64>>) -> usize {{ q.lock(){}len() }}",
            concat!(".unw", "rap().")
        ),
        "fn drain(q: &Mutex<Vec<u64>>) -> Vec<u64> {".to_string(),
        "    let mut guard = q.lock()".to_string(),
        format!("        {}\"queue poisoned\");", concat!(".exp", "ect(")),
        "    std::mem::take(&mut *guard)".to_string(),
        "}".to_string(),
    ]
    .join("\n");
    let findings = lint_source(path, &lock);
    let lock_hits: Vec<_> = findings.iter().filter(|f| f.rule == Rule::LockUnwrap).collect();
    if lock_hits.len() != 2 || lock_hits[0].line != 1 || lock_hits[1].line != 3 {
        return Err(format!("lock-unwrap missed the planted unwraps: {findings:?}"));
    }

    // Suppression: an annotated replica of each plant must lint clean.
    let suppressed = [
        format!("struct EGraph {{ classes: {HASH_MAP}<u64, usize> }}"),
        "fn class_ids(g: &EGraph) -> Vec<u64> {".to_string(),
        "    // detlint: allow(unsorted-map-iter) — sorted on the next line".to_string(),
        "    let mut ids: Vec<u64> = g.classes.keys().copied().collect();".to_string(),
        "    ids.sort_unstable();".to_string(),
        "    ids".to_string(),
        "}".to_string(),
        format!(
            "fn stamp() {{ let _ = std::time::{}(); }} // detlint: allow(wall-clock) — gated",
            concat!("Instant", "::now")
        ),
        format!(
            "fn bump(c: &AtomicUsize) {{ c.{}1, Ordering::Relaxed); }} \
             // detlint: allow(thread-accumulation) — commutative",
            concat!("fetch", "_add(")
        ),
        "// detlint: allow(lock-unwrap) — poisoning must abort this test harness".to_string(),
        format!(
            "fn peek(q: &Mutex<Vec<u64>>) -> usize {{ q.lock(){}len() }}",
            concat!(".unw", "rap().")
        ),
    ]
    .join("\n");
    let findings = lint_source(path, &suppressed);
    if !findings.is_empty() {
        return Err(format!("annotated sites must be suppressed: {findings:?}"));
    }

    // Test modules are exempt: everything after #[cfg(test)] is skipped.
    let test_only = [
        format!("struct S {{ m: {HASH_MAP}<u64, u64> }}"),
        "#[cfg(test)]".to_string(),
        "mod tests {".to_string(),
        "    fn f(s: &super::S) -> usize { s.m.keys().count() }".to_string(),
        "}".to_string(),
    ]
    .join("\n");
    let findings = lint_source(path, &test_only);
    if !findings.is_empty() {
        return Err(format!("test modules must be exempt: {findings:?}"));
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        self_test().unwrap();
    }

    #[test]
    fn rule_names_round_trip_in_annotations() {
        for rule in Rule::all() {
            let line = format!("x(); // detlint: allow({rule})");
            assert!(line.contains(rule.name()));
        }
    }

    #[test]
    fn finding_display_names_file_line_and_rule() {
        let finding = Finding {
            path: PathBuf::from("crates/x/src/lib.rs"),
            line: 7,
            rule: Rule::WallClock,
            excerpt: "let t = now();".to_string(),
        };
        let s = finding.to_string();
        assert!(s.contains("crates/x/src/lib.rs:7"), "{s}");
        assert!(s.contains("wall-clock"), "{s}");
    }

    #[test]
    fn benches_are_exempt_from_wall_clock_only() {
        let source = format!("fn t() {{ let _ = std::time::{}(); }}", concat!("Instant", "::now"));
        let bench = Path::new("crates/x/benches/b.rs");
        assert!(lint_source(bench, &source).is_empty());
        let lib = Path::new("crates/x/src/lib.rs");
        assert_eq!(lint_source(lib, &source).len(), 1);
    }
}
