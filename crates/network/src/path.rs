//! Contraction-tree construction: the contraction-ordering problem.
//!
//! The cost of contracting a tensor network depends critically on the pairwise order in
//! which tensors are merged; finding the optimal order is NP-hard. Following the paper
//! (Sec. IV-A), OpenQudit uses a hybrid strategy: an optimal solver for small networks
//! and a fast greedy heuristic above a size threshold (7 tensors in the paper).
//!
//! Because every intermediate in a circuit-unitary contraction is itself an operator on a
//! subset of qudits, the search space used here is the space of *time-respecting pairwise
//! merges*: a merge combines an "earlier" subtree with a "later" subtree whose operations
//! never precede the earlier subtree's on any shared wire. The optimal solver performs an
//! exact interval dynamic program over the time-ordered gate sequence; the greedy solver
//! repeatedly merges the adjacent pair with the smallest resulting operator.

use crate::network::TensorNetwork;

/// A binary contraction tree over the network's gate nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractionTree {
    /// A leaf: the gate node with this index.
    Leaf(usize),
    /// A pairwise contraction of an earlier and a later subtree.
    Merge {
        /// The subtree whose operations come first in circuit time.
        earlier: Box<ContractionTree>,
        /// The subtree whose operations come later.
        later: Box<ContractionTree>,
    },
}

impl ContractionTree {
    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            ContractionTree::Leaf(_) => 1,
            ContractionTree::Merge { earlier, later } => earlier.leaf_count() + later.leaf_count(),
        }
    }

    /// The leaf indices in left-to-right order.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            ContractionTree::Leaf(i) => out.push(*i),
            ContractionTree::Merge { earlier, later } => {
                earlier.collect_leaves(out);
                later.collect_leaves(out);
            }
        }
    }

    /// Depth of the tree (1 for a single leaf).
    pub fn depth(&self) -> usize {
        match self {
            ContractionTree::Leaf(_) => 1,
            ContractionTree::Merge { earlier, later } => 1 + earlier.depth().max(later.depth()),
        }
    }
}

/// Which solver produced a plan (reported for benchmarks and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Exact interval dynamic programming.
    Optimal,
    /// Greedy adjacent-pair merging.
    Greedy,
    /// Trivial (zero or one node).
    Trivial,
}

/// A contraction plan: the tree plus its estimated floating-point cost.
#[derive(Debug, Clone)]
pub struct ContractionPlan {
    /// The contraction tree. `None` when the network has no gate nodes.
    pub tree: Option<ContractionTree>,
    /// Estimated cost in floating-point operations (model units).
    pub cost: f64,
    /// Which solver produced the plan.
    pub kind: PlanKind,
}

/// The default node-count threshold above which the greedy heuristic is used, matching
/// the paper's choice of 7.
pub const OPTIMAL_THRESHOLD: usize = 7;

/// Finds a contraction plan using the hybrid strategy (optimal below
/// [`OPTIMAL_THRESHOLD`], greedy above).
pub fn find_plan(network: &TensorNetwork) -> ContractionPlan {
    find_plan_with_threshold(network, OPTIMAL_THRESHOLD)
}

/// Finds a contraction plan with an explicit optimal-solver threshold (exposed for the
/// ablation benchmark).
pub fn find_plan_with_threshold(network: &TensorNetwork, threshold: usize) -> ContractionPlan {
    let n = network.nodes().len();
    match n {
        0 => ContractionPlan { tree: None, cost: 0.0, kind: PlanKind::Trivial },
        1 => ContractionPlan {
            tree: Some(ContractionTree::Leaf(0)),
            cost: 0.0,
            kind: PlanKind::Trivial,
        },
        _ if n <= threshold => {
            let (tree, cost) = optimal_interval_dp(network);
            ContractionPlan { tree: Some(tree), cost, kind: PlanKind::Optimal }
        }
        _ => {
            let (tree, cost) = greedy_adjacent(network);
            ContractionPlan { tree: Some(tree), cost, kind: PlanKind::Greedy }
        }
    }
}

/// Qudit set of a contiguous run of gate nodes `[i, j]` (inclusive).
fn interval_qudits(network: &TensorNetwork, i: usize, j: usize) -> Vec<usize> {
    let mut qudits: Vec<usize> =
        network.nodes()[i..=j].iter().flat_map(|n| n.qudits.iter().copied()).collect();
    qudits.sort_unstable();
    qudits.dedup();
    qudits
}

/// Cost model of merging two operators with the given qudit supports.
///
/// A disjoint merge is a Kronecker product (quadratic in the union dimension); an
/// overlapping merge requires expanding both operands to the union and a matrix product
/// (cubic in the union dimension).
pub fn merge_cost(network: &TensorNetwork, a: &[usize], b: &[usize]) -> f64 {
    let disjoint = a.iter().all(|q| !b.contains(q));
    let mut union: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
    union.sort_unstable();
    union.dedup();
    let du = network.dim_of(&union) as f64;
    if disjoint {
        du * du
    } else {
        2.0 * du * du * du + 2.0 * du * du
    }
}

/// Exact interval dynamic program (matrix-chain style) over the time-ordered sequence.
fn optimal_interval_dp(network: &TensorNetwork) -> (ContractionTree, f64) {
    let n = network.nodes().len();
    // best[i][j] = (cost, split) for contracting nodes i..=j.
    let mut best_cost = vec![vec![0.0f64; n]; n];
    let mut best_split = vec![vec![usize::MAX; n]; n];
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len - 1;
            let mut cheapest = f64::INFINITY;
            let mut split = i;
            for k in i..j {
                let left = interval_qudits(network, i, k);
                let right = interval_qudits(network, k + 1, j);
                let cost =
                    best_cost[i][k] + best_cost[k + 1][j] + merge_cost(network, &left, &right);
                if cost < cheapest {
                    cheapest = cost;
                    split = k;
                }
            }
            best_cost[i][j] = cheapest;
            best_split[i][j] = split;
        }
    }
    fn build(splits: &[Vec<usize>], i: usize, j: usize) -> ContractionTree {
        if i == j {
            return ContractionTree::Leaf(i);
        }
        let k = splits[i][j];
        ContractionTree::Merge {
            earlier: Box::new(build(splits, i, k)),
            later: Box::new(build(splits, k + 1, j)),
        }
    }
    (build(&best_split, 0, n - 1), best_cost[0][n - 1])
}

/// Greedy heuristic: repeatedly merge the adjacent pair of subtrees whose merged operator
/// is smallest (ties broken by estimated merge cost). Each subtree always covers a
/// contiguous interval of circuit time, so every merge is time-respecting.
fn greedy_adjacent(network: &TensorNetwork) -> (ContractionTree, f64) {
    struct Item {
        tree: ContractionTree,
        qudits: Vec<usize>,
    }
    let mut items: Vec<Item> = network
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let mut qudits = node.qudits.clone();
            qudits.sort_unstable();
            Item { tree: ContractionTree::Leaf(i), qudits }
        })
        .collect();
    let mut total_cost = 0.0;
    while items.len() > 1 {
        // Find the cheapest adjacent pair.
        let mut best_idx = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for idx in 0..items.len() - 1 {
            let a = &items[idx].qudits;
            let b = &items[idx + 1].qudits;
            let mut union: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
            union.sort_unstable();
            union.dedup();
            let du = network.dim_of(&union) as f64;
            let cost = merge_cost(network, a, b);
            if (du, cost) < best_key {
                best_key = (du, cost);
                best_idx = idx;
            }
        }
        let right = items.remove(best_idx + 1);
        let left = std::mem::replace(
            &mut items[best_idx],
            Item { tree: ContractionTree::Leaf(0), qudits: Vec::new() },
        );
        total_cost += merge_cost(network, &left.qudits, &right.qudits);
        let mut union: Vec<usize> =
            left.qudits.iter().chain(right.qudits.iter()).copied().collect();
        union.sort_unstable();
        union.dedup();
        items[best_idx] = Item {
            tree: ContractionTree::Merge {
                earlier: Box::new(left.tree),
                later: Box::new(right.tree),
            },
            qudits: union,
        };
    }
    (items.pop().expect("at least one item").tree, total_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{builders, gates, QuditCircuit};

    fn ladder(n: usize, layers: usize) -> TensorNetwork {
        TensorNetwork::from_circuit(&builders::pqc_qubit_ladder(n, layers).unwrap())
    }

    #[test]
    fn trivial_plans() {
        let empty = TensorNetwork::from_circuit(&QuditCircuit::qubits(2));
        assert!(find_plan(&empty).tree.is_none());

        let mut c = QuditCircuit::qubits(1);
        let rx = c.cache_operation(gates::rx()).unwrap();
        c.append_ref(rx, vec![0]).unwrap();
        let single = TensorNetwork::from_circuit(&c);
        let plan = find_plan(&single);
        assert_eq!(plan.kind, PlanKind::Trivial);
        assert_eq!(plan.tree.unwrap(), ContractionTree::Leaf(0));
    }

    #[test]
    fn small_networks_use_optimal_solver() {
        let net = ladder(3, 1); // 6 gate nodes <= 7
        let plan = find_plan(&net);
        assert_eq!(plan.kind, PlanKind::Optimal);
        let tree = plan.tree.unwrap();
        assert_eq!(tree.leaf_count(), net.nodes().len());
        // Leaves must appear exactly once each, in time order (interval DP preserves it).
        assert_eq!(tree.leaves(), (0..net.nodes().len()).collect::<Vec<_>>());
    }

    #[test]
    fn large_networks_use_greedy_solver() {
        let net = ladder(3, 4); // 15 gate nodes > 7
        let plan = find_plan(&net);
        assert_eq!(plan.kind, PlanKind::Greedy);
        let tree = plan.tree.unwrap();
        assert_eq!(tree.leaf_count(), net.nodes().len());
        assert_eq!(tree.leaves(), (0..net.nodes().len()).collect::<Vec<_>>());
        assert!(plan.cost > 0.0);
    }

    #[test]
    fn threshold_is_configurable() {
        let net = ladder(3, 1);
        let plan = find_plan_with_threshold(&net, 2);
        assert_eq!(plan.kind, PlanKind::Greedy);
        let plan = find_plan_with_threshold(&net, 50);
        assert_eq!(plan.kind, PlanKind::Optimal);
    }

    #[test]
    fn optimal_cost_not_worse_than_greedy() {
        for layers in 1..=2 {
            let net = ladder(3, layers);
            if net.nodes().len() > 7 {
                continue;
            }
            let optimal = find_plan_with_threshold(&net, 50);
            let greedy = find_plan_with_threshold(&net, 1);
            assert!(
                optimal.cost <= greedy.cost + 1e-9,
                "optimal {} > greedy {}",
                optimal.cost,
                greedy.cost
            );
        }
    }

    #[test]
    fn merge_cost_model_prefers_small_intermediates() {
        let net = ladder(3, 2);
        // Merging two single-qubit operators on the same wire is cheaper than merging
        // operators on different wires (2³ vs 4² scale), and far cheaper than merging to
        // the full 3-qubit operator.
        let same = merge_cost(&net, &[0], &[0]);
        let disjoint = merge_cost(&net, &[0], &[1]);
        let full = merge_cost(&net, &[0, 1], &[1, 2]);
        assert!(same < full);
        assert!(disjoint < full);
    }

    #[test]
    fn tree_depth_and_leaves() {
        let t = ContractionTree::Merge {
            earlier: Box::new(ContractionTree::Leaf(0)),
            later: Box::new(ContractionTree::Merge {
                earlier: Box::new(ContractionTree::Leaf(1)),
                later: Box::new(ContractionTree::Leaf(2)),
            }),
        };
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.leaves(), vec![0, 1, 2]);
    }
}
