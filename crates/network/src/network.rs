//! Lowering of a [`QuditCircuit`] into a tensor-network representation.
//!
//! In the tensor-network model each quantum gate becomes a tensor whose rank is twice its
//! arity, with index cardinalities given by the qudit radices on its wires (Sec. IV-A of
//! the paper). For the purpose of computing a circuit's unitary, every intermediate
//! produced while contracting that network is itself an *operator on a subset of the
//! circuit's qudits*; [`GateNode`] records exactly that view (which qudits, in which
//! axis order, plus how the gate's parameters bind to circuit parameters), and the
//! contraction-tree machinery in [`crate::path`] merges nodes pairwise.

use qudit_circuit::{OpParams, QuditCircuit};
use qudit_qgl::UnitaryExpression;

/// How one gate parameter obtains its value at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamBinding {
    /// Bound to the circuit parameter with this index.
    Circuit(usize),
    /// Fixed to a constant value.
    Constant(f64),
}

impl ParamBinding {
    /// Returns the circuit parameter index if this binding is dynamic.
    pub fn circuit_index(&self) -> Option<usize> {
        match self {
            ParamBinding::Circuit(i) => Some(*i),
            ParamBinding::Constant(_) => None,
        }
    }
}

/// A single gate tensor in the network.
#[derive(Debug, Clone)]
pub struct GateNode {
    /// Index into the network's expression table.
    pub expr_index: usize,
    /// The circuit qudits this gate acts on, in the gate's own wire order.
    pub qudits: Vec<usize>,
    /// Position of the originating operation in the circuit (time order).
    pub time: usize,
    /// Per-gate-parameter bindings, in the gate's parameter order.
    pub bindings: Vec<ParamBinding>,
}

impl GateNode {
    /// The sorted set of circuit parameters this node depends on.
    pub fn circuit_params(&self) -> Vec<usize> {
        let mut v: Vec<usize> =
            self.bindings.iter().filter_map(ParamBinding::circuit_index).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A tensor network lowered from a circuit.
#[derive(Debug, Clone)]
pub struct TensorNetwork {
    /// Unique gate expressions referenced by the nodes (deduplicated by content).
    exprs: Vec<UnitaryExpression>,
    /// The gate tensors, in circuit (time) order.
    nodes: Vec<GateNode>,
    /// The circuit's qudit radices.
    radices: Vec<usize>,
    /// Number of circuit-level parameters.
    num_params: usize,
}

impl TensorNetwork {
    /// Lowers a circuit into its tensor-network representation.
    pub fn from_circuit(circuit: &QuditCircuit) -> Self {
        let mut exprs: Vec<UnitaryExpression> = Vec::new();
        let mut key_to_index = std::collections::HashMap::new();
        let mut nodes = Vec::with_capacity(circuit.num_ops());
        for (time, op) in circuit.ops().iter().enumerate() {
            let expr = circuit
                .expression(op.expr)
                .expect("circuit operations always reference cached expressions");
            let key = expr.canonical_key();
            let expr_index = *key_to_index.entry(key).or_insert_with(|| {
                exprs.push(expr.clone());
                exprs.len() - 1
            });
            let bindings = match &op.params {
                OpParams::Constant(values) => {
                    values.iter().map(|&v| ParamBinding::Constant(v)).collect()
                }
                OpParams::Parameterized { offset } => {
                    (0..expr.num_params()).map(|k| ParamBinding::Circuit(offset + k)).collect()
                }
            };
            nodes.push(GateNode { expr_index, qudits: op.location.clone(), time, bindings });
        }
        TensorNetwork {
            exprs,
            nodes,
            radices: circuit.radices().to_vec(),
            num_params: circuit.num_params(),
        }
    }

    /// The unique gate expressions referenced by the network.
    pub fn expressions(&self) -> &[UnitaryExpression] {
        &self.exprs
    }

    /// The gate nodes in time order.
    pub fn nodes(&self) -> &[GateNode] {
        &self.nodes
    }

    /// The circuit's qudit radices.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// Number of qudits.
    pub fn num_qudits(&self) -> usize {
        self.radices.len()
    }

    /// Number of circuit parameters.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// The Hilbert-space dimension of a set of qudits.
    pub fn dim_of(&self, qudits: &[usize]) -> usize {
        qudits.iter().map(|&q| self.radices[q]).product()
    }

    /// Total Hilbert-space dimension of the full circuit.
    pub fn dim(&self) -> usize {
        self.radices.iter().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{builders, gates, QuditCircuit};

    fn sample_circuit() -> QuditCircuit {
        let mut c = QuditCircuit::qubits(3);
        let u3 = c.cache_operation(gates::u3()).unwrap();
        let cx = c.cache_operation(gates::cnot()).unwrap();
        for q in 0..3 {
            c.append_ref(u3, vec![q]).unwrap();
        }
        c.append_ref(cx, vec![0, 1]).unwrap();
        c.append_ref_constant(u3, vec![2], vec![0.1, 0.2, 0.3]).unwrap();
        c
    }

    #[test]
    fn lowering_counts_and_dedup() {
        let net = TensorNetwork::from_circuit(&sample_circuit());
        assert_eq!(net.nodes().len(), 5);
        // U3 and CNOT only — the constant U3 reuses the same expression entry.
        assert_eq!(net.expressions().len(), 2);
        assert_eq!(net.num_params(), 9);
        assert_eq!(net.num_qudits(), 3);
        assert_eq!(net.dim(), 8);
    }

    #[test]
    fn bindings_follow_circuit_parameter_layout() {
        let net = TensorNetwork::from_circuit(&sample_circuit());
        // Second U3 (on qubit 1) owns circuit parameters 3..6.
        assert_eq!(
            net.nodes()[1].bindings,
            vec![ParamBinding::Circuit(3), ParamBinding::Circuit(4), ParamBinding::Circuit(5)]
        );
        assert_eq!(net.nodes()[1].circuit_params(), vec![3, 4, 5]);
        // The CNOT has no parameters.
        assert!(net.nodes()[3].bindings.is_empty());
        // The final constant U3 binds constants only.
        assert!(matches!(net.nodes()[4].bindings[0], ParamBinding::Constant(v) if v == 0.1));
        assert!(net.nodes()[4].circuit_params().is_empty());
    }

    #[test]
    fn node_geometry() {
        let net = TensorNetwork::from_circuit(&sample_circuit());
        assert_eq!(net.nodes()[3].qudits, vec![0, 1]);
        assert_eq!(net.dim_of(&[0, 1]), 4);
        assert_eq!(net.nodes()[3].time, 3);
    }

    #[test]
    fn mixed_radix_dimensions() {
        let c = builders::pqc_qutrit_ladder(2, 1).unwrap();
        let net = TensorNetwork::from_circuit(&c);
        assert_eq!(net.dim(), 9);
        assert_eq!(net.dim_of(&[0]), 3);
        assert!(net.num_params() > 0);
    }
}
