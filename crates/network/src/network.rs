//! Lowering of a [`QuditCircuit`] into a tensor-network representation.
//!
//! In the tensor-network model each quantum gate becomes a tensor whose rank is twice its
//! arity, with index cardinalities given by the qudit radices on its wires (Sec. IV-A of
//! the paper). For the purpose of computing a circuit's unitary, every intermediate
//! produced while contracting that network is itself an *operator on a subset of the
//! circuit's qudits*; [`GateNode`] records exactly that view (which qudits, in which
//! axis order, plus how the gate's parameters bind to circuit parameters), and the
//! contraction-tree machinery in [`crate::path`] merges nodes pairwise.

use qudit_circuit::{OpParams, QuditCircuit};
use qudit_qgl::UnitaryExpression;

/// How one gate parameter obtains its value at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamBinding {
    /// Bound to the circuit parameter with this index.
    Circuit(usize),
    /// Fixed to a constant value.
    Constant(f64),
}

impl ParamBinding {
    /// Returns the circuit parameter index if this binding is dynamic.
    pub fn circuit_index(&self) -> Option<usize> {
        match self {
            ParamBinding::Circuit(i) => Some(*i),
            ParamBinding::Constant(_) => None,
        }
    }
}

/// A single gate tensor in the network.
#[derive(Debug, Clone)]
pub struct GateNode {
    /// Index into the network's expression table.
    pub expr_index: usize,
    /// The circuit qudits this gate acts on, in the gate's own wire order.
    pub qudits: Vec<usize>,
    /// Position of the originating operation in the circuit (time order).
    pub time: usize,
    /// Per-gate-parameter bindings, in the gate's parameter order.
    pub bindings: Vec<ParamBinding>,
}

impl GateNode {
    /// The sorted set of circuit parameters this node depends on.
    pub fn circuit_params(&self) -> Vec<usize> {
        let mut v: Vec<usize> =
            self.bindings.iter().filter_map(ParamBinding::circuit_index).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A tensor network lowered from a circuit.
#[derive(Debug, Clone)]
pub struct TensorNetwork {
    /// Unique gate expressions referenced by the nodes (deduplicated by content).
    exprs: Vec<UnitaryExpression>,
    /// The gate tensors, in circuit (time) order.
    nodes: Vec<GateNode>,
    /// The circuit's qudit radices.
    radices: Vec<usize>,
    /// Number of circuit-level parameters.
    num_params: usize,
}

impl TensorNetwork {
    /// Lowers a circuit into its tensor-network representation.
    pub fn from_circuit(circuit: &QuditCircuit) -> Self {
        let mut exprs: Vec<UnitaryExpression> = Vec::new();
        let mut key_to_index = std::collections::HashMap::new();
        let mut nodes = Vec::with_capacity(circuit.num_ops());
        for (time, op) in circuit.ops().iter().enumerate() {
            let expr = circuit
                .expression(op.expr)
                .expect("circuit operations always reference cached expressions");
            let key = expr.canonical_key();
            let expr_index = *key_to_index.entry(key).or_insert_with(|| {
                exprs.push(expr.clone());
                exprs.len() - 1
            });
            let bindings = match &op.params {
                OpParams::Constant(values) => {
                    values.iter().map(|&v| ParamBinding::Constant(v)).collect()
                }
                OpParams::Parameterized { offset } => {
                    (0..expr.num_params()).map(|k| ParamBinding::Circuit(offset + k)).collect()
                }
            };
            nodes.push(GateNode { expr_index, qudits: op.location.clone(), time, bindings });
        }
        TensorNetwork {
            exprs,
            nodes,
            radices: circuit.radices().to_vec(),
            num_params: circuit.num_params(),
        }
    }

    /// The unique gate expressions referenced by the network.
    pub fn expressions(&self) -> &[UnitaryExpression] {
        &self.exprs
    }

    /// The gate nodes in time order.
    pub fn nodes(&self) -> &[GateNode] {
        &self.nodes
    }

    /// The circuit's qudit radices.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// Number of qudits.
    pub fn num_qudits(&self) -> usize {
        self.radices.len()
    }

    /// Number of circuit parameters.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// The Hilbert-space dimension of a set of qudits.
    pub fn dim_of(&self, qudits: &[usize]) -> usize {
        qudits.iter().map(|&q| self.radices[q]).product()
    }

    /// Appends one parameterized gate node in place, allocating fresh trailing circuit
    /// parameters for it — the *recompile-on-expansion* path used by bottom-up
    /// synthesis: a search node clones its parent's network, pushes the new block's
    /// nodes, and recompiles only the extended network (expression compilation itself
    /// is amortized by the shared `ExpressionCache`, so the new bytecode reuses every
    /// previously compiled gate).
    ///
    /// Returns the index of the first circuit parameter allocated for the gate.
    ///
    /// # Panics
    ///
    /// Panics if `qudits` references wires out of range or whose radices do not match
    /// the expression (the circuit layer performs the user-facing validation; this is
    /// an internal-consistency check).
    pub fn push_parameterized(&mut self, expr: &UnitaryExpression, qudits: Vec<usize>) -> usize {
        let offset = self.num_params;
        let bindings = (0..expr.num_params()).map(|k| ParamBinding::Circuit(offset + k)).collect();
        self.num_params += expr.num_params();
        self.push_node(expr, qudits, bindings);
        offset
    }

    /// Appends one constant (fully bound) gate node in place.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length or `qudits` is inconsistent with the
    /// expression (see [`TensorNetwork::push_parameterized`]).
    pub fn push_constant(&mut self, expr: &UnitaryExpression, qudits: Vec<usize>, values: &[f64]) {
        assert_eq!(
            values.len(),
            expr.num_params(),
            "constant node for '{}' expects {} value(s)",
            expr.name(),
            expr.num_params()
        );
        let bindings = values.iter().map(|&v| ParamBinding::Constant(v)).collect();
        self.push_node(expr, qudits, bindings);
    }

    fn push_node(
        &mut self,
        expr: &UnitaryExpression,
        qudits: Vec<usize>,
        bindings: Vec<ParamBinding>,
    ) {
        assert_eq!(qudits.len(), expr.num_qudits(), "gate arity must match its location");
        for (&q, &radix) in qudits.iter().zip(expr.radices().iter()) {
            assert!(q < self.radices.len(), "qudit index {q} out of range");
            assert_eq!(self.radices[q], radix, "gate radix must match the wire at qudit {q}");
        }
        let key = expr.canonical_key();
        // The expression table stays tiny (a handful of unique gates), so a linear
        // dedup scan beats carrying a hash map through every clone.
        let expr_index = match self.exprs.iter().position(|e| e.canonical_key() == key) {
            Some(found) => found,
            None => {
                self.exprs.push(expr.clone());
                self.exprs.len() - 1
            }
        };
        let time = self.nodes.len();
        self.nodes.push(GateNode { expr_index, qudits, time, bindings });
    }

    /// Total Hilbert-space dimension of the full circuit.
    pub fn dim(&self) -> usize {
        self.radices.iter().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{builders, gates, QuditCircuit};

    fn sample_circuit() -> QuditCircuit {
        let mut c = QuditCircuit::qubits(3);
        let u3 = c.cache_operation(gates::u3()).unwrap();
        let cx = c.cache_operation(gates::cnot()).unwrap();
        for q in 0..3 {
            c.append_ref(u3, vec![q]).unwrap();
        }
        c.append_ref(cx, vec![0, 1]).unwrap();
        c.append_ref_constant(u3, vec![2], vec![0.1, 0.2, 0.3]).unwrap();
        c
    }

    #[test]
    fn lowering_counts_and_dedup() {
        let net = TensorNetwork::from_circuit(&sample_circuit());
        assert_eq!(net.nodes().len(), 5);
        // U3 and CNOT only — the constant U3 reuses the same expression entry.
        assert_eq!(net.expressions().len(), 2);
        assert_eq!(net.num_params(), 9);
        assert_eq!(net.num_qudits(), 3);
        assert_eq!(net.dim(), 8);
    }

    #[test]
    fn bindings_follow_circuit_parameter_layout() {
        let net = TensorNetwork::from_circuit(&sample_circuit());
        // Second U3 (on qubit 1) owns circuit parameters 3..6.
        assert_eq!(
            net.nodes()[1].bindings,
            vec![ParamBinding::Circuit(3), ParamBinding::Circuit(4), ParamBinding::Circuit(5)]
        );
        assert_eq!(net.nodes()[1].circuit_params(), vec![3, 4, 5]);
        // The CNOT has no parameters.
        assert!(net.nodes()[3].bindings.is_empty());
        // The final constant U3 binds constants only.
        assert!(matches!(net.nodes()[4].bindings[0], ParamBinding::Constant(v) if v == 0.1));
        assert!(net.nodes()[4].circuit_params().is_empty());
    }

    #[test]
    fn node_geometry() {
        let net = TensorNetwork::from_circuit(&sample_circuit());
        assert_eq!(net.nodes()[3].qudits, vec![0, 1]);
        assert_eq!(net.dim_of(&[0, 1]), 4);
        assert_eq!(net.nodes()[3].time, 3);
    }

    #[test]
    fn incremental_extension_matches_from_circuit() {
        // Extending a lowered network in place must produce exactly the lowering of the
        // extended circuit (the recompile-on-expansion invariant).
        let mut circ = QuditCircuit::qubits(2);
        let u3 = circ.cache_operation(gates::u3()).unwrap();
        circ.append_ref(u3, vec![0]).unwrap();
        circ.append_ref(u3, vec![1]).unwrap();
        let mut net = TensorNetwork::from_circuit(&circ);

        let cx = gates::cnot();
        let offset = net.push_parameterized(&gates::u3(), vec![0]);
        assert_eq!(offset, 6);
        net.push_constant(&cx, vec![0, 1], &[]);

        let cx_ref = circ.cache_operation(cx).unwrap();
        circ.append_ref(u3, vec![0]).unwrap();
        circ.append_ref_constant(cx_ref, vec![0, 1], vec![]).unwrap();
        let expect = TensorNetwork::from_circuit(&circ);

        assert_eq!(net.num_params(), expect.num_params());
        assert_eq!(net.nodes().len(), expect.nodes().len());
        assert_eq!(net.expressions().len(), expect.expressions().len());
        for (a, b) in net.nodes().iter().zip(expect.nodes()) {
            assert_eq!(a.expr_index, b.expr_index);
            assert_eq!(a.qudits, b.qudits);
            assert_eq!(a.time, b.time);
            assert_eq!(a.bindings, b.bindings);
        }
    }

    #[test]
    #[should_panic(expected = "radix must match")]
    fn incremental_extension_validates_radix() {
        let c = builders::pqc_qutrit_ladder(2, 1).unwrap();
        let mut net = TensorNetwork::from_circuit(&c);
        net.push_parameterized(&gates::u3(), vec![0]);
    }

    #[test]
    fn mixed_radix_dimensions() {
        let c = builders::pqc_qutrit_ladder(2, 1).unwrap();
        let net = TensorNetwork::from_circuit(&c);
        assert_eq!(net.dim(), 9);
        assert_eq!(net.dim_of(&[0]), 3);
        assert!(net.num_params() > 0);
    }
}
