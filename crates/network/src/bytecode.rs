//! The TNVM bytecode (Table II of the paper) and its generation from a contraction tree.
//!
//! The ahead-of-time compiler serializes the contraction tree into a two-section bytecode:
//! a *constant* section executed once at TNVM initialization (sub-trees with no parameter
//! dependence) and a *dynamic* section executed on every evaluation. Instructions operate
//! on abstract, labeled buffers; each instruction is annotated with the set of circuit
//! parameters its output depends on so the TNVM can specialize it for forward-mode
//! differentiation.

use std::collections::HashMap;

use qudit_qgl::{transform, ComplexExpr, UnitaryExpression};

use crate::network::{GateNode, ParamBinding, TensorNetwork};
use crate::path::{find_plan, ContractionTree};

/// An abstract buffer label.
pub type BufId = usize;

/// Names one instruction of a two-section program: the section it lives in and its
/// index within that section. Every [`BytecodeError`] that concerns an instruction
/// carries one, so a rejected program pinpoints the offending instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrRef {
    /// `true` for the constant (init-time) section, `false` for the dynamic section.
    pub constant: bool,
    /// Index within the section.
    pub index: usize,
}

impl InstrRef {
    /// A reference into the constant section.
    pub fn constant(index: usize) -> InstrRef {
        InstrRef { constant: true, index }
    }

    /// A reference into the dynamic section.
    pub fn dynamic(index: usize) -> InstrRef {
        InstrRef { constant: false, index }
    }
}

impl std::fmt::Display for InstrRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let section = if self.constant { "constant" } else { "dynamic" };
        write!(f, "{section}[{}]", self.index)
    }
}

/// Typed errors for malformed TNVM bytecode.
///
/// Produced by [`TnvmProgram::validate`] and the fallible compilation entry points
/// ([`try_compile_network`] / [`try_compile_network_with_tree`]); surfaced through
/// `qudit_compile::error::CompileError` when the pipeline's verifier rejects a
/// program. Each instruction-level variant names the offending instruction via
/// [`InstrRef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BytecodeError {
    /// An instruction references a buffer outside the buffer table.
    BufferOutOfRange {
        /// The offending instruction.
        at: InstrRef,
        /// The out-of-range buffer label.
        buf: BufId,
    },
    /// An instruction reads a buffer before any instruction wrote it.
    UseBeforeWrite {
        /// The offending instruction.
        at: InstrRef,
        /// The buffer read too early.
        buf: BufId,
    },
    /// Two instructions write the same buffer (the bytecode is single-assignment).
    DoubleWrite {
        /// The second writer.
        at: InstrRef,
        /// The buffer written twice.
        buf: BufId,
    },
    /// The program's output buffer is never written.
    OutputNeverWritten {
        /// The declared output buffer.
        output: BufId,
    },
    /// Codegen could not build an identity-padding expression (an internal
    /// inconsistency in the network's radices).
    InvalidIdentity {
        /// What went wrong.
        detail: String,
    },
    /// Codegen asked to reorder a value onto a support that does not contain one of
    /// its qudits (an internal contraction-tree inconsistency).
    SupportMismatch {
        /// The qudit missing from the target support.
        qudit: usize,
    },
    /// The program carries an [`ArenaLayout`] that is structurally unsound (wrong
    /// table length, a buffer range past the arena end, or an instruction whose
    /// output range overlaps one of its input ranges).
    BadLayout {
        /// What is wrong with the layout.
        detail: String,
    },
}

impl std::fmt::Display for BytecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BytecodeError::BufferOutOfRange { at, buf } => {
                write!(f, "instruction {at} references out-of-range buffer {buf}")
            }
            BytecodeError::UseBeforeWrite { at, buf } => {
                write!(f, "instruction {at} reads buffer {buf} before it is written")
            }
            BytecodeError::DoubleWrite { at, buf } => {
                write!(f, "instruction {at} writes buffer {buf} more than once")
            }
            BytecodeError::OutputNeverWritten { output } => {
                write!(f, "output buffer {output} is never written")
            }
            BytecodeError::InvalidIdentity { detail } => {
                write!(f, "could not build identity-padding expression: {detail}")
            }
            BytecodeError::SupportMismatch { qudit } => {
                write!(f, "expansion target omits qudit {qudit} of the current support")
            }
            BytecodeError::BadLayout { detail } => {
                write!(f, "unsound arena layout: {detail}")
            }
        }
    }
}

impl std::error::Error for BytecodeError {}

/// A TNVM bytecode instruction (Table II).
#[derive(Debug, Clone, PartialEq)]
pub enum TnvmOp {
    /// Evaluates a compiled QGL expression, writing the resulting matrix to `out`.
    Write {
        /// Index into the program's expression table.
        expr_index: usize,
        /// How each of the expression's parameters binds to circuit parameters.
        bindings: Vec<ParamBinding>,
        /// Destination buffer.
        out: BufId,
    },
    /// Matrix multiplication `out = a · b`.
    Matmul {
        /// Left operand buffer.
        a: BufId,
        /// Right operand buffer.
        b: BufId,
        /// Destination buffer.
        out: BufId,
    },
    /// Kronecker product `out = a ⊗ b`.
    Kron {
        /// Left operand buffer.
        a: BufId,
        /// Right operand buffer.
        b: BufId,
        /// Destination buffer.
        out: BufId,
    },
    /// Element-wise (Hadamard) product `out = a ∘ b`.
    Hadamard {
        /// Left operand buffer.
        a: BufId,
        /// Right operand buffer.
        b: BufId,
        /// Destination buffer.
        out: BufId,
    },
    /// Fused reshape–permute–reshape: reinterprets `input` with `shape`, permutes the
    /// axes by `perm`, and reshapes back to a matrix in `out`.
    Transpose {
        /// Source buffer.
        input: BufId,
        /// Full multi-index shape of the source (row axes followed by column axes).
        shape: Vec<usize>,
        /// Axis permutation.
        perm: Vec<usize>,
        /// Destination buffer.
        out: BufId,
    },
}

impl TnvmOp {
    /// The destination buffer of this instruction.
    pub fn out(&self) -> BufId {
        match self {
            TnvmOp::Write { out, .. }
            | TnvmOp::Matmul { out, .. }
            | TnvmOp::Kron { out, .. }
            | TnvmOp::Hadamard { out, .. }
            | TnvmOp::Transpose { out, .. } => *out,
        }
    }

    /// The input buffers of this instruction.
    pub fn inputs(&self) -> Vec<BufId> {
        match self {
            TnvmOp::Write { .. } => vec![],
            TnvmOp::Matmul { a, b, .. }
            | TnvmOp::Kron { a, b, .. }
            | TnvmOp::Hadamard { a, b, .. } => vec![*a, *b],
            TnvmOp::Transpose { input, .. } => vec![*input],
        }
    }
}

/// Shape and dependence metadata for a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferInfo {
    /// Number of matrix rows.
    pub rows: usize,
    /// Number of matrix columns.
    pub cols: usize,
    /// The circuit parameters the buffer depends on (sorted, deduplicated).
    pub params: Vec<usize>,
}

impl BufferInfo {
    /// Number of complex elements the buffer holds.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An explicit placement of every buffer in the TNVM value arena.
///
/// By default the VM lays buffers out back to back (prefix sums over
/// [`BufferInfo::len`]); an optimizer may instead attach a coalesced layout that
/// assigns non-interfering buffers to shared offsets, shrinking the arena. The
/// layout is *advisory placement, mandatory safety*: [`TnvmProgram::validate`]
/// rejects layouts that are structurally unsound (out-of-range or input/output
/// overlap within one instruction), and the `qudit-analyze` verifier additionally
/// proves no two simultaneously-live buffers share elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaLayout {
    /// Arena offset (in complex elements) of each buffer, indexed by [`BufId`].
    pub offsets: Vec<usize>,
    /// Total arena length in complex elements.
    pub arena_len: usize,
}

impl ArenaLayout {
    /// The default back-to-back layout for `buffers`: prefix sums of buffer lengths.
    pub fn dense(buffers: &[BufferInfo]) -> ArenaLayout {
        let mut offsets = Vec::with_capacity(buffers.len());
        let mut total = 0usize;
        for info in buffers {
            offsets.push(total);
            total += info.len();
        }
        ArenaLayout { offsets, arena_len: total }
    }
}

/// The compiled bytecode program for one parameterized quantum circuit.
#[derive(Debug, Clone)]
pub struct TnvmProgram {
    /// Unique expressions referenced by WRITE instructions (gate definitions plus any
    /// identity-padding and fusion-generated expressions).
    pub exprs: Vec<UnitaryExpression>,
    /// Buffer metadata, indexed by [`BufId`].
    pub buffers: Vec<BufferInfo>,
    /// Instructions executed once at TNVM initialization.
    pub constant_ops: Vec<TnvmOp>,
    /// Instructions executed on every evaluation call.
    pub dynamic_ops: Vec<TnvmOp>,
    /// The buffer holding the circuit unitary after execution.
    pub output: BufId,
    /// Number of circuit parameters.
    pub num_params: usize,
    /// The circuit's qudit radices.
    pub radices: Vec<usize>,
    /// Number of TRANSPOSE instructions eliminated by fusing them into leaf expressions.
    pub fused_transposes: usize,
    /// Optional coalesced arena placement (see [`ArenaLayout`]). `None` means the
    /// default back-to-back layout.
    pub layout: Option<ArenaLayout>,
}

impl TnvmProgram {
    /// The Hilbert-space dimension of the circuit.
    pub fn dim(&self) -> usize {
        self.radices.iter().product()
    }

    /// Number of complex elements in the value arena the TNVM allocates (excluding
    /// gradient storage): the coalesced [`ArenaLayout`] length when one is attached,
    /// otherwise the sum of all buffer lengths.
    pub fn arena_elements(&self) -> usize {
        match &self.layout {
            Some(layout) => layout.arena_len,
            None => self.buffers.iter().map(BufferInfo::len).sum(),
        }
    }

    /// Total instruction count across both sections.
    pub fn len(&self) -> usize {
        self.constant_ops.len() + self.dynamic_ops.len()
    }

    /// `true` if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks structural invariants: every instruction writes to a distinct buffer, reads
    /// only buffers written earlier (constant section first), and the output buffer is
    /// written.
    ///
    /// This is the *dataflow* check only — the full per-instruction shape/arity/radix
    /// typing lives in the `qudit-analyze` crate's program verifier, which builds on
    /// this one.
    ///
    /// # Errors
    ///
    /// Returns the first [`BytecodeError`] violated, naming the offending instruction.
    pub fn validate(&self) -> Result<(), BytecodeError> {
        if self.output >= self.buffers.len() {
            return Err(BytecodeError::OutputNeverWritten { output: self.output });
        }
        let mut written = vec![false; self.buffers.len()];
        let sections = [(true, &self.constant_ops), (false, &self.dynamic_ops)];
        for (constant, ops) in sections {
            for (index, op) in ops.iter().enumerate() {
                let at = InstrRef { constant, index };
                for input in op.inputs() {
                    if input >= self.buffers.len() {
                        return Err(BytecodeError::BufferOutOfRange { at, buf: input });
                    }
                    if !written[input] {
                        return Err(BytecodeError::UseBeforeWrite { at, buf: input });
                    }
                }
                let out = op.out();
                if out >= self.buffers.len() {
                    return Err(BytecodeError::BufferOutOfRange { at, buf: out });
                }
                if written[out] {
                    return Err(BytecodeError::DoubleWrite { at, buf: out });
                }
                written[out] = true;
            }
        }
        if !written[self.output] {
            return Err(BytecodeError::OutputNeverWritten { output: self.output });
        }
        self.validate_layout()
    }

    /// Structural soundness of an attached [`ArenaLayout`], if any: the offset table
    /// covers every buffer, every buffer range fits inside the arena, and no
    /// instruction's output range overlaps one of its input ranges (the VM's
    /// disjoint-slice split requires this; inputs may alias each other freely).
    ///
    /// Liveness-level safety — no two simultaneously-live buffers sharing elements —
    /// is beyond a structural walk and lives in the `qudit-analyze` verifier.
    fn validate_layout(&self) -> Result<(), BytecodeError> {
        let Some(layout) = &self.layout else { return Ok(()) };
        if layout.offsets.len() != self.buffers.len() {
            return Err(BytecodeError::BadLayout {
                detail: format!(
                    "offset table covers {} buffers but the program has {}",
                    layout.offsets.len(),
                    self.buffers.len()
                ),
            });
        }
        for (buf, info) in self.buffers.iter().enumerate() {
            let end = layout.offsets[buf] + info.len();
            if end > layout.arena_len {
                return Err(BytecodeError::BadLayout {
                    detail: format!(
                        "buffer {buf} occupies {}..{end} past the arena end {}",
                        layout.offsets[buf], layout.arena_len
                    ),
                });
            }
        }
        let range = |buf: BufId| {
            let start = layout.offsets[buf];
            (start, start + self.buffers[buf].len())
        };
        for (constant, ops) in [(true, &self.constant_ops), (false, &self.dynamic_ops)] {
            for (index, op) in ops.iter().enumerate() {
                let (out_start, out_end) = range(op.out());
                for input in op.inputs() {
                    let (in_start, in_end) = range(input);
                    if in_start < out_end && out_start < in_end {
                        let at = InstrRef { constant, index };
                        return Err(BytecodeError::BadLayout {
                            detail: format!(
                                "instruction {at} output buffer {} overlaps input buffer {input}",
                                op.out()
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Compiles a tensor network into bytecode using the default contraction-plan strategy.
///
/// Codegen output over a well-formed [`TensorNetwork`] is valid by construction, so
/// this infallible wrapper suits the hot paths (frontier workers, instantiation). Use
/// [`try_compile_network`] when compiling untrusted or externally supplied structures
/// and a typed rejection is preferable to a panic.
///
/// # Panics
///
/// Panics if codegen produces malformed bytecode (an internal compiler bug).
pub fn compile_network(network: &TensorNetwork) -> TnvmProgram {
    try_compile_network(network).expect("contraction-tree codegen emits well-formed bytecode")
}

/// Compiles a tensor network with an explicit contraction tree (exposed so benchmarks can
/// compare contraction strategies).
///
/// # Panics
///
/// Panics if codegen produces malformed bytecode (an internal compiler bug); see
/// [`try_compile_network_with_tree`] for the fallible equivalent.
pub fn compile_network_with_tree(
    network: &TensorNetwork,
    tree: Option<&ContractionTree>,
) -> TnvmProgram {
    try_compile_network_with_tree(network, tree)
        .expect("contraction-tree codegen emits well-formed bytecode")
}

/// Fallible [`compile_network`]: compiles a tensor network into bytecode, returning a
/// typed [`BytecodeError`] instead of panicking when codegen encounters an internal
/// inconsistency or emits a program that fails [`TnvmProgram::validate`].
///
/// # Errors
///
/// Returns the first [`BytecodeError`] encountered during emission or validation.
pub fn try_compile_network(network: &TensorNetwork) -> Result<TnvmProgram, BytecodeError> {
    let plan = find_plan(network);
    try_compile_network_with_tree(network, plan.tree.as_ref())
}

/// Fallible [`compile_network_with_tree`].
///
/// # Errors
///
/// Returns the first [`BytecodeError`] encountered during emission or validation.
pub fn try_compile_network_with_tree(
    network: &TensorNetwork,
    tree: Option<&ContractionTree>,
) -> Result<TnvmProgram, BytecodeError> {
    let mut gen = Codegen::new(network);
    let root = tree.map(|t| gen.emit(t)).transpose()?;
    let output = gen.finish(root)?;
    let mut program = TnvmProgram {
        exprs: gen.exprs,
        buffers: gen.buffers,
        constant_ops: gen.constant_ops,
        dynamic_ops: gen.dynamic_ops,
        output,
        num_params: network.num_params(),
        radices: network.radices().to_vec(),
        fused_transposes: 0,
        layout: None,
    };
    fuse_leaf_transposes(&mut program);
    program.validate()?;
    Ok(program)
}

/// A value produced during code generation: its buffer, axis order, and constness.
struct Emitted {
    buf: BufId,
    qudits: Vec<usize>,
    constant: bool,
}

struct Codegen<'a> {
    network: &'a TensorNetwork,
    exprs: Vec<UnitaryExpression>,
    expr_index: HashMap<String, usize>,
    buffers: Vec<BufferInfo>,
    constant_ops: Vec<TnvmOp>,
    dynamic_ops: Vec<TnvmOp>,
}

impl<'a> Codegen<'a> {
    fn new(network: &'a TensorNetwork) -> Self {
        Codegen {
            network,
            exprs: Vec::new(),
            expr_index: HashMap::new(),
            buffers: Vec::new(),
            constant_ops: Vec::new(),
            dynamic_ops: Vec::new(),
        }
    }

    fn intern_expr(&mut self, expr: &UnitaryExpression) -> usize {
        let key = expr.canonical_key();
        if let Some(&idx) = self.expr_index.get(&key) {
            return idx;
        }
        self.exprs.push(expr.clone());
        let idx = self.exprs.len() - 1;
        self.expr_index.insert(key, idx);
        idx
    }

    fn new_buffer(&mut self, rows: usize, cols: usize, params: Vec<usize>) -> BufId {
        self.buffers.push(BufferInfo { rows, cols, params });
        self.buffers.len() - 1
    }

    fn push_op(&mut self, op: TnvmOp, constant: bool) {
        if constant {
            self.constant_ops.push(op);
        } else {
            self.dynamic_ops.push(op);
        }
    }

    fn identity_expr(&mut self, qudits: &[usize]) -> Result<usize, BytecodeError> {
        let radices: Vec<usize> = qudits.iter().map(|&q| self.network.radices()[q]).collect();
        let dim: usize = radices.iter().product();
        let elements: Vec<Vec<ComplexExpr>> = (0..dim)
            .map(|r| {
                (0..dim)
                    .map(|c| if r == c { ComplexExpr::one() } else { ComplexExpr::zero() })
                    .collect()
            })
            .collect();
        let expr =
            UnitaryExpression::from_elements(format!("I{dim}"), radices, Vec::new(), elements)
                .map_err(|e| BytecodeError::InvalidIdentity { detail: e.to_string() })?;
        Ok(self.intern_expr(&expr))
    }

    fn emit_leaf(&mut self, node: &GateNode) -> Emitted {
        let expr = &self.network.expressions()[node.expr_index];
        let expr_index = self.intern_expr(expr);
        let dim = self.network.dim_of(&node.qudits);
        let params = node.circuit_params();
        let constant = params.is_empty();
        let out = self.new_buffer(dim, dim, params);
        self.push_op(TnvmOp::Write { expr_index, bindings: node.bindings.clone(), out }, constant);
        Emitted { buf: out, qudits: node.qudits.clone(), constant }
    }

    fn emit(&mut self, tree: &ContractionTree) -> Result<Emitted, BytecodeError> {
        match tree {
            ContractionTree::Leaf(i) => {
                let node = self.network.nodes()[*i].clone();
                Ok(self.emit_leaf(&node))
            }
            ContractionTree::Merge { earlier, later } => {
                let a = self.emit(earlier)?;
                let b = self.emit(later)?;
                self.emit_merge(a, b)
            }
        }
    }

    fn emit_merge(&mut self, earlier: Emitted, later: Emitted) -> Result<Emitted, BytecodeError> {
        let disjoint = earlier.qudits.iter().all(|q| !later.qudits.contains(q));
        if disjoint {
            // (A on S_A) ⊗ (B on S_B): axis order is the concatenation.
            let mut qudits = earlier.qudits.clone();
            qudits.extend_from_slice(&later.qudits);
            let dim = self.network.dim_of(&qudits);
            let params =
                union_params(&self.buffers[earlier.buf].params, &self.buffers[later.buf].params);
            let constant = earlier.constant && later.constant;
            let out = self.new_buffer(dim, dim, params);
            self.push_op(TnvmOp::Kron { a: earlier.buf, b: later.buf, out }, constant);
            return Ok(Emitted { buf: out, qudits, constant });
        }
        // Overlapping supports: expand both to the sorted union and multiply
        // (later · earlier).
        let mut union: Vec<usize> =
            earlier.qudits.iter().chain(later.qudits.iter()).copied().collect();
        union.sort_unstable();
        union.dedup();
        let a = self.expand(earlier, &union)?;
        let b = self.expand(later, &union)?;
        let dim = self.network.dim_of(&union);
        let params = union_params(&self.buffers[a.buf].params, &self.buffers[b.buf].params);
        let constant = a.constant && b.constant;
        let out = self.new_buffer(dim, dim, params);
        self.push_op(TnvmOp::Matmul { a: b.buf, b: a.buf, out }, constant);
        Ok(Emitted { buf: out, qudits: union, constant })
    }

    /// Expands an operator to a target (sorted) qudit support: pads missing wires with an
    /// identity via KRON, then reorders the axes via TRANSPOSE if necessary.
    fn expand(&mut self, value: Emitted, target: &[usize]) -> Result<Emitted, BytecodeError> {
        let mut current = value;
        let extra: Vec<usize> =
            target.iter().copied().filter(|q| !current.qudits.contains(q)).collect();
        if !extra.is_empty() {
            let id_index = self.identity_expr(&extra)?;
            let id_dim = self.network.dim_of(&extra);
            let id_buf = self.new_buffer(id_dim, id_dim, Vec::new());
            self.push_op(
                TnvmOp::Write { expr_index: id_index, bindings: Vec::new(), out: id_buf },
                true,
            );
            let mut qudits = current.qudits.clone();
            qudits.extend_from_slice(&extra);
            let dim = self.network.dim_of(&qudits);
            let params = self.buffers[current.buf].params.clone();
            let constant = current.constant;
            let out = self.new_buffer(dim, dim, params);
            self.push_op(TnvmOp::Kron { a: current.buf, b: id_buf, out }, constant);
            current = Emitted { buf: out, qudits, constant };
        }
        if current.qudits != target {
            let k = current.qudits.len();
            let row_dims: Vec<usize> =
                current.qudits.iter().map(|&q| self.network.radices()[q]).collect();
            let mut shape = row_dims.clone();
            shape.extend_from_slice(&row_dims);
            let mut perm = Vec::with_capacity(2 * k);
            for &q in target {
                let pos = current
                    .qudits
                    .iter()
                    .position(|&c| c == q)
                    .ok_or(BytecodeError::SupportMismatch { qudit: q })?;
                perm.push(pos);
            }
            for i in 0..k {
                perm.push(perm[i] + k);
            }
            let dim = self.network.dim_of(target);
            let params = self.buffers[current.buf].params.clone();
            let constant = current.constant;
            let out = self.new_buffer(dim, dim, params);
            self.push_op(TnvmOp::Transpose { input: current.buf, shape, perm, out }, constant);
            current = Emitted { buf: out, qudits: target.to_vec(), constant };
        }
        Ok(current)
    }

    /// Finalizes the program: pads the root operator to the full circuit width, reorders
    /// it to wire order, and returns the output buffer. An empty circuit produces the
    /// identity.
    fn finish(&mut self, root: Option<Emitted>) -> Result<BufId, BytecodeError> {
        let all: Vec<usize> = (0..self.network.num_qudits()).collect();
        let full = match root {
            Some(r) => self.expand(r, &all)?,
            None => {
                let id_index = self.identity_expr(&all)?;
                let dim = self.network.dim();
                let out = self.new_buffer(dim, dim, Vec::new());
                self.push_op(
                    TnvmOp::Write { expr_index: id_index, bindings: Vec::new(), out },
                    true,
                );
                Emitted { buf: out, qudits: all.clone(), constant: true }
            }
        };
        Ok(full.buf)
    }
}

fn union_params(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The contraction-tree fusion pass described in Sec. IV-A of the paper: a TRANSPOSE
/// applied directly to a leaf WRITE is pushed into the leaf's symbolic expression, so the
/// compiled code produces the already-transposed matrix and the runtime instruction
/// disappears.
fn fuse_leaf_transposes(program: &mut TnvmProgram) {
    // Usage count of every buffer as an instruction input.
    let mut uses = vec![0usize; program.buffers.len()];
    for op in program.constant_ops.iter().chain(program.dynamic_ops.iter()) {
        for input in op.inputs() {
            uses[input] += 1;
        }
    }
    // Producer map: buffer -> (section, index) for WRITE instructions only.
    let mut writers: HashMap<BufId, (bool, usize)> = HashMap::new();
    for (idx, op) in program.constant_ops.iter().enumerate() {
        if let TnvmOp::Write { out, .. } = op {
            writers.insert(*out, (true, idx));
        }
    }
    for (idx, op) in program.dynamic_ops.iter().enumerate() {
        if let TnvmOp::Write { out, .. } = op {
            writers.insert(*out, (false, idx));
        }
    }

    let mut fused = 0usize;
    for section_is_const in [true, false] {
        let section_len =
            if section_is_const { program.constant_ops.len() } else { program.dynamic_ops.len() };
        let mut removals: Vec<usize> = Vec::new();
        for idx in 0..section_len {
            let op = if section_is_const {
                program.constant_ops[idx].clone()
            } else {
                program.dynamic_ops[idx].clone()
            };
            let TnvmOp::Transpose { input, shape, perm, out } = op else { continue };
            let Some(&(writer_const, writer_idx)) = writers.get(&input) else { continue };
            if uses[input] != 1 {
                continue;
            }
            // Only wire-permutation transposes (row and column permuted identically) can
            // be pushed into the expression.
            let k = shape.len() / 2;
            if perm.len() != 2 * k || (0..k).any(|i| perm[k + i] != perm[i] + k) {
                continue;
            }
            let wire_perm = &perm[..k];
            let (expr_index, bindings) = {
                let writer_op = if writer_const {
                    &program.constant_ops[writer_idx]
                } else {
                    &program.dynamic_ops[writer_idx]
                };
                match writer_op {
                    TnvmOp::Write { expr_index, bindings, .. } => (*expr_index, bindings.clone()),
                    _ => continue,
                }
            };
            let permuted = match transform::permute_qudits(&program.exprs[expr_index], wire_perm) {
                Ok(p) => p,
                Err(_) => continue,
            };
            // Intern the permuted expression.
            let new_index = match program
                .exprs
                .iter()
                .position(|e| e.canonical_key() == permuted.canonical_key())
            {
                Some(i) => i,
                None => {
                    program.exprs.push(permuted);
                    program.exprs.len() - 1
                }
            };
            // Rewrite the WRITE to target the transpose's output directly.
            let new_write = TnvmOp::Write { expr_index: new_index, bindings, out };
            if writer_const {
                program.constant_ops[writer_idx] = new_write;
            } else {
                program.dynamic_ops[writer_idx] = new_write;
            }
            writers.remove(&input);
            writers.insert(out, (writer_const, writer_idx));
            removals.push(idx);
            fused += 1;
        }
        // Remove the fused transposes from this section (descending order keeps indices
        // valid). Writer indices recorded above are only reused within the same pass and
        // writes always precede their transposes, so removals after them are safe.
        for &idx in removals.iter().rev() {
            if section_is_const {
                program.constant_ops.remove(idx);
            } else {
                program.dynamic_ops.remove(idx);
            }
        }
        // Rebuild writer indices after removals for the next section iteration.
        writers.clear();
        for (idx, op) in program.constant_ops.iter().enumerate() {
            if let TnvmOp::Write { out, .. } = op {
                writers.insert(*out, (true, idx));
            }
        }
        for (idx, op) in program.dynamic_ops.iter().enumerate() {
            if let TnvmOp::Write { out, .. } = op {
                writers.insert(*out, (false, idx));
            }
        }
    }
    program.fused_transposes = fused;
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{builders, gates, QuditCircuit};

    fn program_for(circuit: &QuditCircuit) -> TnvmProgram {
        compile_network(&TensorNetwork::from_circuit(circuit))
    }

    #[test]
    fn empty_circuit_compiles_to_identity_write() {
        let p = program_for(&QuditCircuit::qubits(2));
        assert_eq!(p.dynamic_ops.len(), 0);
        assert_eq!(p.constant_ops.len(), 1);
        assert!(matches!(p.constant_ops[0], TnvmOp::Write { .. }));
        assert_eq!(p.buffers[p.output].rows, 4);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn bell_circuit_bytecode_structure() {
        let mut c = QuditCircuit::qubits(2);
        let h = c.cache_operation(gates::hadamard()).unwrap();
        let cx = c.cache_operation(gates::cnot()).unwrap();
        c.append_ref_constant(h, vec![0], vec![]).unwrap();
        c.append_ref_constant(cx, vec![0, 1], vec![]).unwrap();
        let p = program_for(&c);
        // Everything is constant: the dynamic section is empty.
        assert!(p.dynamic_ops.is_empty());
        assert!(!p.constant_ops.is_empty());
        assert_eq!(p.num_params, 0);
        assert_eq!(p.buffers[p.output].rows, 4);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn parameterized_ops_land_in_dynamic_section() {
        let c = builders::pqc_qubit_ladder(3, 1).unwrap();
        let p = program_for(&c);
        assert_eq!(p.num_params, c.num_params());
        // The CNOT write is constant; the U3 writes and every contraction touching them
        // are dynamic.
        assert!(!p.constant_ops.is_empty());
        assert!(!p.dynamic_ops.is_empty());
        let dynamic_writes =
            p.dynamic_ops.iter().filter(|o| matches!(o, TnvmOp::Write { .. })).count();
        assert_eq!(dynamic_writes, 5); // five U3 applications
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn buffer_params_propagate_through_contractions() {
        let c = builders::pqc_qubit_ladder(2, 1).unwrap();
        let p = program_for(&c);
        let out = &p.buffers[p.output];
        // The output depends on every circuit parameter.
        assert_eq!(out.params, (0..c.num_params()).collect::<Vec<_>>());
        assert_eq!(out.rows, 4);
        assert_eq!(out.cols, 4);
    }

    #[test]
    fn expression_table_is_deduplicated() {
        let c = builders::pqc_qubit_ladder(3, 2).unwrap();
        let p = program_for(&c);
        // U3 + CNOT (+ possibly identity paddings and fused variants), but nowhere near
        // one entry per operation.
        assert!(p.exprs.len() <= 5, "expression table has {} entries", p.exprs.len());
    }

    #[test]
    fn arena_and_len_reporting() {
        let c = builders::pqc_qubit_ladder(3, 1).unwrap();
        let p = program_for(&c);
        assert!(p.arena_elements() > 0);
        assert!(!p.is_empty());
        assert_eq!(p.dim(), 8);
    }

    #[test]
    fn reversed_two_qubit_location_fuses_transpose_into_write() {
        // A CNOT applied to location [1, 0] needs its axes reordered to wire order; the
        // fusion pass should push that permutation into the symbolic expression.
        let mut c = QuditCircuit::qubits(2);
        let cx = c.cache_operation(gates::cnot()).unwrap();
        let rx = c.cache_operation(gates::rx()).unwrap();
        c.append_ref(rx, vec![0]).unwrap();
        c.append_ref_constant(cx, vec![1, 0], vec![]).unwrap();
        let p = program_for(&c);
        assert!(p.fused_transposes >= 1, "expected at least one fused transpose");
        assert!(
            !p.constant_ops
                .iter()
                .chain(p.dynamic_ops.iter())
                .any(|o| matches!(o, TnvmOp::Transpose { .. })),
            "leaf transpose should have been fused away"
        );
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_catches_corruption() {
        let c = builders::pqc_qubit_ladder(2, 1).unwrap();
        let mut p = program_for(&c);
        // Corrupt: make the first dynamic op read an unwritten buffer.
        let bogus = p.buffers.len();
        p.buffers.push(BufferInfo { rows: 2, cols: 2, params: vec![] });
        if let Some(TnvmOp::Write { out, .. }) = p.dynamic_ops.first_mut() {
            *out = bogus;
        }
        assert!(p.validate().is_err() || p.output != bogus);
    }

    #[test]
    fn op_inputs_and_out_accessors() {
        let w = TnvmOp::Write { expr_index: 0, bindings: vec![], out: 3 };
        assert_eq!(w.out(), 3);
        assert!(w.inputs().is_empty());
        let m = TnvmOp::Matmul { a: 1, b: 2, out: 4 };
        assert_eq!(m.inputs(), vec![1, 2]);
        let t = TnvmOp::Transpose { input: 5, shape: vec![2, 2], perm: vec![1, 0], out: 6 };
        assert_eq!(t.inputs(), vec![5]);
        let h = TnvmOp::Hadamard { a: 7, b: 8, out: 9 };
        assert_eq!(h.out(), 9);
    }

    #[test]
    fn qutrit_circuit_compiles() {
        let c = builders::pqc_qutrit_ladder(2, 1).unwrap();
        let p = program_for(&c);
        assert_eq!(p.dim(), 9);
        assert_eq!(p.buffers[p.output].rows, 9);
        assert_eq!(p.validate(), Ok(()));
    }
}
