//! # qudit-network
//!
//! The ahead-of-time (AOT) compiler of the OpenQudit reproduction: it lowers a
//! [`qudit_circuit::QuditCircuit`] into a tensor-network representation, solves the
//! contraction-ordering problem with a hybrid optimal/greedy strategy, materializes a
//! binary contraction tree (with trace absorption and transpose fusion into leaf
//! expressions), and serializes the result into the two-section TNVM bytecode of
//! Table II in the paper.
//!
//! ```
//! use qudit_circuit::builders;
//! use qudit_network::{compile_network, TensorNetwork};
//!
//! let circuit = builders::pqc_qubit_ladder(3, 2)?;
//! let network = TensorNetwork::from_circuit(&circuit);
//! let program = compile_network(&network);
//! assert_eq!(program.dim(), 8);
//! program.validate().expect("bytecode is well-formed");
//! # Ok::<(), qudit_circuit::CircuitError>(())
//! ```

pub mod bytecode;
pub mod network;
pub mod path;

pub use bytecode::{
    compile_network, compile_network_with_tree, try_compile_network, try_compile_network_with_tree,
    ArenaLayout, BufId, BufferInfo, BytecodeError, InstrRef, TnvmOp, TnvmProgram,
};
pub use network::{GateNode, ParamBinding, TensorNetwork};
pub use path::{
    find_plan, find_plan_with_threshold, ContractionPlan, ContractionTree, PlanKind,
    OPTIMAL_THRESHOLD,
};
