//! Criterion bench for Figures 6 and 7: single-start and multi-start numerical
//! instantiation of the Fig. 5 PQC workloads, OpenQudit (TNVM) vs the baseline engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use openqudit::prelude::*;
use qudit_bench::{
    fig5_workloads_small, reachable_targets, run_baseline_instantiation,
    run_openqudit_instantiation,
};

fn bench_instantiation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_fig7_instantiation");
    group.sample_size(10);
    for w in fig5_workloads_small() {
        let target = reachable_targets(&w.circuit, 1, 42).remove(0);
        for starts in [1usize, 8] {
            // Serial starts on both engines: this bench compares evaluation speed.
            let config = InstantiateConfig { starts, seed: 13, threads: 1, ..Default::default() };
            let cache = ExpressionCache::new();
            group.bench_with_input(
                BenchmarkId::new(format!("openqudit_{}start", starts), w.name),
                &w,
                |b, w| b.iter(|| run_openqudit_instantiation(&w.circuit, &target, &config, &cache)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("baseline_{}start", starts), w.name),
                &w,
                |b, w| b.iter(|| run_baseline_instantiation(&w.circuit, &target, &config)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_instantiation
}
criterion_main!(benches);
