//! Criterion bench for Sec. VI-C: TNVM gradient evaluation of the 3-qubit shallow
//! circuit at f32 vs f64 precision (paper reports a 1.27× advantage for f32).

use criterion::{criterion_group, criterion_main, Criterion};
use openqudit::network::{compile_network, TensorNetwork};
use openqudit::prelude::*;

fn bench_precision(c: &mut Criterion) {
    let circuit = openqudit::circuit::builders::pqc_qubit_ladder(3, 3).expect("valid builder");
    let program = compile_network(&TensorNetwork::from_circuit(&circuit));
    let cache = ExpressionCache::new();
    let p64: Vec<f64> = (0..circuit.num_params()).map(|k| 0.11 * k as f64).collect();
    let p32: Vec<f32> = p64.iter().map(|&x| x as f32).collect();

    let mut group = c.benchmark_group("fig_precision_gradient_eval");
    let mut vm64: Tnvm<f64> = Tnvm::new(&program, DiffMode::Gradient, &cache);
    group.bench_function("f64_gradient_eval", |b| b.iter(|| vm64.evaluate(&p64)));
    let mut vm32: Tnvm<f32> = Tnvm::new(&program, DiffMode::Gradient, &cache);
    group.bench_function("f32_gradient_eval", |b| b.iter(|| vm32.evaluate(&p32)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_precision
}
criterion_main!(benches);
