//! Criterion smoke bench for the synthesis pipeline: end-to-end compile time through
//! the pass pipeline for the constant-CNOT workload and a reachable two-qubit target,
//! with the expression cache shared across iterations (the steady-state a compiler
//! sees), plus the post-synthesis refinement pass on a deliberately over-deep
//! instantiated result.

use criterion::{criterion_group, criterion_main, Criterion};
use openqudit::prelude::*;
use qudit_bench::{padded_synthesis_result, synthesis_config, synthesis_workloads};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for workload in synthesis_workloads()
        .into_iter()
        .filter(|w| matches!(w.name, "2-qubit cnot" | "2-qubit reachable depth-2"))
    {
        let config = synthesis_config(&workload);
        let compiler = Compiler::with_cache(ExpressionCache::new()).default_passes();
        group.bench_function(workload.name, |b| {
            b.iter(|| {
                compiler
                    .compile(CompilationTask::new(workload.target.clone(), config.clone()))
                    .expect("benchmark workloads are valid")
            })
        });
    }
    group.finish();
}

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine");
    group.sample_size(10);
    // One over-deep two-qubit result, refined repeatedly against a warm cache: the
    // steady-state cost of the gate-deletion pass itself (every re-instantiation
    // reuses the shared compiled expressions).
    let cache = ExpressionCache::new();
    let (result, target) = padded_synthesis_result(&[2, 2], &[(0, 1)], 2, 2024, &cache);
    let config = RefineConfig::default();
    group.bench_function("2-qubit padded depth-3", |b| {
        b.iter(|| refine(&result, &target, &config, &cache).expect("refine succeeds"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_synthesis, bench_refine
}
criterion_main!(benches);
