//! Criterion smoke bench for the bottom-up synthesis engine: end-to-end search time
//! for the constant-CNOT workload and a reachable two-qubit target, with the
//! expression cache shared across iterations (the steady-state a compiler sees).

use criterion::{criterion_group, criterion_main, Criterion};
use openqudit::prelude::*;
use qudit_bench::{synthesis_config, synthesis_workloads};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for workload in synthesis_workloads()
        .into_iter()
        .filter(|w| matches!(w.name, "2-qubit cnot" | "2-qubit reachable depth-2"))
    {
        let config = synthesis_config(&workload);
        let cache = ExpressionCache::new();
        group.bench_function(workload.name, |b| {
            b.iter(|| {
                synthesize_with_cache(&workload.target, &config, &cache)
                    .expect("benchmark workloads are valid")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_synthesis
}
criterion_main!(benches);
