//! Criterion bench for the e-graph pass (Sec. III-C / Table I): simplification time per
//! benchmark gate, plus an ablation of the expression-compilation pipeline with the pass
//! disabled.

use criterion::{criterion_group, criterion_main, Criterion};
use openqudit::circuit::gates;
use openqudit::qvm::{CompileOptions, CompiledExpression, DiffMode};

fn bench_egraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("egraph_simplification");
    group.sample_size(10);
    for (name, gate) in [("U3", gates::u3()), ("RZZ", gates::rzz()), ("P3", gates::qutrit_phase())]
    {
        group.bench_function(format!("compile_with_simplification_{name}"), |b| {
            b.iter(|| CompiledExpression::compile(&gate, &CompileOptions::with_gradient()))
        });
        group.bench_function(format!("compile_without_simplification_{name}"), |b| {
            b.iter(|| {
                CompiledExpression::compile(
                    &gate,
                    &CompileOptions { diff_mode: DiffMode::Gradient, skip_simplification: true },
                )
            })
        });
    }
    // Evaluation-speed ablation: does the simplified program run faster?
    let gate = gates::u3();
    let params = [0.3f64, -1.0, 2.1];
    let with = CompiledExpression::compile(&gate, &CompileOptions::with_gradient());
    let without = CompiledExpression::compile(
        &gate,
        &CompileOptions { diff_mode: DiffMode::Gradient, skip_simplification: true },
    );
    let mut scratch = vec![0.0f64; with.scratch_len().max(without.scratch_len())];
    let mut out = vec![openqudit::tensor::C64::zero(); 16];
    group.bench_function("u3_gradient_eval_simplified", |b| {
        b.iter(|| with.gradient_program().expect("gradient").run(&params, &mut scratch, &mut out))
    });
    group.bench_function("u3_gradient_eval_unsimplified", |b| {
        b.iter(|| {
            without.gradient_program().expect("gradient").run(&params, &mut scratch, &mut out)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_egraph
}
criterion_main!(benches);
