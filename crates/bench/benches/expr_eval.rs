//! Criterion bench for the Sec. VII-A observation: a compiled U3 expression evaluation is
//! orders of magnitude cheaper than dispatching through a symbolic tree walk or a
//! baseline gate object allocating fresh matrices.

use criterion::{criterion_group, criterion_main, Criterion};
use openqudit::baseline::{BaselineGate, U3Gate};
use openqudit::circuit::gates;
use openqudit::prelude::*;

fn bench_expr_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("u3_evaluation");
    let expr = gates::u3();
    let compiled = CompiledExpression::compile(&expr, &CompileOptions::with_gradient());
    let params = [0.4f64, 1.1, -0.7];
    let mut scratch = vec![0.0f64; compiled.scratch_len()];
    let mut out = vec![openqudit::tensor::C64::zero(); 4 * (1 + 3)];

    group.bench_function("compiled_unitary", |b| {
        b.iter(|| compiled.unitary_program().run(&params, &mut scratch, &mut out))
    });
    group.bench_function("compiled_unitary_and_gradient", |b| {
        b.iter(|| {
            compiled.gradient_program().expect("compiled with gradient").run(
                &params,
                &mut scratch,
                &mut out,
            )
        })
    });
    group.bench_function("symbolic_tree_walk", |b| {
        b.iter(|| expr.to_matrix::<f64>(&params).expect("valid parameters"))
    });
    group.bench_function("baseline_gate_object", |b| {
        b.iter(|| {
            let g = U3Gate;
            (g.unitary(&params), g.gradient(&params))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_expr_eval
}
criterion_main!(benches);
