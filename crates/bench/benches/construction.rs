//! Criterion bench for Figure 4: circuit-construction time (QFT and DTC) for the
//! OpenQudit cached-reference path vs the baseline per-append-check path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_bench::{
    build_dtc_baseline, build_dtc_openqudit, build_qft_baseline, build_qft_openqudit,
};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_construction");
    group.sample_size(10);
    for &n in &[8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("qft_openqudit", n), &n, |b, &n| {
            b.iter(|| build_qft_openqudit(n))
        });
        group.bench_with_input(BenchmarkId::new("qft_baseline", n), &n, |b, &n| {
            b.iter(|| build_qft_baseline(n))
        });
        group.bench_with_input(BenchmarkId::new("dtc_openqudit", n), &n, |b, &n| {
            b.iter(|| build_dtc_openqudit(n))
        });
        group.bench_with_input(BenchmarkId::new("dtc_baseline", n), &n, |b, &n| {
            b.iter(|| build_dtc_baseline(n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_construction
}
criterion_main!(benches);
