//! Regenerates the Sec. III-C observations: how much the e-graph pass (with the Table-I
//! cost model) reduces the count of distinct trigonometric operations in the benchmark
//! gates' unitary+gradient expression batches, and the U2 CSE example.
//!
//! Run with `cargo run --release -p qudit-bench --bin report_simplification`.

use openqudit::circuit::gates;
use openqudit::egraph::simplify::{simplify_batch_with, SimplifyConfig};
use openqudit::qgl::Expr;

fn batch_for(gate: &openqudit::qgl::UnitaryExpression) -> Vec<Expr> {
    let mut exprs = Vec::new();
    for row in gate.elements() {
        for el in row {
            exprs.push(el.re.clone());
            exprs.push(el.im.clone());
        }
    }
    for grad in gate.gradient() {
        for row in &grad {
            for el in row {
                exprs.push(el.re.clone());
                exprs.push(el.im.clone());
            }
        }
    }
    exprs
}

fn main() {
    println!("== Section III-C: e-graph simplification of gate + gradient expressions ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "gate", "trig before", "trig after", "nodes before", "nodes after", "iters"
    );
    for (name, gate) in [
        ("U3", gates::u3()),
        ("U2", gates::u2()),
        ("RX", gates::rx()),
        ("RZ", gates::rz()),
        ("RZZ", gates::rzz()),
        ("P3", gates::qutrit_phase()),
        ("QutritU", gates::qutrit_u()),
    ] {
        let batch = batch_for(&gate);
        let result = simplify_batch_with(&batch, &SimplifyConfig::default());
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12} {:>10}",
            name,
            result.trig_before,
            result.trig_after,
            result.nodes_before,
            result.nodes_after,
            result.report.map(|r| r.iterations).unwrap_or(0)
        );
    }

    // The U2 common-subexpression example from the paper.
    println!();
    println!("== U2 CSE example (paper Sec. III-C) ==");
    let (phi, lam) = (Expr::var("phi"), Expr::var("lam"));
    let roots = vec![
        Expr::cos(phi.clone()),
        Expr::sin(phi.clone()),
        Expr::cos(lam.clone()),
        Expr::sin(lam.clone()),
        Expr::cos(Expr::add(phi.clone(), lam.clone())),
        Expr::sin(Expr::add(phi, lam)),
    ];
    let result = simplify_batch_with(&roots, &SimplifyConfig::default());
    println!("distinct trig ops before: {}", result.trig_before);
    println!("distinct trig ops after : {} (e^(i(φ+λ)) reuses e^(iφ)·e^(iλ))", result.trig_after);
}
