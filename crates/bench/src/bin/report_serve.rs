//! Load generator and report for the `qudit-serve` compilation server: stands up
//! an in-process server, fires a deterministic request mix from concurrent client
//! threads (with deliberate duplicates, so request deduplication is exercised),
//! and emits a JSON report.
//!
//! Deterministic fields — the status histogram and each workload's synthesized
//! result (success, infidelity, block count) — are always emitted. Wall-clock
//! derived fields (`wall_seconds`, `throughput_rps`, `latency_median_ms`) and
//! race-dependent observations (`dedup_joined`, cache occupancy) are dropped
//! under `OPENQUDIT_SYNTH_OMIT_TIMING=1`, the workspace's single timing gate.
//!
//! Run with `cargo run --release -p qudit-bench --bin report_serve`.
//! `OPENQUDIT_SERVE_CLIENTS=<n>` sets the client thread count (default 4);
//! `OPENQUDIT_SERVE_REPEAT=<n>` how often each client fires each workload
//! (default 3).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use openqudit::serve::{ServeConfig, Server};

/// The request mix: a few distinct workloads, each fired by every client —
/// concurrent identical requests are the dedup path's bread and butter.
fn workloads() -> Vec<(&'static str, String)> {
    [("cnot", "CNOT", 7u64), ("cz", "CZ", 11), ("swap", "SWAP", 13)]
        .into_iter()
        .map(|(name, gate, seed)| {
            let body = format!(
                r#"{{"target": {{"gate": "{gate}"}}, "radices": [2, 2], "seed": {seed}, "omit_timings": true}}"#
            );
            (name, body)
        })
        .collect()
}

fn post_compile(addr: SocketAddr, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "POST /compile HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let (head, response_body) = raw.split_once("\r\n\r\n").expect("split");
    let status: u16 =
        head.lines().next().unwrap().split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, response_body.to_string())
}

/// Pulls a top-level scalar field out of a canonical single-line JSON body.
fn field(body: &str, key: &str) -> String {
    let start = body.find(&format!("\"{key}\":")).unwrap_or_else(|| panic!("no {key} in {body}"));
    let value = &body[start + key.len() + 3..];
    let end = value.find([',', '}']).unwrap_or(value.len());
    value[..end].to_string()
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default).max(1)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn main() {
    let clients = env_usize("OPENQUDIT_SERVE_CLIENTS", 4);
    let repeat = env_usize("OPENQUDIT_SERVE_REPEAT", 3);
    let omit_timing = openqudit::trace::omit_timing();
    let server = Server::start(ServeConfig::default()).expect("server start");
    let addr = server.addr();
    let mix = workloads();

    // detlint: allow(wall-clock) — throughput/latency are the report's product,
    // emitted only outside the omit-timing gate
    let started = std::time::Instant::now();
    let results: Vec<(u16, f64)> = std::thread::scope(|scope| {
        let mix = &mix;
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(mix.len() * repeat);
                    for round in 0..repeat {
                        // Offset the workload order per client so the wire sees
                        // interleaved duplicates, not synchronized convoys.
                        for i in 0..mix.len() {
                            let (_, body) = &mix[(i + client + round) % mix.len()];
                            // detlint: allow(wall-clock) — per-request latency sample
                            let t0 = std::time::Instant::now();
                            let (status, _) = post_compile(addr, body);
                            out.push((status, t0.elapsed().as_secs_f64() * 1e3));
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    // One follow-up request per workload for the deterministic result fields
    // (the compile is cached/deduplicated by now, so this is cheap).
    let mut workload_rows: Vec<String> = Vec::new();
    for (name, body) in &mix {
        let (status, response) = post_compile(addr, body);
        assert_eq!(status, 200, "workload {name} failed: {response}");
        workload_rows.push(format!(
            "    {{\"name\": \"{name}\", \"success\": {}, \"infidelity\": {}, \"blocks\": {}}}",
            field(&response, "success"),
            field(&response, "infidelity"),
            response.matches('[').count().saturating_sub(2),
        ));
    }

    let total = results.len();
    let ok = results.iter().filter(|(status, _)| *status == 200).count();
    let mut latencies: Vec<f64> = results.iter().map(|&(_, ms)| ms).collect();

    let registry = server.registry();
    let counters = registry.counters();
    let compiles = counters.get("serve.compiles").copied().unwrap_or(0);
    let joined = counters.get("serve.dedup_joined").copied().unwrap_or(0);
    let cache = server.cache().stats();

    let mut lines: Vec<String> = Vec::new();
    lines.push(format!("  \"clients\": {clients}"));
    lines.push(format!("  \"repeat\": {repeat}"));
    lines.push(format!("  \"requests_total\": {total}"));
    lines.push(format!("  \"requests_ok\": {ok}"));
    lines.push(format!("  \"workloads\": [\n{}\n  ]", workload_rows.join(",\n")));
    if !omit_timing {
        lines.push(format!("  \"wall_seconds\": {wall_seconds}"));
        lines.push(format!("  \"throughput_rps\": {}", total as f64 / wall_seconds));
        lines.push(format!("  \"latency_median_ms\": {}", median(&mut latencies)));
        // Race-dependent: how the dedup split fell this run, and cache state.
        lines.push(format!("  \"compiles\": {compiles}"));
        lines.push(format!("  \"dedup_joined\": {joined}"));
        lines.push(format!(
            "  \"cache\": {{\"entries\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}}",
            cache.entries, cache.hits, cache.misses, cache.evictions
        ));
    }
    println!("{{\n{}\n}}", lines.join(",\n"));

    // Every duplicate either joined an in-flight compile or hit a finished one;
    // the server never compiled more than the admitted request count.
    assert!(compiles + joined <= total as u64 + mix.len() as u64);
    server.shutdown();
}
