//! Regenerates the Sec. VI-C observation: f32 vs f64 TNVM gradient-evaluation time for
//! the 3-qubit shallow circuit (the paper reports a 1.27× speedup for f32).
//!
//! Run with `cargo run --release -p qudit-bench --bin report_precision`.

use std::time::Instant;

use openqudit::network::{compile_network, TensorNetwork};
use openqudit::prelude::*;

fn time_eval<T: openqudit::tensor::Float>(program: &TnvmProgram, params: &[T], reps: usize) -> f64 {
    let cache = ExpressionCache::new();
    let mut vm: Tnvm<T> = Tnvm::new(program, DiffMode::Gradient, &cache);
    // Warm up.
    let _ = vm.evaluate(params);
    // detlint: allow(wall-clock) — bench harness; elapsed time is the measurement
    let start = Instant::now();
    for _ in 0..reps {
        let _ = vm.evaluate(params);
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let circuit = openqudit::circuit::builders::pqc_qubit_ladder(3, 3).expect("valid builder");
    let program = compile_network(&TensorNetwork::from_circuit(&circuit));
    let reps = 2000;
    let p64: Vec<f64> = (0..circuit.num_params()).map(|k| 0.17 * k as f64).collect();
    let p32: Vec<f32> = p64.iter().map(|&x| x as f32).collect();
    let t64 = time_eval::<f64>(&program, &p64, reps);
    let t32 = time_eval::<f32>(&program, &p32, reps);
    println!("== Section VI-C: TNVM gradient evaluation, 3-qubit shallow circuit ==");
    println!("f64 gradient evaluation: {:.3} µs", t64 * 1e6);
    println!("f32 gradient evaluation: {:.3} µs", t32 * 1e6);
    println!("f32 speedup: {:.2}x (paper reports 1.27x)", t64 / t32);
}
