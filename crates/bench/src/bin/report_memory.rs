//! Regenerates the Sec. V-C memory observation: the TNVM's numerical-storage footprint
//! for the Fig. 5 workloads in double-precision gradient mode (the paper reports ~211 KB
//! for the 3-qubit shallow case).
//!
//! Run with `cargo run --release -p qudit-bench --bin report_memory`.

use openqudit::prelude::*;
use qudit_bench::fig5_workloads;

fn main() {
    println!("== Section V-C: TNVM memory footprint (f64, gradient mode) ==");
    println!("{:<18} {:>8} {:>8} {:>12}", "workload", "params", "ops", "memory");
    for w in fig5_workloads() {
        let cache = ExpressionCache::new();
        let evaluator = TnvmEvaluator::new(&w.circuit, &cache);
        println!(
            "{:<18} {:>8} {:>8} {:>9} KB",
            w.name,
            w.circuit.num_params(),
            w.circuit.num_ops(),
            evaluator.memory_bytes() / 1024
        );
    }
}
