//! CI perf-regression gate: compares a freshly generated `report_synthesis` JSON
//! against the committed baseline (`BENCH_synthesis.json`) and fails when any
//! (workload, backend) pair's median wall-clock regressed by more than the allowed
//! fraction (default 25%, override with `OPENQUDIT_PERF_GATE_MAX_REGRESSION=<frac>`).
//!
//! Usage: `bench_gate <baseline.json> <fresh.json>`
//!
//! Both files are the `report_synthesis` output format: a JSON array with one row
//! per (workload, backend), each row carrying a `"workload_seconds"` median. The
//! parser is deliberately minimal (field extraction by key, no JSON dependency) —
//! exactly dual to how the report writer hand-rolls its output. Workloads present
//! in only one file are reported but do not fail the gate, so adding or retiring a
//! benchmark never breaks CI; a baseline generated under
//! `OPENQUDIT_SYNTH_OMIT_TIMING` (no timing fields at all) is an error.

use std::process::ExitCode;

/// One `(workload, backend) -> median seconds` measurement.
type Row = ((String, String), f64);

/// The smallest baseline median the gate compares against (seconds).
fn min_gated_seconds() -> f64 {
    std::env::var("OPENQUDIT_PERF_GATE_MIN_SECONDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02)
}

/// Extracts the string value of `"key": "..."` from a row. No unescaping — workload
/// names and backend names are plain identifiers in practice.
fn field_str(row: &str, key: &str) -> Option<String> {
    let pattern = format!("\"{key}\": \"");
    let start = row.find(&pattern)? + pattern.len();
    let end = row[start..].find('"')?;
    Some(row[start..start + end].to_string())
}

/// Extracts the numeric value of `"key": <number>` from a row.
fn field_f64(row: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\": ");
    let start = row.find(&pattern)? + pattern.len();
    let rest = &row[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the report into `(workload, backend) -> workload_seconds` rows. Rows
/// without a timing field are skipped (they cannot be gated).
fn parse_report(text: &str) -> Vec<Row> {
    text.lines()
        .filter_map(|line| {
            let workload = field_str(line, "workload")?;
            let backend = field_str(line, "backend")?;
            let seconds = field_f64(line, "workload_seconds")?;
            Some(((workload, backend), seconds))
        })
        .collect()
}

/// The regressions exceeding `max_regression` (a fraction: 0.25 allows +25%), as
/// human-readable descriptions. Pairs missing from either side are ignored.
fn regressions(baseline: &[Row], fresh: &[Row], max_regression: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, base) in baseline {
        let Some((_, new)) = fresh.iter().find(|(k, _)| k == key) else { continue };
        // Millisecond-scale baselines are dominated by scheduler/co-tenancy noise,
        // not by the engine; gate only measurements large enough for a ratio to be
        // meaningful (override the floor with OPENQUDIT_PERF_GATE_MIN_SECONDS).
        if *base < min_gated_seconds() {
            continue;
        }
        let limit = base * (1.0 + max_regression);
        if *new > limit {
            failures.push(format!(
                "{} [{}]: {:.6}s -> {:.6}s (+{:.1}%, limit +{:.1}%)",
                key.0,
                key.1,
                base,
                new,
                (new / base - 1.0) * 100.0,
                max_regression * 100.0
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json>");
        return ExitCode::FAILURE;
    };
    let max_regression: f64 = std::env::var("OPENQUDIT_PERF_GATE_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = parse_report(&read(baseline_path));
    let fresh = parse_report(&read(fresh_path));
    if baseline.is_empty() {
        eprintln!(
            "{baseline_path} has no (workload, backend, workload_seconds) rows — was it \
             generated with OPENQUDIT_SYNTH_OMIT_TIMING set?"
        );
        return ExitCode::FAILURE;
    }
    if fresh.is_empty() {
        eprintln!("{fresh_path} has no timed rows to gate");
        return ExitCode::FAILURE;
    }
    for (key, _) in baseline.iter().filter(|(k, _)| !fresh.iter().any(|(fk, _)| fk == k)) {
        eprintln!("note: baseline pair {} [{}] missing from fresh report", key.0, key.1);
    }
    let failures = regressions(&baseline, &fresh, max_regression);
    if failures.is_empty() {
        println!(
            "perf gate passed: {} measured pair(s) within +{:.1}% of baseline",
            fresh.len(),
            max_regression * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate FAILED ({} regression(s)):", failures.len());
        for failure in &failures {
            eprintln!("  {failure}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"workload": "cnot", "backend": "scalar", "trials": 3, "metrics": {"lm.iterations": 42}, "workload_seconds": 0.100000, "infidelity": 1.0e-12, "success": true},
  {"workload": "cnot", "backend": "blocked", "trials": 3, "workload_seconds": 0.080000, "success": true},
  {"workload": "tiny", "backend": "scalar", "workload_seconds": 0.000200, "success": true}
]"#;

    #[test]
    fn parses_rows_and_skips_untimed_ones() {
        let rows = parse_report(SAMPLE);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, ("cnot".to_string(), "scalar".to_string()));
        assert!((rows[0].1 - 0.1).abs() < 1e-12);
        let untimed =
            "[\n  {\"workload\": \"cnot\", \"backend\": \"scalar\", \"success\": true}\n]";
        assert!(parse_report(untimed).is_empty());
    }

    #[test]
    fn flags_only_regressions_beyond_the_limit() {
        let baseline = parse_report(SAMPLE);
        // +20% everywhere: inside the 25% budget.
        let fresh: Vec<Row> = baseline.iter().map(|(k, v)| (k.clone(), v * 1.2)).collect();
        assert!(regressions(&baseline, &fresh, 0.25).is_empty());
        // +30% on one pair: flagged, and the message names it.
        let mut worse = fresh.clone();
        worse[0].1 = baseline[0].1 * 1.3;
        let failures = regressions(&baseline, &worse, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("cnot [scalar]"), "{failures:?}");
        // Sub-millisecond pairs never gate, no matter the ratio.
        let mut noisy = fresh;
        noisy[2].1 = baseline[2].1 * 10.0;
        assert!(regressions(&baseline, &noisy, 0.25).is_empty());
    }

    #[test]
    fn missing_pairs_are_ignored() {
        let baseline = parse_report(SAMPLE);
        let fresh = vec![baseline[0].clone()];
        assert!(regressions(&baseline, &fresh, 0.25).is_empty());
    }
}
