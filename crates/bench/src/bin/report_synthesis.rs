//! Reports the synthesis workloads through the compiler-pass pipeline: nodes
//! expanded, per-pass wall-clock timings (partition, search, refinement, folding),
//! pre/post-refine entangling-block depths, and fold metrics per workload — emitted
//! as JSON.
//!
//! Every workload runs through [`Compiler::partitioned_passes`]: narrow targets skip
//! the partition pass and behave exactly like the legacy monolithic entry point
//! (pinned byte-for-byte by the integration tests), while the 4-qubit workload
//! exercises the partitioning front-end the monolith never had.
//!
//! Run with `cargo run --release -p qudit-bench --bin report_synthesis`.
//! Set `OPENQUDIT_SYNTH_TRIALS=<n>` to repeat each workload (default 1; the report
//! records the mean per-pass wall-clock over trials and the worst infidelity).
//! Set `OPENQUDIT_SYNTH_OMIT_TIMING=1` to drop the wall-clock fields: every remaining
//! field is deterministic for a fixed seed, so two runs must produce byte-identical
//! output — the CI determinism check diffs exactly this (including the partitioned
//! workload).

use std::collections::BTreeMap;

use openqudit::prelude::*;
use qudit_bench::{synthesis_config, synthesis_workloads};

/// Minimal JSON string escaping for workload names (no exotic characters expected).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let trials: usize = std::env::var("OPENQUDIT_SYNTH_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let omit_timing = std::env::var("OPENQUDIT_SYNTH_OMIT_TIMING")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);

    let mut entries: Vec<String> = Vec::new();
    for workload in synthesis_workloads() {
        let config = synthesis_config(&workload);
        // One shared cache per workload: trials after the first measure a warm cache,
        // matching how a compiler would amortize gate compilation across tasks.
        let compiler = Compiler::with_cache(ExpressionCache::new()).partitioned_passes();
        let mut pass_seconds: BTreeMap<String, f64> = BTreeMap::new();
        let mut pass_order: Vec<String> = Vec::new();
        // Result fields are taken from the *worst* trial (by final infidelity), so
        // the row always describes one run that actually happened.
        let mut worst: Option<SynthesisResult> = None;
        let mut partition_rounds: Option<usize> = None;
        let mut success = true;
        for _ in 0..trials {
            let task = CompilationTask::new(workload.target.clone(), config.clone());
            let report = match compiler.compile(task) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("workload '{}' failed: {e}", workload.name);
                    std::process::exit(1);
                }
            };
            for timing in &report.timings {
                if !pass_seconds.contains_key(&timing.pass) {
                    pass_order.push(timing.pass.clone());
                }
                *pass_seconds.entry(timing.pass.clone()).or_insert(0.0) +=
                    timing.duration.as_secs_f64();
            }
            partition_rounds = report.data.get_usize("partition.rounds");
            success &= report.result.success;
            let worse =
                worst.as_ref().map(|w| report.result.infidelity > w.infidelity).unwrap_or(true);
            if worse {
                worst = Some(report.result);
            }
        }
        let worst = worst.expect("at least one trial ran");
        let timing = if omit_timing {
            String::new()
        } else {
            let per_pass: Vec<String> = pass_order
                .iter()
                .map(|pass| {
                    format!("\"{}\": {:.6}", json_escape(pass), pass_seconds[pass] / trials as f64)
                })
                .collect();
            format!("\"mean_pass_seconds\": {{{}}}, ", per_pass.join(", "))
        };
        let partition = match partition_rounds {
            Some(rounds) => format!("\"partition_rounds\": {rounds}, "),
            None => String::new(),
        };
        entries.push(format!(
            concat!(
                "  {{\"workload\": \"{}\", \"radices\": {:?}, \"trials\": {}, ",
                "\"nodes_expanded\": {}, \"blocks_pre_refine\": {}, \"blocks\": {}, ",
                "\"params_folded\": {}, \"gates_constified\": {}, {}{}",
                "\"infidelity\": {:.3e}, \"success\": {}}}"
            ),
            json_escape(workload.name),
            workload.radices,
            trials,
            worst.nodes_expanded,
            worst.blocks.len() + worst.blocks_deleted,
            worst.blocks.len(),
            worst.params_folded,
            worst.gates_constified,
            partition,
            timing,
            worst.infidelity,
            success,
        ));
    }
    println!("[\n{}\n]", entries.join(",\n"));
}
