//! Reports the bottom-up synthesis workloads: nodes expanded, wall-clock time, and
//! final infidelity per workload, emitted as JSON (one object per line would also be
//! fine for downstream tooling; a single array keeps it self-describing).
//!
//! Run with `cargo run --release -p qudit-bench --bin report_synthesis`.
//! Set `OPENQUDIT_SYNTH_TRIALS=<n>` to repeat each workload (default 1; the report
//! records the mean wall-clock over trials and the worst infidelity).

use openqudit::prelude::*;
use qudit_bench::{synthesis_config, synthesis_workloads, time_it};

/// Minimal JSON string escaping for workload names (no exotic characters expected).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let trials: usize = std::env::var("OPENQUDIT_SYNTH_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);

    let mut entries: Vec<String> = Vec::new();
    for workload in synthesis_workloads() {
        let config = synthesis_config(&workload);
        // One shared cache per workload: trials after the first measure a warm cache,
        // matching how a compiler would amortize gate compilation across partitions.
        let cache = ExpressionCache::new();
        let mut total_time = std::time::Duration::ZERO;
        // Infidelity, nodes_expanded, and blocks are all taken from the *worst* trial
        // (by infidelity), so the row always describes one run that actually happened.
        let mut worst_infidelity = f64::NEG_INFINITY;
        let mut nodes_expanded = 0usize;
        let mut blocks = 0usize;
        let mut success = true;
        for _ in 0..trials {
            let (result, elapsed) =
                time_it(|| synthesize_with_cache(&workload.target, &config, &cache));
            let result = match result {
                Ok(result) => result,
                Err(e) => {
                    eprintln!("workload '{}' failed: {e}", workload.name);
                    std::process::exit(1);
                }
            };
            total_time += elapsed;
            if result.infidelity > worst_infidelity {
                worst_infidelity = result.infidelity;
                nodes_expanded = result.nodes_expanded;
                blocks = result.blocks.len();
            }
            success &= result.success;
        }
        let mean_seconds = total_time.as_secs_f64() / trials as f64;
        entries.push(format!(
            concat!(
                "  {{\"workload\": \"{}\", \"radices\": {:?}, \"trials\": {}, ",
                "\"nodes_expanded\": {}, \"blocks\": {}, \"mean_seconds\": {:.6}, ",
                "\"infidelity\": {:.3e}, \"success\": {}}}"
            ),
            json_escape(workload.name),
            workload.radices,
            trials,
            nodes_expanded,
            blocks,
            mean_seconds,
            worst_infidelity,
            success,
        ));
    }
    println!("[\n{}\n]", entries.join(",\n"));
}
