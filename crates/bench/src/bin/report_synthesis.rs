//! Reports the bottom-up synthesis workloads: nodes expanded, wall-clock time, and
//! final infidelity per workload — with the search and the post-synthesis refinement
//! pass timed separately, so the report carries pre- and post-refine entangling-block
//! depths — emitted as JSON.
//!
//! Run with `cargo run --release -p qudit-bench --bin report_synthesis`.
//! Set `OPENQUDIT_SYNTH_TRIALS=<n>` to repeat each workload (default 1; the report
//! records the mean wall-clock over trials and the worst infidelity).
//! Set `OPENQUDIT_SYNTH_OMIT_TIMING=1` to drop the wall-clock fields: every remaining
//! field is deterministic for a fixed seed, so two runs must produce byte-identical
//! output — the CI determinism check diffs exactly this.

use openqudit::prelude::*;
use qudit_bench::{synthesis_config, synthesis_workloads, time_it};

/// Minimal JSON string escaping for workload names (no exotic characters expected).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let trials: usize = std::env::var("OPENQUDIT_SYNTH_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let omit_timing = std::env::var("OPENQUDIT_SYNTH_OMIT_TIMING")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);

    let mut entries: Vec<String> = Vec::new();
    for workload in synthesis_workloads() {
        let config = synthesis_config(&workload);
        let refine_config = RefineConfig {
            success_threshold: config.success_threshold,
            instantiate: config.instantiate.clone(),
            seed: config.seed,
            ..RefineConfig::default()
        };
        // One shared cache per workload: trials after the first measure a warm cache,
        // matching how a compiler would amortize gate compilation across partitions.
        let cache = ExpressionCache::new();
        let mut search_time = std::time::Duration::ZERO;
        let mut refine_time = std::time::Duration::ZERO;
        // Infidelity, nodes_expanded, and blocks are all taken from the *worst* trial
        // (by post-refine infidelity), so the row always describes one run that
        // actually happened.
        let mut worst_infidelity = f64::NEG_INFINITY;
        let mut nodes_expanded = 0usize;
        let mut blocks_pre = 0usize;
        let mut blocks_post = 0usize;
        let mut success = true;
        for _ in 0..trials {
            let (searched, search_elapsed) =
                time_it(|| synthesize_with_cache(&workload.target, &config, &cache));
            let searched = match searched {
                Ok(result) => result,
                Err(e) => {
                    eprintln!("workload '{}' failed: {e}", workload.name);
                    std::process::exit(1);
                }
            };
            let (refined, refine_elapsed) = if searched.success {
                let (refined, elapsed) =
                    time_it(|| refine(&searched, &workload.target, &refine_config, &cache));
                match refined {
                    Ok(refined) => (refined, elapsed),
                    Err(e) => {
                        eprintln!("workload '{}' refine failed: {e}", workload.name);
                        std::process::exit(1);
                    }
                }
            } else {
                (searched.clone(), std::time::Duration::ZERO)
            };
            search_time += search_elapsed;
            refine_time += refine_elapsed;
            if refined.infidelity > worst_infidelity {
                worst_infidelity = refined.infidelity;
                nodes_expanded = refined.nodes_expanded;
                blocks_pre = refined.blocks.len() + refined.blocks_deleted;
                blocks_post = refined.blocks.len();
            }
            success &= refined.success;
        }
        let timing = if omit_timing {
            String::new()
        } else {
            format!(
                "\"mean_search_seconds\": {:.6}, \"mean_refine_seconds\": {:.6}, ",
                search_time.as_secs_f64() / trials as f64,
                refine_time.as_secs_f64() / trials as f64,
            )
        };
        entries.push(format!(
            concat!(
                "  {{\"workload\": \"{}\", \"radices\": {:?}, \"trials\": {}, ",
                "\"nodes_expanded\": {}, \"blocks_pre_refine\": {}, \"blocks\": {}, ",
                "{}\"infidelity\": {:.3e}, \"success\": {}}}"
            ),
            json_escape(workload.name),
            workload.radices,
            trials,
            nodes_expanded,
            blocks_pre,
            blocks_post,
            timing,
            worst_infidelity,
            success,
        ));
    }
    println!("[\n{}\n]", entries.join(",\n"));
}
