//! Reports the synthesis workloads through the compiler-pass pipeline: nodes
//! expanded, per-pass wall-clock timings (partition, search, refinement, folding),
//! pre/post-refine entangling-block depths, and fold metrics per workload — emitted
//! as JSON, one row per (workload, TNVM backend) pair.
//!
//! Every workload runs through [`Compiler::partitioned_passes`]: narrow targets skip
//! the partition pass and behave exactly like the legacy monolithic entry point
//! (pinned byte-for-byte by the integration tests), while the 4-qubit workload
//! exercises the partitioning front-end the monolith never had.
//!
//! By default every workload runs under **both** execution tiers (`scalar` and
//! `blocked`), so the report doubles as the backend benchmark committed as
//! `BENCH_synthesis.json`. Set `OPENQUDIT_TNVM_BACKEND=scalar|blocked` to pin a
//! single tier — the CI determinism check runs the report once per tier this way.
//!
//! Run with `cargo run --release -p qudit-bench --bin report_synthesis`.
//! Set `OPENQUDIT_SYNTH_TRIALS=<n>` to repeat each workload (default 1; the report
//! records the **median** per-trial wall-clock — robust to co-tenancy spikes and to
//! the cold-cache first trial, both of which dwarf the millisecond workloads — and
//! the worst infidelity).
//! Set `OPENQUDIT_SYNTH_OMIT_TIMING=1` to drop **every** wall-clock-derived field
//! (`workload_seconds`, `median_pass_seconds`) in one gate — the single timing
//! switch, shared via [`openqudit::trace::omit_timing`]: every remaining field is
//! deterministic for a fixed seed, so two runs must produce byte-identical output —
//! the CI determinism check diffs exactly this (including the partitioned workload),
//! once per backend. The per-row `"metrics"` object (tier-invariant counters) and
//! `"kernel_metrics"` object (`tnvm.*` tier-variant counters) are deterministic and
//! stay in the pinned output; span *timings* never reach stdout at all — they only
//! go to the optional Chrome trace file.
//!
//! Each row also carries an `"optimize"` object: the verified bytecode optimizer's
//! outcome (DCE/CSE/coalescing) over the compiled result's TNVM program, always run
//! at `full` regardless of `OPENQUDIT_OPTIMIZE`. It is bytecode-level and therefore
//! tier-invariant and deterministic — the determinism diff pins it, and the
//! committed benchmark records how much each workload shrinks.
//!
//! Set `OPENQUDIT_SYNTH_TRACE=<path>` to also write a Chrome `trace_event` JSON
//! profile (loadable in `about://tracing` or <https://ui.perfetto.dev>) of the first
//! trial of the widest workload — the 4-qudit partitioned run — on the first
//! reported tier.

use std::collections::BTreeMap;
use std::time::Instant;

use openqudit::prelude::*;
use openqudit::tnvm::BACKEND_ENV_VAR;
use openqudit::trace::counters_to_json;
use qudit_bench::{synthesis_config, synthesis_workloads};

/// Environment variable naming the Chrome `trace_event` output file.
const TRACE_ENV_VAR: &str = "OPENQUDIT_SYNTH_TRACE";

/// Minimal JSON string escaping for workload names (no exotic characters expected).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Median of the samples (mean of the middle two for even counts). Panics on empty.
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

fn main() {
    let trials: usize = std::env::var("OPENQUDIT_SYNTH_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let omit_timing = openqudit::trace::omit_timing();
    let trace_path = std::env::var(TRACE_ENV_VAR).ok();
    let mut trace_export: Option<(usize, TraceRegistry)> = None;
    // Pinned tier when the env var is set (the CI per-backend determinism diff);
    // otherwise report both tiers side by side for the committed benchmark.
    let backends: Vec<BackendKind> = match std::env::var(BACKEND_ENV_VAR) {
        Ok(_) => vec![BackendKind::from_env()],
        Err(_) => BackendKind::all().to_vec(),
    };

    let mut entries: Vec<String> = Vec::new();
    for workload in synthesis_workloads() {
        let config = synthesis_config(&workload);
        // One fresh cache per (workload, backend): trials after the first measure a
        // warm cache, matching how a compiler would amortize gate compilation across
        // tasks, while the tiers never share compilation work. Trials are *paired* —
        // every trial runs each tier back to back — so slow machine drift (frequency
        // scaling, co-tenancy) cancels out of the tier comparison.
        struct TierRun {
            backend: openqudit::prelude::BackendKind,
            compiler: Compiler,
            pass_seconds: BTreeMap<String, Vec<f64>>,
            pass_order: Vec<String>,
            workload_seconds: Vec<f64>,
            // Result fields are taken from the *worst* trial (by final infidelity),
            // so the row always describes one run that actually happened.
            worst: Option<SynthesisResult>,
            partition_rounds: Option<usize>,
            success: bool,
            // Counter snapshot of the *first* trial (cold fresh cache — the only
            // trial whose cache.hits/misses are reproducible across processes).
            metrics: BTreeMap<String, u64>,
        }
        let mut runs: Vec<TierRun> = backends
            .iter()
            .map(|&backend| TierRun {
                backend,
                compiler: Compiler::with_cache(ExpressionCache::new())
                    .backend(backend)
                    .partitioned_passes(),
                pass_seconds: BTreeMap::new(),
                pass_order: Vec::new(),
                workload_seconds: Vec::new(),
                worst: None,
                partition_rounds: None,
                success: true,
                metrics: BTreeMap::new(),
            })
            .collect();
        for trial in 0..trials {
            for (tier, run) in runs.iter_mut().enumerate() {
                let task = CompilationTask::new(workload.target.clone(), config.clone());
                // detlint: allow(wall-clock) — timing medians are the report's product
                // and are withheld from the byte-diffed artifact by the omit-timing gate
                let started = Instant::now();
                let report = match run.compiler.compile(task) {
                    Ok(report) => report,
                    Err(e) => {
                        eprintln!("workload '{}' [{}] failed: {e}", workload.name, run.backend);
                        std::process::exit(1);
                    }
                };
                run.workload_seconds.push(started.elapsed().as_secs_f64());
                if trial == 0 {
                    run.metrics = report.metrics.clone();
                    if tier == 0 && trace_path.is_some() {
                        // Keep the widest workload's registry for the Chrome export.
                        let width = workload.radices.len();
                        if trace_export.as_ref().map(|(w, _)| width > *w).unwrap_or(true) {
                            trace_export = Some((width, report.trace.clone()));
                        }
                    }
                }
                for timing in &report.timings {
                    if !run.pass_seconds.contains_key(&timing.pass) {
                        run.pass_order.push(timing.pass.clone());
                    }
                    run.pass_seconds
                        .entry(timing.pass.clone())
                        .or_default()
                        .push(timing.duration.as_secs_f64());
                }
                run.partition_rounds = report.data.get_usize("partition.rounds");
                run.success &= report.result.success;
                let worse = run
                    .worst
                    .as_ref()
                    .map(|w| report.result.infidelity > w.infidelity)
                    .unwrap_or(true);
                if worse {
                    run.worst = Some(report.result);
                }
            }
        }
        for run in runs {
            let TierRun {
                backend,
                compiler: _,
                pass_seconds,
                pass_order,
                workload_seconds,
                worst,
                partition_rounds,
                success,
                metrics,
            } = run;
            let worst = worst.expect("at least one trial ran");
            let timing = if omit_timing {
                String::new()
            } else {
                let per_pass: Vec<String> = pass_order
                    .iter()
                    .map(|pass| {
                        format!("\"{}\": {:.6}", json_escape(pass), median(&pass_seconds[pass]))
                    })
                    .collect();
                format!(
                    "\"workload_seconds\": {:.6}, \"median_pass_seconds\": {{{}}}, ",
                    median(&workload_seconds),
                    per_pass.join(", ")
                )
            };
            let partition = match partition_rounds {
                Some(rounds) => format!("\"partition_rounds\": {rounds}, "),
                None => String::new(),
            };
            // Tier-invariant counters (identical across `scalar` and `blocked` at the
            // same seed — the cross-tier determinism diff covers them) vs. `tnvm.*`
            // kernel counters, which legitimately differ per tier (the diff scrubs
            // the `kernel_metrics` field instead).
            let (invariant, kernel): (Vec<_>, Vec<_>) =
                metrics.into_iter().partition(|(k, _)| !k.starts_with("tnvm."));
            let metrics_json = format!(
                "\"metrics\": {}, \"kernel_metrics\": {}, ",
                counters_to_json(&invariant.into_iter().collect()),
                counters_to_json(&kernel.into_iter().collect()),
            );
            let optimize_json = {
                let program = try_compile_network(&TensorNetwork::from_circuit(&worst.circuit))
                    .expect("compiled result lowers to TNVM bytecode");
                let out = optimize_program(&program, OptimizeLevel::Full, &ExpressionCache::new());
                format!(
                    concat!(
                        "\"optimize\": {{\"instructions_before\": {}, ",
                        "\"instructions_after\": {}, \"dce_removed\": {}, ",
                        "\"cse_removed\": {}, \"arena_before\": {}, \"arena_after\": {}, ",
                        "\"rejected\": {}}}, "
                    ),
                    out.stats.instructions_before,
                    out.stats.instructions_after,
                    out.stats.dce_removed,
                    out.stats.cse_removed,
                    out.stats.arena_before,
                    out.stats.arena_after,
                    out.stats.rejected.is_some(),
                )
            };
            entries.push(format!(
                concat!(
                    "  {{\"workload\": \"{}\", \"backend\": \"{}\", \"radices\": {:?}, ",
                    "\"trials\": {}, ",
                    "\"nodes_expanded\": {}, \"blocks_pre_refine\": {}, \"blocks\": {}, ",
                    "\"params_folded\": {}, \"gates_constified\": {}, {}{}{}{}",
                    "\"infidelity\": {:.3e}, \"success\": {}}}"
                ),
                json_escape(workload.name),
                backend.name(),
                workload.radices,
                trials,
                worst.nodes_expanded,
                worst.blocks.len() + worst.blocks_deleted,
                worst.blocks.len(),
                worst.params_folded,
                worst.gates_constified,
                partition,
                metrics_json,
                optimize_json,
                timing,
                worst.infidelity,
                success,
            ));
        }
    }
    println!("[\n{}\n]", entries.join(",\n"));

    if let Some(path) = trace_path {
        let (_, registry) = trace_export.expect("at least one workload ran");
        if let Err(e) = std::fs::write(&path, registry.chrome_trace_json()) {
            eprintln!("failed to write Chrome trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote Chrome trace_event profile to {path}");
    }
}
