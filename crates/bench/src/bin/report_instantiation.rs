//! Regenerates Figures 6 and 7 of the paper: single-start and multi-start (8 starts)
//! numerical instantiation time and success rate for the Fig. 5 PQC workloads,
//! OpenQudit (TNVM) vs the BQSKit-style baseline, both driven by the same LM optimizer.
//!
//! Run with `cargo run --release -p qudit-bench --bin report_instantiation`.
//! Set `OPENQUDIT_TRIALS=<n>` to change the number of targets per workload (default 5).

use openqudit::prelude::*;
use qudit_bench::{
    fig5_workloads, fmt_duration, reachable_targets, run_baseline_instantiation,
    run_openqudit_instantiation,
};

fn main() {
    let trials: usize =
        std::env::var("OPENQUDIT_TRIALS").ok().and_then(|s| s.parse().ok()).unwrap_or(5);
    for (label, starts) in [
        ("Figure 6: single-start instantiation", 1usize),
        ("Figure 7: multi-start instantiation (8 starts)", 8),
    ] {
        println!("== {label} ==");
        println!(
            "{:<18} {:>7} {:>14} {:>14} {:>9} {:>11} {:>11}",
            "workload", "params", "openqudit", "baseline", "speedup", "oq success", "bl success"
        );
        for w in fig5_workloads() {
            let targets = reachable_targets(&w.circuit, trials, 1000 + starts as u64);
            let cache = ExpressionCache::new();
            let mut oq_total = std::time::Duration::ZERO;
            let mut bl_total = std::time::Duration::ZERO;
            let mut oq_success = 0usize;
            let mut bl_success = 0usize;
            for (k, target) in targets.iter().enumerate() {
                // threads: 1 keeps the engine comparison apples-to-apples (the paper's
                // Fig. 6/7 measure evaluation speed, not thread parallelism); the
                // parallel multi-start path is reported by report_synthesis instead.
                let config = InstantiateConfig {
                    starts,
                    seed: 7 + k as u64,
                    threads: 1,
                    ..Default::default()
                };
                let oq = run_openqudit_instantiation(&w.circuit, target, &config, &cache);
                let bl = run_baseline_instantiation(&w.circuit, target, &config);
                oq_total += oq.elapsed;
                bl_total += bl.elapsed;
                oq_success += oq.success as usize;
                bl_success += bl.success as usize;
            }
            let oq_mean = oq_total / trials as u32;
            let bl_mean = bl_total / trials as u32;
            println!(
                "{:<18} {:>7} {:>14} {:>14} {:>8.1}x {:>10.0}% {:>10.0}%",
                w.name,
                w.circuit.num_params(),
                fmt_duration(oq_mean),
                fmt_duration(bl_mean),
                bl_mean.as_secs_f64() / oq_mean.as_secs_f64(),
                100.0 * oq_success as f64 / trials as f64,
                100.0 * bl_success as f64 / trials as f64,
            );
        }
        println!();
    }
}
