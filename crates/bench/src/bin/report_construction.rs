//! Regenerates Figure 4 of the paper: circuit-construction time for the QFT and the
//! Benchpress DTC circuit, OpenQudit (cached-reference appends) vs the baseline
//! framework (per-append safety/equality checks).
//!
//! Run with `cargo run --release -p qudit-bench --bin report_construction`.
//! Set `OPENQUDIT_FULL=1` to extend to the paper's largest sizes (QFT 1023, DTC 512).

use qudit_bench::{
    build_dtc_baseline, build_dtc_openqudit, build_qft_baseline, build_qft_openqudit, fmt_duration,
    time_it,
};

fn main() {
    let full = std::env::var("OPENQUDIT_FULL").is_ok();
    let qft_sizes: Vec<usize> = if full {
        vec![4, 8, 16, 32, 64, 128, 256, 512, 1023]
    } else {
        vec![4, 8, 16, 32, 64, 128, 256]
    };
    let dtc_sizes: Vec<usize> =
        if full { vec![4, 8, 16, 32, 64, 128, 256, 512] } else { vec![4, 8, 16, 32, 64, 128] };

    println!("== Figure 4 (left): QFT construction time ==");
    println!(
        "{:>7} {:>10} {:>16} {:>16} {:>9}",
        "qubits", "ops", "openqudit", "baseline", "speedup"
    );
    for &n in &qft_sizes {
        let (oq, t_oq) = time_it(|| build_qft_openqudit(n));
        let (bl, t_bl) = time_it(|| build_qft_baseline(n));
        assert_eq!(oq.num_ops(), bl.num_ops());
        println!(
            "{:>7} {:>10} {:>16} {:>16} {:>8.1}x",
            n,
            oq.num_ops(),
            fmt_duration(t_oq),
            fmt_duration(t_bl),
            t_bl.as_secs_f64() / t_oq.as_secs_f64()
        );
    }

    println!();
    println!("== Figure 4 (right): DTC construction time ==");
    println!(
        "{:>7} {:>10} {:>16} {:>16} {:>9}",
        "qubits", "ops", "openqudit", "baseline", "speedup"
    );
    for &n in &dtc_sizes {
        let (oq, t_oq) = time_it(|| build_dtc_openqudit(n));
        let (bl, t_bl) = time_it(|| build_dtc_baseline(n));
        assert_eq!(oq.num_ops(), bl.num_ops());
        println!(
            "{:>7} {:>10} {:>16} {:>16} {:>8.1}x",
            n,
            oq.num_ops(),
            fmt_duration(t_oq),
            fmt_duration(t_bl),
            t_bl.as_secs_f64() / t_oq.as_secs_f64()
        );
    }
}
