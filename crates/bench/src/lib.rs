//! Benchmark harness for the OpenQudit reproduction.
//!
//! This crate holds the workload definitions shared by the Criterion benches and the
//! `report_*` binaries that regenerate every figure and table of the paper's evaluation
//! (see `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for recorded
//! results).

use std::time::{Duration, Instant};

use openqudit::prelude::*;

/// One parameterized-circuit instantiation workload (a Fig. 5 benchmark case).
pub struct PqcWorkload {
    /// Human-readable name used in reports (e.g. "3-qubit shallow").
    pub name: &'static str,
    /// The ansatz circuit.
    pub circuit: QuditCircuit,
}

/// Builds the full Fig. 5 workload suite: shallow/deep qubit ladders and qutrit ladders
/// at two and three qudits.
pub fn fig5_workloads() -> Vec<PqcWorkload> {
    use openqudit::circuit::builders;
    vec![
        PqcWorkload {
            name: "2-qubit shallow",
            circuit: builders::pqc_qubit_ladder(2, 1).expect("valid builder arguments"),
        },
        PqcWorkload {
            name: "3-qubit shallow",
            circuit: builders::pqc_qubit_ladder(3, 3).expect("valid builder arguments"),
        },
        PqcWorkload {
            name: "3-qubit deep",
            circuit: builders::pqc_qubit_ladder(3, 8).expect("valid builder arguments"),
        },
        PqcWorkload {
            name: "2-qutrit shallow",
            circuit: builders::pqc_qutrit_ladder(2, 1).expect("valid builder arguments"),
        },
        PqcWorkload {
            name: "3-qutrit shallow",
            circuit: builders::pqc_qutrit_ladder(3, 3).expect("valid builder arguments"),
        },
    ]
}

/// The subset of Fig. 5 workloads whose baseline evaluation is fast enough for quick CI
/// runs (used by the Criterion benches; the report binaries run the full set).
pub fn fig5_workloads_small() -> Vec<PqcWorkload> {
    fig5_workloads()
        .into_iter()
        .filter(|w| matches!(w.name, "2-qubit shallow" | "3-qubit shallow"))
        .collect()
}

/// Generates `count` instantiation targets for a workload: unitaries produced by the
/// ansatz itself at random parameters (so a perfect solution exists), which makes success
/// rates meaningful for both backends.
pub fn reachable_targets(circuit: &QuditCircuit, count: usize, seed: u64) -> Vec<Matrix<f64>> {
    (0..count).map(|k| reachable_target(circuit, seed + k as u64)).collect()
}

/// Measures the wall-clock time of `f`, returning its result and the elapsed duration.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    // detlint: allow(wall-clock) — bench harness; elapsed time is the measurement
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Result of one instantiation timing run.
pub struct TimedInstantiation {
    /// Wall-clock time including (for the TNVM side) AOT compilation and TNVM init.
    pub elapsed: Duration,
    /// Whether the run reached the success threshold.
    pub success: bool,
    /// Final infidelity.
    pub infidelity: f64,
}

/// Runs TNVM-backed instantiation end to end (AOT compile → TNVM init → LM), matching
/// the paper's convention of charging OpenQudit for its one-time AOT cost.
pub fn run_openqudit_instantiation(
    circuit: &QuditCircuit,
    target: &Matrix<f64>,
    config: &InstantiateConfig,
    cache: &ExpressionCache,
) -> TimedInstantiation {
    let (result, elapsed) = time_it(|| instantiate_circuit(circuit, target, config, cache));
    TimedInstantiation { elapsed, success: result.success, infidelity: result.infidelity }
}

/// Runs the BQSKit-style baseline instantiation with the same LM optimizer.
pub fn run_baseline_instantiation(
    circuit: &QuditCircuit,
    target: &Matrix<f64>,
    config: &InstantiateConfig,
) -> TimedInstantiation {
    let (result, elapsed) = time_it(|| {
        let mut evaluator = BaselineEvaluator::from_qudit_circuit(circuit)
            .expect("benchmark circuits only use gates with baseline implementations");
        instantiate(&mut evaluator, target, config)
    });
    TimedInstantiation { elapsed, success: result.success, infidelity: result.infidelity }
}

/// Builds an OpenQudit QFT circuit (cheap cached-reference appends).
pub fn build_qft_openqudit(n: usize) -> QuditCircuit {
    openqudit::circuit::builders::qft(n).expect("valid qft size")
}

/// Builds an OpenQudit DTC circuit (Listing 4 of the paper).
pub fn build_dtc_openqudit(n: usize) -> QuditCircuit {
    openqudit::circuit::builders::dtc(n).expect("valid dtc size")
}

/// Builds the QFT circuit through the baseline framework (per-append checks).
pub fn build_qft_baseline(n: usize) -> BaselineCircuit {
    use openqudit::baseline::{CPhaseGate, ConstantGate};
    use std::sync::Arc;
    let mut circ = BaselineCircuit::qubits(n);
    for i in 0..n {
        circ.append_constant(Arc::new(ConstantGate::hadamard()), vec![i], vec![])
            .expect("valid append");
        for j in (i + 1)..n {
            let angle = std::f64::consts::PI / (1u64 << (j - i)) as f64;
            circ.append_constant(Arc::new(CPhaseGate), vec![j, i], vec![angle])
                .expect("valid append");
        }
    }
    for i in 0..n / 2 {
        circ.append_constant(Arc::new(ConstantGate::swap()), vec![i, n - 1 - i], vec![])
            .expect("valid append");
    }
    circ
}

/// Builds the DTC circuit through the baseline framework (per-append checks).
pub fn build_dtc_baseline(n: usize) -> BaselineCircuit {
    use openqudit::baseline::{RxGate, RzGate, RzzGate};
    use std::sync::Arc;
    let mut circ = BaselineCircuit::qubits(n);
    let mut counter = 0u64;
    let mut angle = move || {
        counter += 1;
        let frac = (counter as f64 * 0.6180339887498949) % 1.0;
        std::f64::consts::PI * (2.0 * frac - 1.0)
    };
    for _ in 0..n {
        for q in 0..n {
            circ.append_constant(Arc::new(RxGate), vec![q], vec![0.95 * std::f64::consts::PI])
                .expect("valid append");
        }
        for q in 0..n {
            circ.append_constant(Arc::new(RzGate), vec![q], vec![angle()]).expect("valid append");
        }
        for q in 0..n.saturating_sub(1) {
            circ.append_constant(Arc::new(RzzGate), vec![q, q + 1], vec![angle()])
                .expect("valid append");
        }
    }
    circ
}

/// One bottom-up synthesis workload: a named target over a qudit system.
pub struct SynthWorkload {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// The qudit radices of the system.
    pub radices: Vec<usize>,
    /// The target unitary.
    pub target: Matrix<f64>,
    /// Search depth bound (entangling blocks).
    pub max_blocks: usize,
}

/// Builds the synthesis workload suite: constant two-qubit gates plus reachable
/// random targets on qubit and qutrit systems (targets generated by the synthesis
/// template itself at random parameters, so a perfect solution always exists).
pub fn synthesis_workloads() -> Vec<SynthWorkload> {
    use openqudit::circuit::builders;
    let reachable = |radices: &[usize], blocks: &[(usize, usize)], seed: u64| {
        let template = builders::pqc_template(radices, blocks).expect("valid template");
        reachable_target(&template, seed)
    };
    vec![
        SynthWorkload {
            name: "2-qubit cnot",
            radices: vec![2, 2],
            target: openqudit::circuit::gates::cnot().to_matrix::<f64>(&[]).expect("constant gate"),
            max_blocks: 3,
        },
        SynthWorkload {
            name: "2-qubit reachable depth-2",
            radices: vec![2, 2],
            target: reachable(&[2, 2], &[(0, 1), (0, 1)], 41),
            max_blocks: 3,
        },
        SynthWorkload {
            name: "3-qubit reachable depth-2",
            radices: vec![2, 2, 2],
            target: reachable(&[2, 2, 2], &[(0, 1), (1, 2)], 43),
            max_blocks: 3,
        },
        SynthWorkload {
            name: "2-qutrit reachable depth-1",
            radices: vec![3, 3],
            target: reachable(&[3, 3], &[(0, 1)], 47),
            max_blocks: 2,
        },
        // Mixed-radix workload: the embedded controlled-shift entangler on a
        // qubit–qutrit pair, served by the default gate-set registry's (2, 3) entry.
        // Its presence here also folds the mixed path into the CI byte-for-byte
        // determinism diff over `report_synthesis`.
        SynthWorkload {
            name: "qubit-qutrit embedded csum",
            radices: vec![2, 3],
            target: openqudit::circuit::gates::cshift23()
                .to_matrix::<f64>(&[])
                .expect("constant gate"),
            max_blocks: 2,
        },
        // Partitioned workload: a 4-qubit target reachable by a two-round partitioned
        // template over the [0,1]|[2,3] cut — the width the monolithic search cannot
        // practically reach. `report_synthesis` compiles it through the partitioned
        // pipeline, folding the partition path into the CI byte-for-byte determinism
        // diff.
        SynthWorkload {
            name: "4-qubit partitioned reachable",
            radices: vec![2, 2, 2, 2],
            target: {
                let round = [(0usize, 1usize), (2, 3), (1, 2)];
                let blocks: Vec<(usize, usize)> = round.iter().cycle().take(6).copied().collect();
                let template =
                    builders::pqc_template(&[2, 2, 2, 2], &blocks).expect("valid template");
                reachable_target(&template, 53)
            },
            max_blocks: 8,
        },
    ]
}

/// The synthesis configuration a workload runs under. Refinement stays enabled: the
/// pass pipeline times the search, refinement, and folding stages separately, so the
/// report no longer needs to orchestrate them by hand.
pub fn synthesis_config(workload: &SynthWorkload) -> SynthesisConfig {
    let mut config = SynthesisConfig::with_radices(workload.radices.clone());
    config.max_blocks = workload.max_blocks;
    config
}

/// Builds a deliberately over-deep, already-instantiated synthesis result for the
/// refinement workloads: the target is reachable at `lean_blocks.len()` entangling
/// blocks, but the result carries `padding` extra blocks for `refine` to delete.
///
/// # Panics
///
/// Panics if the padded template fails to instantiate below the success threshold
/// (it is overcomplete for the target, so multi-start instantiation converges).
pub fn padded_synthesis_result(
    radices: &[usize],
    lean_blocks: &[(usize, usize)],
    padding: usize,
    seed: u64,
    cache: &ExpressionCache,
) -> (SynthesisResult, Matrix<f64>) {
    use openqudit::circuit::builders;
    let lean = builders::pqc_template(radices, lean_blocks).expect("valid template");
    let target = reachable_target(&lean, seed);
    let mut blocks = lean_blocks.to_vec();
    for k in 0..padding {
        blocks.push(lean_blocks[k % lean_blocks.len()]);
    }
    let circuit = builders::pqc_template(radices, &blocks).expect("valid padded template");
    let outcome = instantiate_circuit(
        &circuit,
        &target,
        &InstantiateConfig { starts: 8, seed: seed ^ 0x9e37, ..Default::default() },
        cache,
    );
    assert!(
        outcome.success,
        "padded template failed to instantiate: infidelity {}",
        outcome.infidelity
    );
    let result = SynthesisResult {
        blocks,
        params: outcome.params,
        infidelity: outcome.infidelity,
        success: true,
        nodes_expanded: 0,
        blocks_deleted: 0,
        refined_infidelity: None,
        params_folded: 0,
        gates_constified: 0,
        circuit,
    };
    (result, target)
}

/// Formats a duration in engineering units for report tables.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.3} µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_and_have_parameters() {
        for w in fig5_workloads() {
            assert!(w.circuit.num_params() > 0, "{} should be parameterized", w.name);
            assert!(w.circuit.num_ops() > 0);
        }
        assert!(fig5_workloads_small().len() < fig5_workloads().len());
    }

    #[test]
    fn construction_builders_agree_on_op_counts() {
        for n in [3usize, 5] {
            assert_eq!(build_qft_openqudit(n).num_ops(), build_qft_baseline(n).num_ops());
            assert_eq!(build_dtc_openqudit(n).num_ops(), build_dtc_baseline(n).num_ops());
        }
    }

    #[test]
    fn both_backends_instantiate_the_same_workload() {
        let w = &fig5_workloads_small()[0];
        let target = reachable_targets(&w.circuit, 1, 3).remove(0);
        let cache = ExpressionCache::new();
        let config = InstantiateConfig { starts: 2, ..Default::default() };
        let oq = run_openqudit_instantiation(&w.circuit, &target, &config, &cache);
        let bl = run_baseline_instantiation(&w.circuit, &target, &config);
        assert!(oq.infidelity < 1e-4, "openqudit infidelity {}", oq.infidelity);
        assert!(bl.infidelity < 1e-4, "baseline infidelity {}", bl.infidelity);
    }

    #[test]
    fn synthesis_workloads_are_well_formed() {
        for w in synthesis_workloads() {
            let dim: usize = w.radices.iter().product();
            assert_eq!(w.target.rows(), dim, "{}", w.name);
            assert!(w.target.is_unitary(1e-8), "{}", w.name);
            let config = synthesis_config(&w);
            assert_eq!(config.radices, w.radices);
            assert_eq!(config.max_blocks, w.max_blocks);
        }
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_secs(2)).contains('s'));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_micros(7)).contains("µs"));
    }
}
