//! [`GateSet`] — the pluggable registry of synthesis building-block gates.
//!
//! The paper's extensibility claim is that a user-defined gate — a plain QGL
//! [`UnitaryExpression`] — flows through instantiation, JIT compilation, and synthesis
//! unchanged. The registry is where that plumbing starts: synthesis building blocks are
//! looked up here by radix (local gates) and by radix *pair* (entanglers), instead of
//! being hard-coded per radix, so registering `CSHIFT23` for the `(2, 3)` pair makes
//! qubit–qutrit edges synthesizable with zero changes anywhere else in the pipeline.
//!
//! Registration validates what the rest of the pipeline assumes: arity (one qudit for
//! locals, two for entanglers) and numerical unitarity, measured through
//! [`Matrix::unitary_deviation`](qudit_tensor::Matrix::unitary_deviation) at several
//! deterministic parameter points.
//!
//! # Example
//!
//! ```
//! use qudit_circuit::{gates, GateSet};
//!
//! // Swap the default CNOT entangler for RZZ while keeping the U3 locals.
//! let mut set = GateSet::new();
//! set.register_local(gates::u3())?;
//! set.register_entangler(gates::rzz())?;
//! assert_eq!(set.entangler(2, 2).unwrap().name(), "RZZ");
//! assert_eq!(set.local(2).unwrap().name(), "U3");
//! # Ok::<(), qudit_circuit::CircuitError>(())
//! ```

use std::collections::{BTreeMap, BTreeSet};

use qudit_qgl::UnitaryExpression;

use crate::circuit::{CircuitError, Result};

/// How many deterministic parameter points [`GateSet`] registration probes when
/// checking a parameterized expression for unitarity.
const VALIDATION_SAMPLES: usize = 8;

/// Element-wise `|U†U − I|` bound a registered expression must satisfy at every probe
/// point.
const VALIDATION_TOLERANCE: f64 = 1e-9;

/// A registry of synthesis building-block gates: one general *local* gate per radix and
/// one *entangler* per (unordered) radix pair.
///
/// Lookups normalize the pair key, and an entangler registered for `(2, 3)` serves
/// edges in either wire order — appliers orient its wires to match the expression's
/// radices. Later registrations for the same key replace earlier ones, so a default
/// set can be built first and selectively overridden.
#[derive(Debug, Clone, Default)]
pub struct GateSet {
    locals: BTreeMap<usize, UnitaryExpression>,
    entanglers: BTreeMap<(usize, usize), UnitaryExpression>,
}

impl GateSet {
    /// An empty registry.
    pub fn new() -> Self {
        GateSet::default()
    }

    /// The default registry for a system with the given radices: U3/CNOT for qubits,
    /// the general qutrit gate/CSUM for qutrits, and the embedded controlled-shift
    /// [`crate::gates::cshift23`] for mixed `(2, 3)` pairs. Radices without a built-in gate
    /// set are skipped, surfacing later as lookup failures
    /// ([`crate::builders::pqc_initial_with`] and the synthesis layer generator turn
    /// those into structured errors).
    pub fn default_for(radices: &[usize]) -> GateSet {
        let mut set = GateSet::new();
        let distinct: BTreeSet<usize> = radices.iter().copied().collect();
        // The built-in gates are unitary by construction (their own tests pin this
        // down), so insert directly instead of re-validating per call.
        for &radix in &distinct {
            if let Some(local) = crate::builders::synthesis_local(radix) {
                set.locals.insert(radix, local);
            }
        }
        for &a in &distinct {
            for &b in distinct.range(a..) {
                if let Some(entangler) = crate::builders::synthesis_entangler_pair(a, b) {
                    set.entanglers.insert((a, b), entangler);
                }
            }
        }
        set
    }

    /// Builds a registry from the gates a template-shaped circuit actually uses:
    /// its single-qudit expressions register as locals, its two-qudit expressions as
    /// entanglers. The circuit's expression table was already validated by
    /// [`crate::QuditCircuit::cache_operation`], so entries are inserted without
    /// re-probing — this is how refinement recovers the registry of a result whose
    /// synthesis configuration is no longer at hand.
    pub fn from_circuit(circuit: &crate::QuditCircuit) -> GateSet {
        let mut set = GateSet::new();
        for expr in circuit.expressions() {
            match expr.num_qudits() {
                1 => {
                    set.locals.insert(expr.radices()[0], expr.clone());
                }
                2 => {
                    let (ra, rb) = (expr.radices()[0], expr.radices()[1]);
                    set.entanglers.insert((ra.min(rb), ra.max(rb)), expr.clone());
                }
                _ => {}
            }
        }
        set
    }

    /// Registers a single-qudit local gate, keyed by its radix.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidExpression`] when the expression does not act on
    /// exactly one qudit or is not numerically unitary.
    pub fn register_local(&mut self, expr: UnitaryExpression) -> Result<()> {
        if expr.num_qudits() != 1 {
            return Err(CircuitError::InvalidExpression {
                detail: format!(
                    "local gate '{}' must act on exactly one qudit, but acts on {}",
                    expr.name(),
                    expr.num_qudits()
                ),
            });
        }
        validate_unitary(&expr)?;
        self.locals.insert(expr.radices()[0], expr);
        Ok(())
    }

    /// Registers a two-qudit entangler, keyed by its normalized radix pair.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidExpression`] when the expression does not act on
    /// exactly two qudits or is not numerically unitary.
    pub fn register_entangler(&mut self, expr: UnitaryExpression) -> Result<()> {
        if expr.num_qudits() != 2 {
            return Err(CircuitError::InvalidExpression {
                detail: format!(
                    "entangler '{}' must act on exactly two qudits, but acts on {}",
                    expr.name(),
                    expr.num_qudits()
                ),
            });
        }
        validate_unitary(&expr)?;
        let (ra, rb) = (expr.radices()[0], expr.radices()[1]);
        self.entanglers.insert((ra.min(rb), ra.max(rb)), expr);
        Ok(())
    }

    /// The registered local gate for `radix`, if any.
    pub fn local(&self, radix: usize) -> Option<&UnitaryExpression> {
        self.locals.get(&radix)
    }

    /// The registered entangler for the (unordered) radix pair, if any.
    pub fn entangler(&self, ra: usize, rb: usize) -> Option<&UnitaryExpression> {
        self.entanglers.get(&(ra.min(rb), ra.max(rb)))
    }

    /// All registered locals, in ascending radix order.
    pub fn locals(&self) -> impl Iterator<Item = (usize, &UnitaryExpression)> {
        self.locals.iter().map(|(&radix, expr)| (radix, expr))
    }

    /// All registered entanglers, in ascending (normalized) radix-pair order.
    pub fn entanglers(&self) -> impl Iterator<Item = ((usize, usize), &UnitaryExpression)> {
        self.entanglers.iter().map(|(&pair, expr)| (pair, expr))
    }
}

/// The wire order that aligns a registered entangler's expression radices with wires
/// `(a, b)` of a system with `radices`: `[a, b]` when they match in order, `[b, a]`
/// for a pair registered with the opposite orientation (same-radix pairs always get
/// `[a, b]`). Every applier of a registry entangler — circuit builder and incremental
/// network extension alike — must route through this one rule.
pub fn oriented_entangler_wires(
    entangler: &UnitaryExpression,
    a: usize,
    b: usize,
    radices: &[usize],
) -> Vec<usize> {
    if entangler.radices() == [radices[a], radices[b]] {
        vec![a, b]
    } else {
        vec![b, a]
    }
}

/// Probes the expression for unitarity at several deterministic parameter points
/// (one point suffices for constants).
fn validate_unitary(expr: &UnitaryExpression) -> Result<()> {
    let samples = if expr.num_params() == 0 { 1 } else { VALIDATION_SAMPLES };
    for sample in 0..samples {
        // Golden-ratio low-discrepancy stream over (−π, π), distinct per sample.
        let params: Vec<f64> = (0..expr.num_params())
            .map(|k| {
                let step = (sample * expr.num_params() + k + 1) as f64;
                let frac = (step * 0.6180339887498949) % 1.0;
                std::f64::consts::PI * (2.0 * frac - 1.0)
            })
            .collect();
        let matrix =
            expr.to_matrix::<f64>(&params).map_err(|e| CircuitError::InvalidExpression {
                detail: format!("expression '{}' failed to evaluate: {e}", expr.name()),
            })?;
        // A NaN deviation (poisoned elements) must fail too, so compare through the
        // accepting branch rather than `>=` alone.
        let deviation = matrix.unitary_deviation();
        let acceptable = deviation < VALIDATION_TOLERANCE;
        if !acceptable {
            return Err(CircuitError::InvalidExpression {
                detail: format!(
                    "expression '{}' is not unitary at {params:?}: max |U†U − I| element \
                     is {deviation:.3e}",
                    expr.name()
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn default_registry_covers_pure_and_mixed_pairs() {
        let set = GateSet::default_for(&[2, 3]);
        assert_eq!(set.local(2).unwrap().name(), "U3");
        assert_eq!(set.local(3).unwrap().name(), "QutritU");
        assert_eq!(set.entangler(2, 2).unwrap().name(), "CNOT");
        assert_eq!(set.entangler(3, 3).unwrap().name(), "CSUM");
        assert_eq!(set.entangler(2, 3).unwrap().name(), "CSHIFT23");
        // Pair lookup is order-normalized.
        assert_eq!(set.entangler(3, 2).unwrap().name(), "CSHIFT23");
        assert!(set.local(5).is_none());
        assert_eq!(set.locals().count(), 2);
        assert_eq!(set.entanglers().count(), 3);
    }

    #[test]
    fn default_registry_covers_every_radix_234_pair() {
        // With the (2, 4) and (3, 4) embedded controlled-shifts registered, a mixed
        // qubit–qutrit–ququart system has an entangler on every distinct pair.
        let set = GateSet::default_for(&[2, 3, 4]);
        assert_eq!(set.entangler(2, 4).unwrap().name(), "CSHIFT24");
        assert_eq!(set.entangler(4, 2).unwrap().name(), "CSHIFT24");
        assert_eq!(set.entangler(3, 4).unwrap().name(), "CSHIFT34");
        assert_eq!(set.entangler(4, 3).unwrap().name(), "CSHIFT34");
        assert_eq!(set.locals().count(), 3);
        assert_eq!(set.entanglers().count(), 6);
    }

    #[test]
    fn default_registry_skips_unsupported_radices() {
        let set = GateSet::default_for(&[2, 5]);
        assert!(set.local(2).is_some());
        assert!(set.local(5).is_none());
        assert!(set.entangler(2, 5).is_none());
        assert!(set.entangler(5, 5).is_none());
    }

    #[test]
    fn registration_validates_arity() {
        let mut set = GateSet::new();
        // A two-qudit gate is not a local; a one-qudit gate is not an entangler.
        assert!(matches!(
            set.register_local(gates::cnot()),
            Err(CircuitError::InvalidExpression { .. })
        ));
        assert!(matches!(
            set.register_entangler(gates::u3()),
            Err(CircuitError::InvalidExpression { .. })
        ));
    }

    #[test]
    fn registration_validates_unitarity_with_measured_deviation() {
        let mut set = GateSet::new();
        let bad = UnitaryExpression::new("Bad() { [[2, 0], [0, 2]] }").unwrap();
        match set.register_local(bad) {
            Err(CircuitError::InvalidExpression { detail }) => {
                assert!(detail.contains("not unitary"), "{detail}");
                // The measured deviation appears in the message: |2·2 − 1| = 3.
                assert!(detail.contains("3.000e0"), "{detail}");
            }
            other => panic!("expected InvalidExpression, got {other:?}"),
        }
        // A parameterized expression that is only unitary at some points must be
        // caught by the multi-point probe (sin(x)-scaled identity).
        let sometimes =
            UnitaryExpression::new("Sometimes(x) { [[sin(x), 0], [0, sin(x)]] }").unwrap();
        assert!(set.register_local(sometimes).is_err());
    }

    #[test]
    fn later_registration_replaces_earlier() {
        let mut set = GateSet::default_for(&[2, 2]);
        set.register_entangler(gates::cz()).unwrap();
        assert_eq!(set.entangler(2, 2).unwrap().name(), "CZ");
        set.register_local(gates::rx()).unwrap();
        assert_eq!(set.local(2).unwrap().name(), "RX");
    }
}
