//! A library of standard qubit and qutrit gates defined in QGL.
//!
//! Every gate here is a plain [`UnitaryExpression`] built from its on-paper definition —
//! exactly how a domain expert would extend the compiler (Listing 2 of the paper). The
//! benchmark circuits (QFT, DTC, and the QSearch-style PQC ladders of Fig. 5) are
//! assembled from these.

use qudit_qgl::UnitaryExpression;

fn must(source: &str) -> UnitaryExpression {
    UnitaryExpression::new(source).unwrap_or_else(|e| panic!("builtin gate failed to parse: {e}"))
}

/// The parameterized single-qubit U3 gate (3 parameters), able to express any
/// single-qubit unitary.
pub fn u3() -> UnitaryExpression {
    must(
        "U3(theta, phi, lambda) {
            [
                [ cos(theta/2), ~ e^(i*lambda) * sin(theta/2) ],
                [ e^(i*phi) * sin(theta/2), e^(i*(phi+lambda)) * cos(theta/2) ],
            ]
        }",
    )
}

/// The U2 gate (2 parameters): a U3 with θ fixed at π/2.
pub fn u2() -> UnitaryExpression {
    must(
        "U2(phi, lambda) {
            [
                [ 1/sqrt(2), ~ e^(i*lambda) / sqrt(2) ],
                [ e^(i*phi) / sqrt(2), e^(i*(phi+lambda)) / sqrt(2) ],
            ]
        }",
    )
}

/// The U1 (phase) gate.
pub fn u1() -> UnitaryExpression {
    must("U1(lambda) { [[1, 0], [0, e^(i*lambda)]] }")
}

/// X-axis rotation.
pub fn rx() -> UnitaryExpression {
    must(
        "RX(theta) {
            [[cos(theta/2), ~i*sin(theta/2)], [~i*sin(theta/2), cos(theta/2)]]
        }",
    )
}

/// Y-axis rotation.
pub fn ry() -> UnitaryExpression {
    must(
        "RY(theta) {
            [[cos(theta/2), ~sin(theta/2)], [sin(theta/2), cos(theta/2)]]
        }",
    )
}

/// Z-axis rotation.
pub fn rz() -> UnitaryExpression {
    must("RZ(theta) { [[e^(~i*theta/2), 0], [0, e^(i*theta/2)]] }")
}

/// Two-qubit ZZ interaction (the DTC benchmark's entangling gate, Listing 4).
pub fn rzz() -> UnitaryExpression {
    must(
        "RZZ(theta) {
            [[e^(~i*theta/2), 0, 0, 0],
             [0, e^(i*theta/2), 0, 0],
             [0, 0, e^(i*theta/2), 0],
             [0, 0, 0, e^(~i*theta/2)]]
        }",
    )
}

/// Hadamard gate.
pub fn hadamard() -> UnitaryExpression {
    must(
        "H() {
            [[1/sqrt(2), 1/sqrt(2)], [1/sqrt(2), ~1/sqrt(2)]]
        }",
    )
}

/// Pauli-X gate.
pub fn x() -> UnitaryExpression {
    must("X() { [[0, 1], [1, 0]] }")
}

/// Pauli-Y gate.
pub fn y() -> UnitaryExpression {
    must("Y() { [[0, ~i], [i, 0]] }")
}

/// Pauli-Z gate.
pub fn z() -> UnitaryExpression {
    must("Z() { [[1, 0], [0, ~1]] }")
}

/// Controlled-NOT gate (control on the first qubit).
pub fn cnot() -> UnitaryExpression {
    must("CNOT() { [[1,0,0,0],[0,1,0,0],[0,0,0,1],[0,0,1,0]] }")
}

/// Controlled-Z gate.
pub fn cz() -> UnitaryExpression {
    must("CZ() { [[1,0,0,0],[0,1,0,0],[0,0,1,0],[0,0,0,~1]] }")
}

/// SWAP gate.
pub fn swap() -> UnitaryExpression {
    must("SWAP() { [[1,0,0,0],[0,0,1,0],[0,1,0,0],[0,0,0,1]] }")
}

/// Controlled phase gate (1 parameter) — the entangling gate of the QFT circuit.
pub fn cphase() -> UnitaryExpression {
    must("CP(theta) { [[1,0,0,0],[0,1,0,0],[0,0,1,0],[0,0,0,e^(i*theta)]] }")
}

/// The two-qutrit CSUM gate: |a, b⟩ → |a, (a+b) mod 3⟩ — the entangling gate of the
/// qutrit PQC benchmarks (Fig. 5).
pub fn csum() -> UnitaryExpression {
    must(
        "CSUM<3, 3>() {
            [[1,0,0, 0,0,0, 0,0,0],
             [0,1,0, 0,0,0, 0,0,0],
             [0,0,1, 0,0,0, 0,0,0],
             [0,0,0, 0,0,1, 0,0,0],
             [0,0,0, 1,0,0, 0,0,0],
             [0,0,0, 0,1,0, 0,0,0],
             [0,0,0, 0,0,0, 0,1,0],
             [0,0,0, 0,0,0, 0,0,1],
             [0,0,0, 0,0,0, 1,0,0]]
        }",
    )
}

/// The embedded controlled-shift gate on a qubit–qutrit pair: |a, b⟩ → |a, (a+b) mod 3⟩
/// with the qubit as control. This is the CSUM gate restricted to a two-level control —
/// the mixed-radix entangler the default synthesis gate set registers for (2, 3) edges,
/// defined (like every other gate here) as a plain QGL unitary expression.
pub fn cshift23() -> UnitaryExpression {
    must(
        "CSHIFT23<2, 3>() {
            [[1,0,0, 0,0,0],
             [0,1,0, 0,0,0],
             [0,0,1, 0,0,0],
             [0,0,0, 0,0,1],
             [0,0,0, 1,0,0],
             [0,0,0, 0,1,0]]
        }",
    )
}

/// The embedded controlled-shift gate on a qubit–ququart pair: |a, b⟩ → |a, (a+b) mod 4⟩
/// with the qubit as control — [`csum4`] restricted to a two-level control, following
/// the same recipe as [`cshift23`]. This is the mixed-radix entangler the default
/// synthesis gate set registers for (2, 4) edges.
pub fn cshift24() -> UnitaryExpression {
    must(
        "CSHIFT24<2, 4>() {
            [[1,0,0,0, 0,0,0,0],
             [0,1,0,0, 0,0,0,0],
             [0,0,1,0, 0,0,0,0],
             [0,0,0,1, 0,0,0,0],
             [0,0,0,0, 0,0,0,1],
             [0,0,0,0, 1,0,0,0],
             [0,0,0,0, 0,1,0,0],
             [0,0,0,0, 0,0,1,0]]
        }",
    )
}

/// The embedded controlled-shift gate on a qutrit–ququart pair: |a, b⟩ → |a, (a+b) mod 4⟩
/// with the qutrit as control (control levels 0/1/2 shift the ququart by 0/1/2). The
/// mixed-radix entangler the default synthesis gate set registers for (3, 4) edges,
/// built with the same embedded-controlled-shift recipe as [`cshift23`].
pub fn cshift34() -> UnitaryExpression {
    must(
        "CSHIFT34<3, 4>() {
            [[1,0,0,0, 0,0,0,0, 0,0,0,0],
             [0,1,0,0, 0,0,0,0, 0,0,0,0],
             [0,0,1,0, 0,0,0,0, 0,0,0,0],
             [0,0,0,1, 0,0,0,0, 0,0,0,0],
             [0,0,0,0, 0,0,0,1, 0,0,0,0],
             [0,0,0,0, 1,0,0,0, 0,0,0,0],
             [0,0,0,0, 0,1,0,0, 0,0,0,0],
             [0,0,0,0, 0,0,1,0, 0,0,0,0],
             [0,0,0,0, 0,0,0,0, 0,0,1,0],
             [0,0,0,0, 0,0,0,0, 0,0,0,1],
             [0,0,0,0, 0,0,0,0, 1,0,0,0],
             [0,0,0,0, 0,0,0,0, 0,1,0,0]]
        }",
    )
}

/// The two-ququart CSUM gate: |a, b⟩ → |a, (a+b) mod 4⟩ — the radix-4 analogue of the
/// qutrit [`csum`], and the entangler the default synthesis gate set registers for
/// `(4, 4)` pairs. Like every other built-in it is a plain QGL unitary expression: the
/// registry entry is all it takes to make ququart pairs synthesizable.
pub fn csum4() -> UnitaryExpression {
    must(
        "CSUM4<4, 4>() {
            [[1,0,0,0, 0,0,0,0, 0,0,0,0, 0,0,0,0],
             [0,1,0,0, 0,0,0,0, 0,0,0,0, 0,0,0,0],
             [0,0,1,0, 0,0,0,0, 0,0,0,0, 0,0,0,0],
             [0,0,0,1, 0,0,0,0, 0,0,0,0, 0,0,0,0],
             [0,0,0,0, 0,0,0,1, 0,0,0,0, 0,0,0,0],
             [0,0,0,0, 1,0,0,0, 0,0,0,0, 0,0,0,0],
             [0,0,0,0, 0,1,0,0, 0,0,0,0, 0,0,0,0],
             [0,0,0,0, 0,0,1,0, 0,0,0,0, 0,0,0,0],
             [0,0,0,0, 0,0,0,0, 0,0,1,0, 0,0,0,0],
             [0,0,0,0, 0,0,0,0, 0,0,0,1, 0,0,0,0],
             [0,0,0,0, 0,0,0,0, 1,0,0,0, 0,0,0,0],
             [0,0,0,0, 0,0,0,0, 0,1,0,0, 0,0,0,0],
             [0,0,0,0, 0,0,0,0, 0,0,0,0, 0,1,0,0],
             [0,0,0,0, 0,0,0,0, 0,0,0,0, 0,0,1,0],
             [0,0,0,0, 0,0,0,0, 0,0,0,0, 0,0,0,1],
             [0,0,0,0, 0,0,0,0, 0,0,0,0, 1,0,0,0]]
        }",
    )
}

/// A single-qutrit phase gate with two independent phases — the qutrit analogue of the
/// local rotations used in the Fig. 5 qutrit circuits.
pub fn qutrit_phase() -> UnitaryExpression {
    must(
        "P3<3>(a, b) {
            [[1, 0, 0],
             [0, e^(i*a), 0],
             [0, 0, e^(i*b)]]
        }",
    )
}

/// A general parameterized single-qutrit gate built from Gell-Mann-style rotations on
/// the three two-level subspaces (8 parameters). Used by the qutrit PQC benchmarks as
/// the local mixing gate (the qutrit counterpart of U3).
pub fn qutrit_u() -> UnitaryExpression {
    // Embedded two-level rotations: R01(a,b) · R02(c,d) · R12(u,f) · diag phases(g,h).
    // Note: `e`, `i`, and `pi` are reserved constants in QGL and cannot be parameters.
    must(
        "QutritU<3>(a, b, c, d, u, f, g, h) {
            [[cos(a/2), ~e^(i*b)*sin(a/2), 0],
             [e^(~i*b)*sin(a/2), cos(a/2), 0],
             [0, 0, 1]]
            *
            [[cos(c/2), 0, ~e^(i*d)*sin(c/2)],
             [0, 1, 0],
             [e^(~i*d)*sin(c/2), 0, cos(c/2)]]
            *
            [[1, 0, 0],
             [0, cos(u/2), ~e^(i*f)*sin(u/2)],
             [0, e^(~i*f)*sin(u/2), cos(u/2)]]
            *
            [[1, 0, 0],
             [0, e^(i*g), 0],
             [0, 0, e^(i*h)]]
        }",
    )
}

/// A general parameterized single-ququart gate built from embedded two-level rotations
/// on all six two-level subspaces plus three relative phases (15 parameters, the
/// dimension of SU(4)) — the radix-4 counterpart of [`u3`] and [`qutrit_u`], used as
/// the local mixing gate of the default ququart synthesis gate set.
pub fn ququart_u() -> UnitaryExpression {
    // Givens-style ladder: R01 · R02 · R03 · R12 · R13 · R23 · diag phases.
    // Note: `e`, `i`, and `pi` are reserved constants in QGL and cannot be parameters.
    must(
        "QuquartU<4>(a, b, c, d, f, g, h, k, l, m, n, o, p, q, r) {
            [[cos(a/2), ~e^(i*b)*sin(a/2), 0, 0],
             [e^(~i*b)*sin(a/2), cos(a/2), 0, 0],
             [0, 0, 1, 0],
             [0, 0, 0, 1]]
            *
            [[cos(c/2), 0, ~e^(i*d)*sin(c/2), 0],
             [0, 1, 0, 0],
             [e^(~i*d)*sin(c/2), 0, cos(c/2), 0],
             [0, 0, 0, 1]]
            *
            [[cos(f/2), 0, 0, ~e^(i*g)*sin(f/2)],
             [0, 1, 0, 0],
             [0, 0, 1, 0],
             [e^(~i*g)*sin(f/2), 0, 0, cos(f/2)]]
            *
            [[1, 0, 0, 0],
             [0, cos(h/2), ~e^(i*k)*sin(h/2), 0],
             [0, e^(~i*k)*sin(h/2), cos(h/2), 0],
             [0, 0, 0, 1]]
            *
            [[1, 0, 0, 0],
             [0, cos(l/2), 0, ~e^(i*m)*sin(l/2)],
             [0, 0, 1, 0],
             [0, e^(~i*m)*sin(l/2), 0, cos(l/2)]]
            *
            [[1, 0, 0, 0],
             [0, 1, 0, 0],
             [0, 0, cos(n/2), ~e^(i*o)*sin(n/2)],
             [0, 0, e^(~i*o)*sin(n/2), cos(n/2)]]
            *
            [[1, 0, 0, 0],
             [0, e^(i*p), 0, 0],
             [0, 0, e^(i*q), 0],
             [0, 0, 0, e^(i*r)]]
        }",
    )
}

/// Returns every gate in the library with its name (used by exhaustive tests).
pub fn all_gates() -> Vec<(&'static str, UnitaryExpression)> {
    vec![
        ("U3", u3()),
        ("U2", u2()),
        ("U1", u1()),
        ("RX", rx()),
        ("RY", ry()),
        ("RZ", rz()),
        ("RZZ", rzz()),
        ("H", hadamard()),
        ("X", x()),
        ("Y", y()),
        ("Z", z()),
        ("CNOT", cnot()),
        ("CZ", cz()),
        ("SWAP", swap()),
        ("CP", cphase()),
        ("CSUM", csum()),
        ("CSUM4", csum4()),
        ("CSHIFT23", cshift23()),
        ("CSHIFT24", cshift24()),
        ("CSHIFT34", cshift34()),
        ("P3", qutrit_phase()),
        ("QutritU", qutrit_u()),
        ("QuquartU", ququart_u()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_gate_is_unitary_at_random_parameters() {
        for (name, gate) in all_gates() {
            let params: Vec<f64> = (0..gate.num_params()).map(|k| 0.37 + 0.71 * k as f64).collect();
            assert!(gate.check_unitary(&params, 1e-10), "{name} is not unitary at {params:?}");
        }
    }

    #[test]
    fn gate_metadata() {
        assert_eq!(u3().num_params(), 3);
        assert_eq!(u2().num_params(), 2);
        assert_eq!(rzz().radices(), &[2, 2]);
        assert_eq!(csum().radices(), &[3, 3]);
        assert_eq!(qutrit_phase().radices(), &[3]);
        assert_eq!(qutrit_u().num_params(), 8);
        assert_eq!(cnot().num_params(), 0);
        assert_eq!(csum4().radices(), &[4, 4]);
        assert_eq!(ququart_u().radices(), &[4]);
        assert_eq!(ququart_u().num_params(), 15);
    }

    #[test]
    fn csum4_adds_modulo_four() {
        let m = csum4().to_matrix::<f64>(&[]).unwrap();
        // |a,b⟩ index = 4a+b ↦ |a, (a+b) mod 4⟩
        for a in 0..4usize {
            for b in 0..4usize {
                let from = 4 * a + b;
                let to = 4 * a + (a + b) % 4;
                assert_eq!(m.get(to, from).re, 1.0, "|{a},{b}>");
            }
        }
        assert!(m.is_unitary(1e-14));
    }

    #[test]
    fn ququart_u_reaches_nontrivial_unitaries() {
        // All-zero parameters give the identity; the ladder's rotations move every
        // basis state once excited.
        let id = ququart_u().to_matrix::<f64>(&[0.0; 15]).unwrap();
        assert!(id.is_identity(1e-14));
        let params: Vec<f64> = (0..15).map(|k| 0.23 + 0.31 * k as f64).collect();
        let u = ququart_u().to_matrix::<f64>(&params).unwrap();
        assert!(u.is_unitary(1e-10));
        for col in 0..4 {
            let mut moved = 0.0;
            for row in 0..4 {
                if row != col {
                    moved += u.get(row, col).norm_sqr();
                }
            }
            assert!(moved > 1e-3, "column {col} untouched by the ladder");
        }
    }

    #[test]
    fn u2_is_u3_at_half_pi() {
        let from_u3 = u3().to_matrix::<f64>(&[std::f64::consts::FRAC_PI_2, 0.4, 1.2]).unwrap();
        let direct = u2().to_matrix::<f64>(&[0.4, 1.2]).unwrap();
        assert!(from_u3.max_elementwise_distance(&direct) < 1e-12);
    }

    #[test]
    fn cnot_flips_target_when_control_set() {
        let m = cnot().to_matrix::<f64>(&[]).unwrap();
        // |10⟩ (index 2) ↦ |11⟩ (index 3)
        assert_eq!(m.get(3, 2).re, 1.0);
        assert_eq!(m.get(2, 3).re, 1.0);
        assert_eq!(m.get(2, 2).re, 0.0);
    }

    #[test]
    fn csum_adds_modulo_three() {
        let m = csum().to_matrix::<f64>(&[]).unwrap();
        // |a,b⟩ index = 3a+b ↦ |a, a+b mod 3⟩
        for a in 0..3usize {
            for b in 0..3usize {
                let from = 3 * a + b;
                let to = 3 * a + (a + b) % 3;
                assert_eq!(m.get(to, from).re, 1.0, "|{a},{b}>");
            }
        }
    }

    #[test]
    fn cshift23_shifts_target_by_control() {
        let m = cshift23().to_matrix::<f64>(&[]).unwrap();
        // |a,b⟩ index = 3a+b ↦ |a, (a+b) mod 3⟩, with a ∈ {0, 1}.
        for a in 0..2usize {
            for b in 0..3usize {
                let from = 3 * a + b;
                let to = 3 * a + (a + b) % 3;
                assert_eq!(m.get(to, from).re, 1.0, "|{a},{b}>");
            }
        }
        assert!(m.is_unitary(1e-14));
        assert_eq!(cshift23().radices(), &[2, 3]);
    }

    #[test]
    fn cshift24_shifts_target_by_control() {
        let m = cshift24().to_matrix::<f64>(&[]).unwrap();
        // |a,b⟩ index = 4a+b ↦ |a, (a+b) mod 4⟩, with a ∈ {0, 1}.
        for a in 0..2usize {
            for b in 0..4usize {
                let from = 4 * a + b;
                let to = 4 * a + (a + b) % 4;
                assert_eq!(m.get(to, from).re, 1.0, "|{a},{b}>");
            }
        }
        assert!(m.is_unitary(1e-14));
        assert_eq!(cshift24().radices(), &[2, 4]);
    }

    #[test]
    fn cshift34_shifts_target_by_control() {
        let m = cshift34().to_matrix::<f64>(&[]).unwrap();
        // |a,b⟩ index = 4a+b ↦ |a, (a+b) mod 4⟩, with a ∈ {0, 1, 2}.
        for a in 0..3usize {
            for b in 0..4usize {
                let from = 4 * a + b;
                let to = 4 * a + (a + b) % 4;
                assert_eq!(m.get(to, from).re, 1.0, "|{a},{b}>");
            }
        }
        assert!(m.is_unitary(1e-14));
        assert_eq!(cshift34().radices(), &[3, 4]);
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let m = rz().to_matrix::<f64>(&[1.4]).unwrap();
        assert!((m.get(0, 0).arg() + 0.7).abs() < 1e-14);
        assert!((m.get(1, 1).arg() - 0.7).abs() < 1e-14);
        assert_eq!(m.get(0, 1).abs(), 0.0);
    }

    #[test]
    fn rzz_diagonal_signs() {
        let m = rzz().to_matrix::<f64>(&[0.9]).unwrap();
        assert!((m.get(0, 0).arg() + 0.45).abs() < 1e-14);
        assert!((m.get(1, 1).arg() - 0.45).abs() < 1e-14);
        assert!((m.get(2, 2).arg() - 0.45).abs() < 1e-14);
        assert!((m.get(3, 3).arg() + 0.45).abs() < 1e-14);
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = hadamard().to_matrix::<f64>(&[]).unwrap();
        assert!(h.matmul(&h).is_identity(1e-14));
    }
}
