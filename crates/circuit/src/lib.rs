//! # qudit-circuit
//!
//! The circuit-construction layer of the OpenQudit reproduction: a gate library defined
//! entirely in QGL, the [`QuditCircuit`] container with its expression-caching /
//! reference-append mechanism (the Fig. 4 construction-performance mechanism), and
//! builders for the benchmark circuits used throughout the paper's evaluation (QFT, the
//! Benchpress DTC circuit, and the QSearch-style PQC ladders of Fig. 5).
//!
//! # Example
//!
//! ```
//! use qudit_circuit::{gates, QuditCircuit};
//!
//! // Build a Bell-state preparation circuit.
//! let mut circ = QuditCircuit::qubits(2);
//! let h = circ.cache_operation(gates::hadamard())?;
//! let cx = circ.cache_operation(gates::cnot())?;
//! circ.append_ref_constant(h, vec![0], vec![])?;
//! circ.append_ref_constant(cx, vec![0, 1], vec![])?;
//! let unitary = circ.unitary::<f64>(&[])?;
//! assert!(unitary.is_unitary(1e-12));
//! # Ok::<(), qudit_circuit::CircuitError>(())
//! ```

pub mod builders;
pub mod circuit;
pub mod gates;
pub mod gateset;

pub use circuit::{
    embed_gate, CircuitError, ExpressionRef, OpParams, Operation, QuditCircuit, Result,
};
pub use gateset::{oriented_entangler_wires, GateSet};
