//! [`QuditCircuit`] — the extensible circuit representation of the OpenQudit library.
//!
//! The circuit stores each distinct gate definition once (via [`QuditCircuit::cache_operation`])
//! and records operations as lightweight references to those cached expressions. Appending
//! by reference avoids the repeated safety/equality checks that make construction slow in
//! traditional frameworks — this is the mechanism behind the Fig. 4 construction results.

use std::collections::HashMap;

use qudit_qgl::UnitaryExpression;
use qudit_tensor::{Complex, Float, Matrix};

/// Errors produced while building or evaluating a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The gate location does not match the gate's arity or the circuit's qudits.
    InvalidLocation {
        /// Description of the problem.
        detail: String,
    },
    /// A gate's radices do not match the circuit radices at its location.
    RadixMismatch {
        /// Description of the problem.
        detail: String,
    },
    /// An expression reference does not belong to this circuit.
    UnknownReference {
        /// The offending reference index.
        index: usize,
    },
    /// Wrong number of parameter values supplied.
    ParameterCount {
        /// Expected count.
        expected: usize,
        /// Found count.
        found: usize,
    },
    /// A cached expression failed validation.
    InvalidExpression {
        /// Description of the problem.
        detail: String,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::InvalidLocation { detail } => write!(f, "invalid location: {detail}"),
            CircuitError::RadixMismatch { detail } => write!(f, "radix mismatch: {detail}"),
            CircuitError::UnknownReference { index } => {
                write!(f, "unknown expression reference {index}")
            }
            CircuitError::ParameterCount { expected, found } => {
                write!(f, "expected {expected} parameter(s), found {found}")
            }
            CircuitError::InvalidExpression { detail } => {
                write!(f, "invalid expression: {detail}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Result alias for circuit operations.
pub type Result<T> = std::result::Result<T, CircuitError>;

/// A lightweight handle to a gate definition cached in a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExpressionRef(pub(crate) usize);

impl ExpressionRef {
    /// The reference's index into the circuit's expression table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// How an operation obtains its parameter values.
#[derive(Debug, Clone, PartialEq)]
pub enum OpParams {
    /// The operation reads its values from the circuit parameter vector, starting at the
    /// recorded offset.
    Parameterized {
        /// Offset of this operation's first value in the circuit parameter vector.
        offset: usize,
    },
    /// The operation's values are baked in (a constant gate application).
    Constant(Vec<f64>),
}

/// A single gate application.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// Which cached expression this operation applies.
    pub expr: ExpressionRef,
    /// The qudit indices the gate acts on, most-significant first.
    pub location: Vec<usize>,
    /// Parameter binding.
    pub params: OpParams,
}

/// A parameterized quantum circuit over qudits of arbitrary radices.
///
/// # Example
///
/// ```
/// use qudit_circuit::{QuditCircuit, gates};
///
/// let mut circ = QuditCircuit::pure(vec![2, 2]);
/// let u3 = circ.cache_operation(gates::u3())?;
/// let cx = circ.cache_operation(gates::cnot())?;
/// circ.append_ref(u3, vec![0])?;
/// circ.append_ref(u3, vec![1])?;
/// circ.append_ref(cx, vec![0, 1])?;
/// assert_eq!(circ.num_ops(), 3);
/// assert_eq!(circ.num_params(), 6);
/// # Ok::<(), qudit_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuditCircuit {
    radices: Vec<usize>,
    exprs: Vec<UnitaryExpression>,
    key_to_ref: HashMap<String, ExpressionRef>,
    ops: Vec<Operation>,
    num_params: usize,
}

impl QuditCircuit {
    /// Creates an empty circuit over qudits with the given radices.
    ///
    /// # Panics
    ///
    /// Panics if any radix is smaller than 2.
    pub fn pure(radices: Vec<usize>) -> Self {
        assert!(radices.iter().all(|&r| r >= 2), "qudit radices must be at least 2");
        QuditCircuit {
            radices,
            exprs: Vec::new(),
            key_to_ref: HashMap::new(),
            ops: Vec::new(),
            num_params: 0,
        }
    }

    /// Creates an empty circuit over `n` qubits.
    pub fn qubits(n: usize) -> Self {
        QuditCircuit::pure(vec![2; n])
    }

    /// Creates an empty circuit over `n` qutrits.
    pub fn qutrits(n: usize) -> Self {
        QuditCircuit::pure(vec![3; n])
    }

    /// The circuit's qudit radices.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// Number of qudits.
    pub fn num_qudits(&self) -> usize {
        self.radices.len()
    }

    /// Total Hilbert-space dimension (product of the radices).
    pub fn dim(&self) -> usize {
        self.radices.iter().product()
    }

    /// Number of operations appended so far.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of free (circuit-level) parameters.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// The appended operations, in order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// The cached expressions, indexed by [`ExpressionRef::index`].
    pub fn expressions(&self) -> &[UnitaryExpression] {
        &self.exprs
    }

    /// Resolves an expression reference.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownReference`] if the reference does not belong to
    /// this circuit.
    pub fn expression(&self, r: ExpressionRef) -> Result<&UnitaryExpression> {
        self.exprs.get(r.0).ok_or(CircuitError::UnknownReference { index: r.0 })
    }

    /// Caches a gate definition, returning a reference that can be appended cheaply.
    ///
    /// The (one-time) validation performed here — a numerical unitarity check at an
    /// arbitrary parameter point and structural validation already done by
    /// [`UnitaryExpression`] — is exactly the work that per-append construction paths
    /// must repeat and that the reference mechanism amortizes.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidExpression`] if the expression is not numerically
    /// unitary.
    pub fn cache_operation(&mut self, expr: UnitaryExpression) -> Result<ExpressionRef> {
        let key = expr.canonical_key();
        if let Some(&found) = self.key_to_ref.get(&key) {
            return Ok(found);
        }
        let probe: Vec<f64> = (0..expr.num_params()).map(|k| 0.53 + 0.91 * k as f64).collect();
        if !expr.check_unitary(&probe, 1e-8) {
            return Err(CircuitError::InvalidExpression {
                detail: format!("expression '{}' is not unitary", expr.name()),
            });
        }
        let r = ExpressionRef(self.exprs.len());
        self.exprs.push(expr);
        self.key_to_ref.insert(key, r);
        Ok(r)
    }

    fn validate_location(&self, expr: &UnitaryExpression, location: &[usize]) -> Result<()> {
        if location.len() != expr.num_qudits() {
            return Err(CircuitError::InvalidLocation {
                detail: format!(
                    "gate '{}' acts on {} qudit(s) but location has {}",
                    expr.name(),
                    expr.num_qudits(),
                    location.len()
                ),
            });
        }
        let mut seen = vec![false; self.num_qudits()];
        for (&q, &expected_radix) in location.iter().zip(expr.radices().iter()) {
            if q >= self.num_qudits() {
                return Err(CircuitError::InvalidLocation {
                    detail: format!(
                        "qudit index {q} out of range for {} qudits",
                        self.num_qudits()
                    ),
                });
            }
            if seen[q] {
                return Err(CircuitError::InvalidLocation {
                    detail: format!("qudit index {q} repeated in location"),
                });
            }
            seen[q] = true;
            if self.radices[q] != expected_radix {
                return Err(CircuitError::RadixMismatch {
                    detail: format!(
                        "gate '{}' expects radix {expected_radix} on wire, circuit qudit {q} has radix {}",
                        expr.name(),
                        self.radices[q]
                    ),
                });
            }
        }
        Ok(())
    }

    /// Appends a parameterized operation by reference. The gate's parameters become new
    /// trailing entries of the circuit parameter vector.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] for unknown references or invalid locations.
    pub fn append_ref(&mut self, r: ExpressionRef, location: Vec<usize>) -> Result<()> {
        let expr = self.exprs.get(r.0).ok_or(CircuitError::UnknownReference { index: r.0 })?;
        self.validate_location(expr, &location)?;
        let offset = self.num_params;
        self.num_params += expr.num_params();
        self.ops.push(Operation { expr: r, location, params: OpParams::Parameterized { offset } });
        Ok(())
    }

    /// Appends a constant (fully bound) operation by reference.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] for unknown references, invalid locations, or a wrong
    /// number of values.
    pub fn append_ref_constant(
        &mut self,
        r: ExpressionRef,
        location: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<()> {
        let expr = self.exprs.get(r.0).ok_or(CircuitError::UnknownReference { index: r.0 })?;
        self.validate_location(expr, &location)?;
        if values.len() != expr.num_params() {
            return Err(CircuitError::ParameterCount {
                expected: expr.num_params(),
                found: values.len(),
            });
        }
        self.ops.push(Operation { expr: r, location, params: OpParams::Constant(values) });
        Ok(())
    }

    /// Convenience for appending a single-qudit constant operation.
    ///
    /// # Errors
    ///
    /// Same as [`QuditCircuit::append_ref_constant`].
    pub fn append_constant_at(
        &mut self,
        r: ExpressionRef,
        qudit: usize,
        values: Vec<f64>,
    ) -> Result<()> {
        self.append_ref_constant(r, vec![qudit], values)
    }

    /// Caches and appends an expression in one step (the checked, non-amortized path).
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] if validation fails.
    pub fn append_expression(
        &mut self,
        expr: UnitaryExpression,
        location: Vec<usize>,
    ) -> Result<ExpressionRef> {
        let r = self.cache_operation(expr)?;
        self.append_ref(r, location)?;
        Ok(r)
    }

    /// Deletes the operation at `index`, re-packing the parameter offsets of every
    /// surviving parameterized operation.
    ///
    /// Returns the parameter mapping of the deletion: `mapping[k]` is the index the
    /// circuit's (new) `k`-th parameter had *before* the deletion. Refinement passes
    /// use this to project an optimized parameter vector onto the smaller circuit and
    /// warm-start its re-instantiation.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidLocation`] if `index` is out of range.
    pub fn delete_op(&mut self, index: usize) -> Result<Vec<usize>> {
        if index >= self.ops.len() {
            return Err(CircuitError::InvalidLocation {
                detail: format!(
                    "operation index {index} out of range for {} op(s)",
                    self.ops.len()
                ),
            });
        }
        self.ops.remove(index);
        let mut mapping = Vec::with_capacity(self.num_params);
        let mut next_offset = 0usize;
        for op in &mut self.ops {
            if let OpParams::Parameterized { offset } = &mut op.params {
                let count = self.exprs[op.expr.0].num_params();
                mapping.extend(*offset..*offset + count);
                *offset = next_offset;
                next_offset += count;
            }
        }
        self.num_params = next_offset;
        Ok(mapping)
    }

    /// Converts the parameterized operation at `index` into a *constant* application of
    /// the same expression at the given `values`, re-packing the parameter offsets of
    /// every later parameterized operation.
    ///
    /// Constant operations carry their values inline, so downstream consumers (the
    /// tensor-network lowering and the expression JIT) treat the gate as a fixed matrix
    /// instead of a parameterized kernel — the mechanism behind post-synthesis
    /// constant-folding's "compile cheaper expressions" payoff.
    ///
    /// Returns the parameter mapping of the conversion (same convention as
    /// [`QuditCircuit::delete_op`]): `mapping[k]` is the index the circuit's new `k`-th
    /// parameter had before the conversion.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidLocation`] if `index` is out of range,
    /// [`CircuitError::InvalidExpression`] if the operation is already constant, and
    /// [`CircuitError::ParameterCount`] if `values` does not match the expression's
    /// parameter count.
    pub fn constify_op(&mut self, index: usize, values: Vec<f64>) -> Result<Vec<usize>> {
        let op = self.ops.get(index).ok_or_else(|| CircuitError::InvalidLocation {
            detail: format!("operation index {index} out of range for {} op(s)", self.ops.len()),
        })?;
        let expected = self.exprs[op.expr.0].num_params();
        if !matches!(op.params, OpParams::Parameterized { .. }) {
            return Err(CircuitError::InvalidExpression {
                detail: format!("operation {index} is already constant"),
            });
        }
        if values.len() != expected {
            return Err(CircuitError::ParameterCount { expected, found: values.len() });
        }
        self.ops[index].params = OpParams::Constant(values);
        let mut mapping = Vec::with_capacity(self.num_params);
        let mut next_offset = 0usize;
        for op in &mut self.ops {
            if let OpParams::Parameterized { offset } = &mut op.params {
                let count = self.exprs[op.expr.0].num_params();
                mapping.extend(*offset..*offset + count);
                *offset = next_offset;
                next_offset += count;
            }
        }
        self.num_params = next_offset;
        Ok(mapping)
    }

    /// Extracts the parameter values for operation `op` from the circuit parameter
    /// vector.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ParameterCount`] if `params` is shorter than the circuit
    /// requires.
    pub fn op_values(&self, op: &Operation, params: &[f64]) -> Result<Vec<f64>> {
        match &op.params {
            OpParams::Constant(values) => Ok(values.clone()),
            OpParams::Parameterized { offset } => {
                let expr = self.expression(op.expr)?;
                let end = offset + expr.num_params();
                if params.len() < end {
                    return Err(CircuitError::ParameterCount {
                        expected: end,
                        found: params.len(),
                    });
                }
                Ok(params[*offset..end].to_vec())
            }
        }
    }

    /// Computes the circuit unitary by direct full-width matrix accumulation.
    ///
    /// This is the *reference* evaluator: simple, always available, and O(D³) per gate.
    /// The fast path lowers the circuit to a tensor network and executes it on the TNVM.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ParameterCount`] if `params` has the wrong length.
    pub fn unitary<T: Float>(&self, params: &[f64]) -> Result<Matrix<T>> {
        if params.len() != self.num_params {
            return Err(CircuitError::ParameterCount {
                expected: self.num_params,
                found: params.len(),
            });
        }
        let dim = self.dim();
        let mut total = Matrix::<T>::identity(dim);
        for op in &self.ops {
            let expr = self.expression(op.expr)?;
            let values = self.op_values(op, params)?;
            let gate = expr
                .to_matrix::<T>(&values)
                .map_err(|e| CircuitError::InvalidExpression { detail: e.to_string() })?;
            let embedded = embed_gate(&gate, expr.radices(), &op.location, &self.radices);
            total = embedded.matmul(&total);
        }
        Ok(total)
    }
}

/// Embeds a gate acting on `location` (with per-wire radices `gate_radices`) into the
/// full Hilbert space described by `circuit_radices`.
///
/// The element `(row, col)` of the embedded matrix is the gate element selected by the
/// digits of `row`/`col` at the location positions, provided all other digits agree
/// (identity on the rest of the system).
pub fn embed_gate<T: Float>(
    gate: &Matrix<T>,
    gate_radices: &[usize],
    location: &[usize],
    circuit_radices: &[usize],
) -> Matrix<T> {
    let n = circuit_radices.len();
    let dim: usize = circuit_radices.iter().product();
    let digits = |mut flat: usize| -> Vec<usize> {
        let mut d = vec![0usize; n];
        for i in (0..n).rev() {
            d[i] = flat % circuit_radices[i];
            flat /= circuit_radices[i];
        }
        d
    };
    let gate_index = |d: &[usize]| -> usize {
        location.iter().zip(gate_radices.iter()).fold(0usize, |acc, (&q, &r)| acc * r + d[q])
    };
    let mut out = Matrix::<T>::zeros(dim, dim);
    for row in 0..dim {
        let dr = digits(row);
        for col in 0..dim {
            let dc = digits(col);
            // Identity on wires outside the location.
            let mut rest_equal = true;
            for q in 0..n {
                if !location.contains(&q) && dr[q] != dc[q] {
                    rest_equal = false;
                    break;
                }
            }
            if !rest_equal {
                continue;
            }
            let g = gate.get(gate_index(&dr), gate_index(&dc));
            if g != Complex::zero() {
                out.set(row, col, g);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn build_small_circuit_and_count() {
        let mut c = QuditCircuit::qubits(3);
        let u3 = c.cache_operation(gates::u3()).unwrap();
        let cx = c.cache_operation(gates::cnot()).unwrap();
        for q in 0..3 {
            c.append_ref(u3, vec![q]).unwrap();
        }
        c.append_ref(cx, vec![0, 1]).unwrap();
        c.append_ref(cx, vec![1, 2]).unwrap();
        assert_eq!(c.num_ops(), 5);
        assert_eq!(c.num_params(), 9);
        assert_eq!(c.dim(), 8);
        assert_eq!(c.expressions().len(), 2);
    }

    #[test]
    fn cache_operation_dedupes_by_content() {
        let mut c = QuditCircuit::qubits(1);
        let a = c.cache_operation(gates::rx()).unwrap();
        let b = c.cache_operation(gates::rx()).unwrap();
        assert_eq!(a, b);
        assert_eq!(c.expressions().len(), 1);
        let other = c.cache_operation(gates::rz()).unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn cache_rejects_non_unitary() {
        let mut c = QuditCircuit::qubits(1);
        let bad = qudit_qgl::UnitaryExpression::new("Bad() { [[1, 1], [0, 1]] }").unwrap();
        assert!(matches!(c.cache_operation(bad), Err(CircuitError::InvalidExpression { .. })));
    }

    #[test]
    fn location_validation() {
        let mut c = QuditCircuit::pure(vec![2, 3]);
        let rx = c.cache_operation(gates::rx()).unwrap();
        let csum = c.cache_operation(gates::csum()).unwrap();
        // Wrong arity.
        assert!(matches!(c.append_ref(rx, vec![0, 1]), Err(CircuitError::InvalidLocation { .. })));
        // Out of range.
        assert!(matches!(c.append_ref(rx, vec![5]), Err(CircuitError::InvalidLocation { .. })));
        // Radix mismatch: RX on the qutrit wire.
        assert!(matches!(c.append_ref(rx, vec![1]), Err(CircuitError::RadixMismatch { .. })));
        // CSUM needs two qutrits; wire 0 is a qubit.
        assert!(matches!(c.append_ref(csum, vec![0, 1]), Err(CircuitError::RadixMismatch { .. })));
        // Repeated index.
        let mut cq = QuditCircuit::qubits(2);
        let cx = cq.cache_operation(gates::cnot()).unwrap();
        assert!(matches!(cq.append_ref(cx, vec![0, 0]), Err(CircuitError::InvalidLocation { .. })));
        // Valid appends.
        assert!(c.append_ref(rx, vec![0]).is_ok());
    }

    #[test]
    fn unknown_reference_rejected() {
        let mut a = QuditCircuit::qubits(1);
        let b_ref = {
            let mut b = QuditCircuit::qubits(1);
            b.cache_operation(gates::rx()).unwrap()
        };
        // The reference index happens to be valid only if `a` has cached something.
        assert!(matches!(a.append_ref(b_ref, vec![0]), Err(CircuitError::UnknownReference { .. })));
    }

    #[test]
    fn constant_append_checks_value_count() {
        let mut c = QuditCircuit::qubits(1);
        let rx = c.cache_operation(gates::rx()).unwrap();
        assert!(matches!(
            c.append_ref_constant(rx, vec![0], vec![]),
            Err(CircuitError::ParameterCount { expected: 1, found: 0 })
        ));
        assert!(c.append_ref_constant(rx, vec![0], vec![0.5]).is_ok());
        assert_eq!(c.num_params(), 0);
    }

    #[test]
    fn unitary_of_bell_circuit() {
        let mut c = QuditCircuit::qubits(2);
        let h = c.cache_operation(gates::hadamard()).unwrap();
        let cx = c.cache_operation(gates::cnot()).unwrap();
        c.append_ref(h, vec![0]).unwrap();
        c.append_ref(cx, vec![0, 1]).unwrap();
        let u = c.unitary::<f64>(&[]).unwrap();
        assert!(u.is_unitary(1e-12));
        // Column for |00⟩ must be the Bell state (|00⟩ + |11⟩)/√2.
        let s = 1.0 / 2.0_f64.sqrt();
        assert!((u.get(0, 0).re - s).abs() < 1e-12);
        assert!((u.get(3, 0).re - s).abs() < 1e-12);
        assert!(u.get(1, 0).abs() < 1e-12);
        assert!(u.get(2, 0).abs() < 1e-12);
    }

    #[test]
    fn unitary_respects_operation_order() {
        // X then H on one qubit: U = H·X.
        let mut c = QuditCircuit::qubits(1);
        let x = c.cache_operation(gates::x()).unwrap();
        let h = c.cache_operation(gates::hadamard()).unwrap();
        c.append_ref(x, vec![0]).unwrap();
        c.append_ref(h, vec![0]).unwrap();
        let u = c.unitary::<f64>(&[]).unwrap();
        let expect = gates::hadamard()
            .to_matrix::<f64>(&[])
            .unwrap()
            .matmul(&gates::x().to_matrix::<f64>(&[]).unwrap());
        assert!(u.max_elementwise_distance(&expect) < 1e-13);
    }

    #[test]
    fn parameterized_unitary_and_op_values() {
        let mut c = QuditCircuit::qubits(2);
        let rx = c.cache_operation(gates::rx()).unwrap();
        let rz = c.cache_operation(gates::rz()).unwrap();
        c.append_ref(rx, vec![0]).unwrap();
        c.append_ref_constant(rz, vec![1], vec![0.25]).unwrap();
        c.append_ref(rz, vec![0]).unwrap();
        assert_eq!(c.num_params(), 2);
        let params = [0.7, -0.3];
        let vals0 = c.op_values(&c.ops()[0], &params).unwrap();
        assert_eq!(vals0, vec![0.7]);
        let vals1 = c.op_values(&c.ops()[1], &params).unwrap();
        assert_eq!(vals1, vec![0.25]);
        let vals2 = c.op_values(&c.ops()[2], &params).unwrap();
        assert_eq!(vals2, vec![-0.3]);
        assert!(c.unitary::<f64>(&params).unwrap().is_unitary(1e-12));
        assert!(c.unitary::<f64>(&[0.1]).is_err());
    }

    #[test]
    fn delete_op_repacks_parameter_offsets() {
        let mut c = QuditCircuit::qubits(2);
        let rx = c.cache_operation(gates::rx()).unwrap();
        let u3 = c.cache_operation(gates::u3()).unwrap();
        c.append_ref(rx, vec![0]).unwrap(); // param 0
        c.append_ref(u3, vec![1]).unwrap(); // params 1..4
        c.append_ref_constant(rx, vec![0], vec![0.3]).unwrap();
        c.append_ref(rx, vec![1]).unwrap(); // param 4
        assert_eq!(c.num_params(), 5);

        // Deleting the U3 drops its three parameters and shifts the final RX down.
        let mapping = c.delete_op(1).unwrap();
        assert_eq!(mapping, vec![0, 4]);
        assert_eq!(c.num_ops(), 3);
        assert_eq!(c.num_params(), 2);
        let values = c.op_values(&c.ops()[2], &[0.7, -0.2]).unwrap();
        assert_eq!(values, vec![-0.2]);

        // The deleted circuit evaluates: same unitary as building it without the U3.
        let mut expect = QuditCircuit::qubits(2);
        let rx2 = expect.cache_operation(gates::rx()).unwrap();
        expect.append_ref(rx2, vec![0]).unwrap();
        expect.append_ref_constant(rx2, vec![0], vec![0.3]).unwrap();
        expect.append_ref(rx2, vec![1]).unwrap();
        let a = c.unitary::<f64>(&[0.7, -0.2]).unwrap();
        let b = expect.unitary::<f64>(&[0.7, -0.2]).unwrap();
        assert!(a.max_elementwise_distance(&b) < 1e-13);

        assert!(c.delete_op(99).is_err());
    }

    #[test]
    fn constify_op_bakes_values_and_repacks_offsets() {
        let mut c = QuditCircuit::qubits(2);
        let rx = c.cache_operation(gates::rx()).unwrap();
        let u3 = c.cache_operation(gates::u3()).unwrap();
        c.append_ref(rx, vec![0]).unwrap(); // param 0
        c.append_ref(u3, vec![1]).unwrap(); // params 1..4
        c.append_ref(rx, vec![1]).unwrap(); // param 4
        let reference = c.unitary::<f64>(&[0.3, 0.1, 0.2, 0.4, -0.9]).unwrap();

        // Constifying the U3 bakes its three values in and shifts the final RX down.
        let mapping = c.constify_op(1, vec![0.1, 0.2, 0.4]).unwrap();
        assert_eq!(mapping, vec![0, 4]);
        assert_eq!(c.num_ops(), 3);
        assert_eq!(c.num_params(), 2);
        assert!(matches!(c.ops()[1].params, OpParams::Constant(_)));
        let after = c.unitary::<f64>(&[0.3, -0.9]).unwrap();
        assert!(after.max_elementwise_distance(&reference) < 1e-14);

        // A second constify of the same op is rejected, as are bad indices/value counts.
        assert!(matches!(
            c.constify_op(1, vec![0.0; 3]),
            Err(CircuitError::InvalidExpression { .. })
        ));
        assert!(matches!(c.constify_op(99, vec![]), Err(CircuitError::InvalidLocation { .. })));
        assert!(matches!(
            c.constify_op(0, vec![0.0, 0.0]),
            Err(CircuitError::ParameterCount { expected: 1, found: 2 })
        ));
    }

    #[test]
    fn embed_gate_reverse_location() {
        // CNOT with control = qubit 1, target = qubit 0 (location [1, 0]).
        let cnot = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let emb = embed_gate(&cnot, &[2, 2], &[1, 0], &[2, 2]);
        // |01⟩ (control=qubit1 set) ↦ |11⟩
        assert_eq!(emb.get(3, 1).re, 1.0);
        assert_eq!(emb.get(1, 3).re, 1.0);
        assert_eq!(emb.get(0, 0).re, 1.0);
        assert_eq!(emb.get(2, 2).re, 1.0);
    }

    #[test]
    fn embed_gate_in_mixed_radix_space() {
        // RX on the qubit of a [3, 2] system: acts on qudit 1.
        let rxm = gates::rx().to_matrix::<f64>(&[1.1]).unwrap();
        let emb = embed_gate(&rxm, &[2], &[1], &[3, 2]);
        assert_eq!(emb.rows(), 6);
        assert!(emb.is_unitary(1e-12));
        // Block-diagonal: three identical 2x2 blocks.
        for block in 0..3 {
            for r in 0..2 {
                for c_ in 0..2 {
                    assert!(emb.get(2 * block + r, 2 * block + c_).dist(rxm.get(r, c_)) < 1e-14);
                }
            }
        }
    }

    #[test]
    fn qutrits_constructor() {
        let c = QuditCircuit::qutrits(2);
        assert_eq!(c.radices(), &[3, 3]);
        assert_eq!(c.dim(), 9);
    }

    #[test]
    fn error_display() {
        let e = CircuitError::ParameterCount { expected: 2, found: 1 };
        assert!(e.to_string().contains("expected 2"));
    }
}
