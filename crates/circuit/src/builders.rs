//! Builders for the benchmark circuits used throughout the paper's evaluation.
//!
//! * [`qft`] — the Quantum Fourier Transform (Fig. 4, left),
//! * [`dtc`] — the Benchpress Discrete Time Crystal Hamiltonian-simulation circuit,
//!   following Listing 4 of the paper (Fig. 4, right),
//! * [`pqc_qubit_ladder`] / [`pqc_qutrit_ladder`] — the QSearch-style parameterized
//!   ansatz circuits of Fig. 5, used by the instantiation benchmarks (Figs. 6–7).

use crate::circuit::{QuditCircuit, Result};
use crate::gates;
use crate::gateset::GateSet;

/// Builds the `n`-qubit Quantum Fourier Transform circuit from Hadamard, controlled
/// phase, and SWAP gates. All gates are appended as constants via cached references, so
/// construction cost is dominated by pure bookkeeping (the quantity Fig. 4 measures).
///
/// # Errors
///
/// Propagates [`crate::CircuitError`] (cannot occur for valid `n >= 1`).
pub fn qft(n: usize) -> Result<QuditCircuit> {
    let mut circ = QuditCircuit::qubits(n);
    let h = circ.cache_operation(gates::hadamard())?;
    let cp = circ.cache_operation(gates::cphase())?;
    let swap = circ.cache_operation(gates::swap())?;
    for i in 0..n {
        circ.append_ref_constant(h, vec![i], vec![])?;
        for j in (i + 1)..n {
            let angle = std::f64::consts::PI / (1u64 << (j - i)) as f64;
            circ.append_ref_constant(cp, vec![j, i], vec![angle])?;
        }
    }
    for i in 0..n / 2 {
        circ.append_ref_constant(swap, vec![i, n - 1 - i], vec![])?;
    }
    Ok(circ)
}

/// Builds the `n`-qubit Discrete Time Crystal benchmark circuit of Listing 4: `n` layers,
/// each applying `RX(0.95π)` to every qubit, `RZ` with a per-qubit quasi-random angle,
/// and `RZZ` with a quasi-random angle on every neighbouring pair.
///
/// Angles are generated from a small deterministic sequence so that construction
/// benchmarks are reproducible without threading an RNG through.
///
/// # Errors
///
/// Propagates [`crate::CircuitError`] (cannot occur for valid `n >= 1`).
pub fn dtc(n: usize) -> Result<QuditCircuit> {
    dtc_with_layers(n, n)
}

/// [`dtc`] with an explicit layer count (the Benchpress workload scales both).
///
/// # Errors
///
/// Propagates [`crate::CircuitError`] (cannot occur for valid inputs).
pub fn dtc_with_layers(n: usize, layers: usize) -> Result<QuditCircuit> {
    let mut circ = QuditCircuit::qubits(n);
    let rx = circ.cache_operation(gates::rx())?;
    let rz = circ.cache_operation(gates::rz())?;
    let rzz = circ.cache_operation(gates::rzz())?;
    // Deterministic quasi-random angle stream (golden-ratio low-discrepancy sequence).
    let mut counter = 0u64;
    let mut angle = move || {
        counter += 1;
        let frac = (counter as f64 * 0.6180339887498949) % 1.0;
        std::f64::consts::PI * (2.0 * frac - 1.0)
    };
    for _ in 0..layers {
        for q in 0..n {
            circ.append_ref_constant(rx, vec![q], vec![0.95 * std::f64::consts::PI])?;
        }
        for q in 0..n {
            circ.append_ref_constant(rz, vec![q], vec![angle()])?;
        }
        for q in 0..n.saturating_sub(1) {
            circ.append_ref_constant(rzz, vec![q, q + 1], vec![angle()])?;
        }
    }
    Ok(circ)
}

/// Builds the QSearch-style qubit ansatz of Fig. 5: a layer of U3 gates on every qubit,
/// followed by `layers` entangling blocks, each a CNOT on a neighbouring pair followed by
/// U3 gates on the two qubits involved. `layers` small (≈ number of qubits) gives the
/// "shallow" benchmark circuit; several times that gives the "deep" one.
///
/// # Errors
///
/// Propagates [`crate::CircuitError`] (cannot occur for valid `n >= 2`).
pub fn pqc_qubit_ladder(n: usize, layers: usize) -> Result<QuditCircuit> {
    let mut circ = QuditCircuit::qubits(n);
    let u3 = circ.cache_operation(gates::u3())?;
    let cx = circ.cache_operation(gates::cnot())?;
    for q in 0..n {
        circ.append_ref(u3, vec![q])?;
    }
    for layer in 0..layers {
        let a = layer % (n - 1);
        let b = a + 1;
        circ.append_ref(cx, vec![a, b])?;
        circ.append_ref(u3, vec![a])?;
        circ.append_ref(u3, vec![b])?;
    }
    Ok(circ)
}

/// Builds the qutrit analogue of [`pqc_qubit_ladder`]: general single-qutrit gates on
/// every qutrit, then `layers` blocks of a CSUM followed by single-qutrit gates on the
/// pair (Fig. 5's qutrit benchmark uses CSUM and qutrit phase gates in place of CNOT and
/// U3).
///
/// # Errors
///
/// Propagates [`crate::CircuitError`] (cannot occur for valid `n >= 2`).
pub fn pqc_qutrit_ladder(n: usize, layers: usize) -> Result<QuditCircuit> {
    let mut circ = QuditCircuit::qutrits(n);
    let local = circ.cache_operation(gates::qutrit_u())?;
    let phase = circ.cache_operation(gates::qutrit_phase())?;
    let csum = circ.cache_operation(gates::csum())?;
    for q in 0..n {
        circ.append_ref(local, vec![q])?;
    }
    for layer in 0..layers {
        let a = layer % (n - 1);
        let b = a + 1;
        circ.append_ref(csum, vec![a, b])?;
        circ.append_ref(phase, vec![a])?;
        circ.append_ref(local, vec![b])?;
    }
    Ok(circ)
}

/// The general single-qudit gate used by synthesis building blocks for `radix`
/// (U3 for qubits, the 8-parameter general qutrit gate for qutrits, the 15-parameter
/// general ququart gate for radix 4). Returns `None` for radices without a registered
/// gate set.
pub fn synthesis_local(radix: usize) -> Option<qudit_qgl::UnitaryExpression> {
    match radix {
        2 => Some(gates::u3()),
        3 => Some(gates::qutrit_u()),
        4 => Some(gates::ququart_u()),
        _ => None,
    }
}

/// The built-in two-qudit entangling gate for the (unordered) radix pair: CNOT for
/// qubit pairs, CSUM for qutrit pairs, the mod-4 CSUM [`gates::csum4`] for ququart
/// pairs, and the embedded controlled-shift [`gates::cshift23`] for mixed qubit–qutrit
/// pairs. Returns `None` for pairs without a built-in entangler.
pub fn synthesis_entangler_pair(ra: usize, rb: usize) -> Option<qudit_qgl::UnitaryExpression> {
    match (ra.min(rb), ra.max(rb)) {
        (2, 2) => Some(gates::cnot()),
        (3, 3) => Some(gates::csum()),
        (4, 4) => Some(gates::csum4()),
        (2, 3) => Some(gates::cshift23()),
        (2, 4) => Some(gates::cshift24()),
        (3, 4) => Some(gates::cshift34()),
        _ => None,
    }
}

/// The built-in same-radix entangler — [`synthesis_entangler_pair`] on `(radix, radix)`.
pub fn synthesis_entangler(radix: usize) -> Option<qudit_qgl::UnitaryExpression> {
    synthesis_entangler_pair(radix, radix)
}

/// Builds the QSearch-style *seed* circuit for bottom-up synthesis: one parameterized
/// general local gate on every qudit and nothing else. Expanding it one
/// [`append_pqc_block`] at a time grows the template the synthesis search explores.
///
/// Uses the default gate set for the radices; [`pqc_initial_with`] accepts a custom
/// [`GateSet`].
///
/// # Errors
///
/// Returns [`crate::CircuitError::InvalidExpression`] when a radix has no registered
/// local gate (with built-ins: anything other than 2 or 3).
pub fn pqc_initial(radices: &[usize]) -> Result<QuditCircuit> {
    pqc_initial_with(radices, &GateSet::default_for(radices))
}

/// [`pqc_initial`] drawing the local gates from an explicit [`GateSet`].
///
/// # Errors
///
/// Returns [`crate::CircuitError::InvalidExpression`] when a radix has no registered
/// local gate in `gate_set`.
pub fn pqc_initial_with(radices: &[usize], gate_set: &GateSet) -> Result<QuditCircuit> {
    let mut circ = QuditCircuit::pure(radices.to_vec());
    for (q, &radix) in radices.iter().enumerate() {
        let local = gate_set.local(radix).cloned().ok_or_else(|| {
            crate::CircuitError::InvalidExpression {
                detail: format!("no local gate registered for radix {radix} in the gate set"),
            }
        })?;
        let local_ref = circ.cache_operation(local)?;
        circ.append_ref(local_ref, vec![q])?;
    }
    Ok(circ)
}

/// Appends one synthesis building block to `circ` in place — the incremental
/// layer-append hook used by the bottom-up search: an entangler on `(a, b)` followed by
/// general local gates on both wires. The gates' parameters become new trailing entries
/// of the circuit parameter vector, so previously optimized parameters keep their
/// positions (enabling warm-started re-instantiation of the extended circuit).
///
/// Uses the default gate set for the circuit radices; [`append_pqc_block_with`] accepts
/// a custom [`GateSet`].
///
/// # Errors
///
/// See [`append_pqc_block_with`].
pub fn append_pqc_block(circ: &mut QuditCircuit, a: usize, b: usize) -> Result<()> {
    let gate_set = GateSet::default_for(circ.radices());
    append_pqc_block_with(circ, a, b, &gate_set)
}

/// [`append_pqc_block`] drawing the entangler and locals from an explicit [`GateSet`].
///
/// The entangler is looked up by the wires' (unordered) radix pair and applied with its
/// wire order matching the expression's radices, so an entangler registered as `(2, 3)`
/// also serves an edge whose lower wire is the qutrit.
///
/// # Errors
///
/// Returns [`crate::CircuitError::InvalidLocation`] when the wires are out of range,
/// [`crate::CircuitError::RadixMismatch`] when no entangler is registered for the
/// wires' radix pair, and [`crate::CircuitError::InvalidExpression`] when a wire's
/// radix has no registered local gate.
pub fn append_pqc_block_with(
    circ: &mut QuditCircuit,
    a: usize,
    b: usize,
    gate_set: &GateSet,
) -> Result<()> {
    let radices = circ.radices();
    let (ra, rb) = match (radices.get(a), radices.get(b)) {
        (Some(&ra), Some(&rb)) => (ra, rb),
        _ => {
            return Err(crate::CircuitError::InvalidLocation {
                detail: format!(
                    "block wires ({a}, {b}) out of range for {} qudits",
                    circ.num_qudits()
                ),
            })
        }
    };
    let entangler =
        gate_set.entangler(ra, rb).cloned().ok_or_else(|| crate::CircuitError::RadixMismatch {
            detail: format!(
                "no entangler registered for radix pair ({}, {}) in the gate set",
                ra.min(rb),
                ra.max(rb)
            ),
        })?;
    let locals = |radix: usize| {
        gate_set.local(radix).cloned().ok_or_else(|| crate::CircuitError::InvalidExpression {
            detail: format!("no local gate registered for radix {radix} in the gate set"),
        })
    };
    let (local_a, local_b) = (locals(ra)?, locals(rb)?);
    let ent_location = crate::gateset::oriented_entangler_wires(&entangler, a, b, radices);
    let ent_ref = circ.cache_operation(entangler)?;
    circ.append_ref(ent_ref, ent_location)?;
    let ref_a = circ.cache_operation(local_a)?;
    circ.append_ref(ref_a, vec![a])?;
    let ref_b = circ.cache_operation(local_b)?;
    circ.append_ref(ref_b, vec![b])?;
    Ok(())
}

/// Builds a full synthesis template: the [`pqc_initial`] seed followed by one
/// [`append_pqc_block`] per entry of `blocks`. This is the circuit shape the
/// bottom-up search enumerates, exposed directly for tests and benchmarks.
///
/// # Errors
///
/// Propagates the errors of [`pqc_initial`] and [`append_pqc_block`].
pub fn pqc_template(radices: &[usize], blocks: &[(usize, usize)]) -> Result<QuditCircuit> {
    pqc_template_with(radices, blocks, &GateSet::default_for(radices))
}

/// [`pqc_template`] drawing every building block from an explicit [`GateSet`].
///
/// # Errors
///
/// Propagates the errors of [`pqc_initial_with`] and [`append_pqc_block_with`].
pub fn pqc_template_with(
    radices: &[usize],
    blocks: &[(usize, usize)],
    gate_set: &GateSet,
) -> Result<QuditCircuit> {
    let mut circ = pqc_initial_with(radices, gate_set)?;
    for &(a, b) in blocks {
        append_pqc_block_with(&mut circ, a, b, gate_set)?;
    }
    Ok(circ)
}

/// Deletes entangling block `block_index` — the entangler and the two trailing local
/// gates appended by [`append_pqc_block`] — from a [`pqc_template`]-shaped circuit,
/// in place. This is the rebuild helper behind post-synthesis gate-deletion: the
/// refinement pass speculatively removes a block and re-instantiates the survivor.
///
/// Returns the composed parameter mapping (see [`QuditCircuit::delete_op`]): entry `k`
/// is the index the circuit's new `k`-th parameter had before the deletion, so a
/// parent optimum projects directly onto the smaller template as a warm start.
///
/// # Errors
///
/// Returns [`crate::CircuitError::InvalidLocation`] when `block_index` does not name a
/// complete block of the template (the circuit is shorter than the block's three ops).
pub fn delete_pqc_block(circ: &mut QuditCircuit, block_index: usize) -> Result<Vec<usize>> {
    let first_op = circ.num_qudits() + 3 * block_index;
    if first_op + 3 > circ.num_ops() {
        return Err(crate::CircuitError::InvalidLocation {
            detail: format!(
                "block {block_index} spans ops {first_op}..{} but the template has {} op(s)",
                first_op + 3,
                circ.num_ops()
            ),
        });
    }
    // Delete the block's three ops front-to-back (each removal shifts the rest down),
    // composing the per-deletion parameter mappings into one old-circuit mapping.
    let mut mapping = circ.delete_op(first_op)?;
    for _ in 0..2 {
        let step = circ.delete_op(first_op)?;
        mapping = step.into_iter().map(|idx| mapping[idx]).collect();
    }
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_tensor::C64;

    #[test]
    fn qft_structure_and_unitarity() {
        let c = qft(3).unwrap();
        // 3 Hadamards + 3 controlled phases + 1 swap.
        assert_eq!(c.num_ops(), 7);
        assert_eq!(c.num_params(), 0);
        let u = c.unitary::<f64>(&[]).unwrap();
        assert!(u.is_unitary(1e-12));
        // Compare against the closed-form QFT matrix: U[j][k] = ω^{jk} / √N.
        let n = 8usize;
        let omega = 2.0 * std::f64::consts::PI / n as f64;
        for j in 0..n {
            for k in 0..n {
                let expect = C64::cis(omega * (j * k) as f64).scale(1.0 / (n as f64).sqrt());
                assert!(
                    u.get(j, k).dist(expect) < 1e-10,
                    "QFT element ({j},{k}): {} vs {expect}",
                    u.get(j, k)
                );
            }
        }
    }

    #[test]
    fn qft_op_count_scales_quadratically() {
        let c = qft(10).unwrap();
        // n Hadamards + n(n-1)/2 controlled phases + n/2 swaps.
        assert_eq!(c.num_ops(), 10 + 45 + 5);
        assert_eq!(c.expressions().len(), 3);
    }

    #[test]
    fn dtc_structure() {
        let c = dtc(4).unwrap();
        // Per layer: 4 RX + 4 RZ + 3 RZZ = 11 ops, times 4 layers.
        assert_eq!(c.num_ops(), 44);
        assert_eq!(c.num_params(), 0);
        assert_eq!(c.expressions().len(), 3);
        let u = c.unitary::<f64>(&[]).unwrap();
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn dtc_with_custom_layers() {
        let c = dtc_with_layers(3, 2).unwrap();
        assert_eq!(c.num_ops(), 2 * (3 + 3 + 2));
    }

    #[test]
    fn qubit_ladder_parameters() {
        let shallow = pqc_qubit_ladder(3, 2).unwrap();
        // 3 initial U3 + 2 layers × (CNOT + 2 U3) = 3 + 6 ops of U3 → 9·3 params... count:
        // U3 count = 3 + 2*2 = 7, params = 21.
        assert_eq!(shallow.num_ops(), 3 + 2 * 3);
        assert_eq!(shallow.num_params(), 21);
        let params: Vec<f64> = (0..shallow.num_params()).map(|k| 0.1 * k as f64).collect();
        assert!(shallow.unitary::<f64>(&params).unwrap().is_unitary(1e-10));
    }

    #[test]
    fn qutrit_ladder_parameters() {
        let c = pqc_qutrit_ladder(2, 1).unwrap();
        // 2 QutritU (8 params each) + 1 layer × (CSUM + P3(2) + QutritU(8)).
        assert_eq!(c.num_ops(), 2 + 3);
        assert_eq!(c.num_params(), 16 + 2 + 8);
        assert_eq!(c.dim(), 9);
        let params: Vec<f64> = (0..c.num_params()).map(|k| 0.05 * (k + 1) as f64).collect();
        assert!(c.unitary::<f64>(&params).unwrap().is_unitary(1e-10));
    }

    #[test]
    fn synthesis_seed_and_block_hooks() {
        // Qubit seed: one U3 per wire.
        let mut c = pqc_initial(&[2, 2, 2]).unwrap();
        assert_eq!(c.num_ops(), 3);
        assert_eq!(c.num_params(), 9);
        // One block: CNOT + two U3s, parameters appended at the tail.
        append_pqc_block(&mut c, 0, 1).unwrap();
        assert_eq!(c.num_ops(), 6);
        assert_eq!(c.num_params(), 15);
        let params: Vec<f64> = (0..c.num_params()).map(|k| 0.1 * k as f64).collect();
        assert!(c.unitary::<f64>(&params).unwrap().is_unitary(1e-10));

        // Qutrit seed and block.
        let mut q = pqc_initial(&[3, 3]).unwrap();
        assert_eq!(q.num_params(), 16);
        append_pqc_block(&mut q, 1, 0).unwrap();
        assert_eq!(q.num_params(), 32);

        // The template builder composes the two.
        let t = pqc_template(&[2, 2], &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(t.num_ops(), 2 + 2 * 3);
        assert_eq!(t.num_params(), 6 + 2 * 6);
    }

    #[test]
    fn delete_pqc_block_inverts_append() {
        // Build a depth-3 qubit template, delete the middle block, and check the
        // result matches the template built without it — ops, parameters, and the
        // unitary evaluated through the composed parameter mapping.
        let blocks = [(0, 1), (1, 2), (0, 1)];
        let mut circ = pqc_template(&[2, 2, 2], &blocks).unwrap();
        let full_params: Vec<f64> =
            (0..circ.num_params()).map(|k| 0.1 * (k as f64) - 0.7).collect();
        let mapping = delete_pqc_block(&mut circ, 1).unwrap();

        let expect = pqc_template(&[2, 2, 2], &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(circ.num_ops(), expect.num_ops());
        assert_eq!(circ.num_params(), expect.num_params());
        assert_eq!(mapping.len(), circ.num_params());

        // Projecting the parent parameters through the mapping evaluates the deleted
        // circuit exactly as the freshly built template would.
        let projected: Vec<f64> = mapping.iter().map(|&i| full_params[i]).collect();
        let a = circ.unitary::<f64>(&projected).unwrap();
        let b = expect.unitary::<f64>(&projected).unwrap();
        assert!(a.max_elementwise_distance(&b) < 1e-12);

        // The deleted block's parameters are gone from the mapping: block 1 owned the
        // middle 6-parameter span of the 27-parameter template.
        assert!(mapping.iter().all(|&i| !(15..21).contains(&i)));

        // Out-of-range blocks are rejected.
        let mut small = pqc_template(&[2, 2], &[(0, 1)]).unwrap();
        assert!(delete_pqc_block(&mut small, 1).is_err());
        assert!(delete_pqc_block(&mut small, 0).is_ok());
        assert_eq!(small.num_ops(), 2);
    }

    #[test]
    fn mixed_radix_block_uses_embedded_controlled_shift() {
        // A qubit–qutrit block: CSHIFT23 entangler plus U3/QutritU locals per wire.
        let mut c = pqc_initial(&[2, 3]).unwrap();
        assert_eq!(c.num_params(), 3 + 8);
        append_pqc_block(&mut c, 0, 1).unwrap();
        assert_eq!(c.num_ops(), 2 + 3);
        assert_eq!(c.num_params(), 2 * (3 + 8));
        let entangler = &c.ops()[2];
        assert_eq!(c.expression(entangler.expr).unwrap().name(), "CSHIFT23");
        assert_eq!(entangler.location, vec![0, 1]);
        let params: Vec<f64> = (0..c.num_params()).map(|k| 0.2 * k as f64 - 1.1).collect();
        assert!(c.unitary::<f64>(&params).unwrap().is_unitary(1e-10));

        // Reversed wire order ([3, 2]): the entangler is oriented to its expression
        // radices, so the qubit wire stays the control.
        let mut r = pqc_initial(&[3, 2]).unwrap();
        append_pqc_block(&mut r, 0, 1).unwrap();
        let entangler = &r.ops()[2];
        assert_eq!(r.expression(entangler.expr).unwrap().name(), "CSHIFT23");
        assert_eq!(entangler.location, vec![1, 0]);
        let params: Vec<f64> = (0..r.num_params()).map(|k| 0.15 * k as f64 - 0.8).collect();
        assert!(r.unitary::<f64>(&params).unwrap().is_unitary(1e-10));
    }

    #[test]
    fn synthesis_hooks_reject_invalid_blocks() {
        assert!(pqc_initial(&[2, 5]).is_err());
        let mut c = pqc_initial(&[2, 3]).unwrap();
        // Out-of-range wires.
        assert!(matches!(
            append_pqc_block(&mut c, 0, 7),
            Err(crate::CircuitError::InvalidLocation { .. })
        ));
        // A gate set with both locals but no entangler for the pair is rejected with
        // the registry lookup key — the radix pair — in the message.
        let mut no_pair = GateSet::new();
        no_pair.register_local(gates::u3()).unwrap();
        no_pair.register_local(gates::qutrit_u()).unwrap();
        match append_pqc_block_with(&mut c, 0, 1, &no_pair) {
            Err(crate::CircuitError::RadixMismatch { detail }) => {
                assert!(detail.contains("radix pair (2, 3)"), "{detail}");
            }
            other => panic!("expected RadixMismatch, got {other:?}"),
        }
        assert!(synthesis_local(5).is_none());
        assert!(synthesis_entangler(5).is_none());
        assert!(synthesis_entangler_pair(2, 5).is_none());
        assert_eq!(synthesis_entangler_pair(3, 2).unwrap().name(), "CSHIFT23");
        // Ququarts are first-class registry citizens now.
        assert_eq!(synthesis_local(4).unwrap().name(), "QuquartU");
        assert_eq!(synthesis_entangler(4).unwrap().name(), "CSUM4");
        // ... and the mixed (2, 4)/(3, 4) pairs carry embedded controlled-shifts.
        assert_eq!(synthesis_entangler_pair(2, 4).unwrap().name(), "CSHIFT24");
        assert_eq!(synthesis_entangler_pair(4, 2).unwrap().name(), "CSHIFT24");
        assert_eq!(synthesis_entangler_pair(3, 4).unwrap().name(), "CSHIFT34");
        assert_eq!(synthesis_entangler_pair(4, 3).unwrap().name(), "CSHIFT34");
    }

    #[test]
    fn ququart_template_builds_and_is_unitary() {
        // The ROADMAP claim made concrete: registering radix-4 building blocks is all
        // it takes — the generic template machinery needs no changes.
        let c = pqc_template(&[4, 4], &[(0, 1)]).unwrap();
        assert_eq!(c.num_ops(), 2 + 3);
        assert_eq!(c.num_params(), 2 * 15 + 2 * 15);
        assert_eq!(c.dim(), 16);
        let params: Vec<f64> = (0..c.num_params()).map(|k| 0.07 * (k + 1) as f64).collect();
        assert!(c.unitary::<f64>(&params).unwrap().is_unitary(1e-10));
    }

    #[test]
    fn default_gate_set_templates_match_the_plain_builders() {
        // `pqc_template` must be byte-identical to `pqc_template_with` on the default
        // registry: same ops, same expression table, same unitary bits.
        for radices in [vec![2, 2], vec![3, 3], vec![2, 3]] {
            let blocks = [(0usize, 1usize), (0, 1)];
            let plain = pqc_template(&radices, &blocks).unwrap();
            let with =
                pqc_template_with(&radices, &blocks, &GateSet::default_for(&radices)).unwrap();
            assert_eq!(plain.ops(), with.ops());
            assert_eq!(plain.num_params(), with.num_params());
            let params: Vec<f64> = (0..plain.num_params()).map(|k| 0.3 * k as f64).collect();
            let a = plain.unitary::<f64>(&params).unwrap();
            let b = with.unitary::<f64>(&params).unwrap();
            assert!(a.max_elementwise_distance(&b) == 0.0, "unitaries diverged");
        }
    }

    #[test]
    fn large_construction_is_fast_smoke_test() {
        // Not a benchmark, just a guard that construction stays cheap bookkeeping.
        let c = qft(64).unwrap();
        assert_eq!(c.num_ops(), 64 + 64 * 63 / 2 + 32);
    }
}
