//! Builders for the benchmark circuits used throughout the paper's evaluation.
//!
//! * [`qft`] — the Quantum Fourier Transform (Fig. 4, left),
//! * [`dtc`] — the Benchpress Discrete Time Crystal Hamiltonian-simulation circuit,
//!   following Listing 4 of the paper (Fig. 4, right),
//! * [`pqc_qubit_ladder`] / [`pqc_qutrit_ladder`] — the QSearch-style parameterized
//!   ansatz circuits of Fig. 5, used by the instantiation benchmarks (Figs. 6–7).

use crate::circuit::{QuditCircuit, Result};
use crate::gates;

/// Builds the `n`-qubit Quantum Fourier Transform circuit from Hadamard, controlled
/// phase, and SWAP gates. All gates are appended as constants via cached references, so
/// construction cost is dominated by pure bookkeeping (the quantity Fig. 4 measures).
///
/// # Errors
///
/// Propagates [`crate::CircuitError`] (cannot occur for valid `n >= 1`).
pub fn qft(n: usize) -> Result<QuditCircuit> {
    let mut circ = QuditCircuit::qubits(n);
    let h = circ.cache_operation(gates::hadamard())?;
    let cp = circ.cache_operation(gates::cphase())?;
    let swap = circ.cache_operation(gates::swap())?;
    for i in 0..n {
        circ.append_ref_constant(h, vec![i], vec![])?;
        for j in (i + 1)..n {
            let angle = std::f64::consts::PI / (1u64 << (j - i)) as f64;
            circ.append_ref_constant(cp, vec![j, i], vec![angle])?;
        }
    }
    for i in 0..n / 2 {
        circ.append_ref_constant(swap, vec![i, n - 1 - i], vec![])?;
    }
    Ok(circ)
}

/// Builds the `n`-qubit Discrete Time Crystal benchmark circuit of Listing 4: `n` layers,
/// each applying `RX(0.95π)` to every qubit, `RZ` with a per-qubit quasi-random angle,
/// and `RZZ` with a quasi-random angle on every neighbouring pair.
///
/// Angles are generated from a small deterministic sequence so that construction
/// benchmarks are reproducible without threading an RNG through.
///
/// # Errors
///
/// Propagates [`crate::CircuitError`] (cannot occur for valid `n >= 1`).
pub fn dtc(n: usize) -> Result<QuditCircuit> {
    dtc_with_layers(n, n)
}

/// [`dtc`] with an explicit layer count (the Benchpress workload scales both).
///
/// # Errors
///
/// Propagates [`crate::CircuitError`] (cannot occur for valid inputs).
pub fn dtc_with_layers(n: usize, layers: usize) -> Result<QuditCircuit> {
    let mut circ = QuditCircuit::qubits(n);
    let rx = circ.cache_operation(gates::rx())?;
    let rz = circ.cache_operation(gates::rz())?;
    let rzz = circ.cache_operation(gates::rzz())?;
    // Deterministic quasi-random angle stream (golden-ratio low-discrepancy sequence).
    let mut counter = 0u64;
    let mut angle = move || {
        counter += 1;
        let frac = (counter as f64 * 0.6180339887498949) % 1.0;
        std::f64::consts::PI * (2.0 * frac - 1.0)
    };
    for _ in 0..layers {
        for q in 0..n {
            circ.append_ref_constant(rx, vec![q], vec![0.95 * std::f64::consts::PI])?;
        }
        for q in 0..n {
            circ.append_ref_constant(rz, vec![q], vec![angle()])?;
        }
        for q in 0..n.saturating_sub(1) {
            circ.append_ref_constant(rzz, vec![q, q + 1], vec![angle()])?;
        }
    }
    Ok(circ)
}

/// Builds the QSearch-style qubit ansatz of Fig. 5: a layer of U3 gates on every qubit,
/// followed by `layers` entangling blocks, each a CNOT on a neighbouring pair followed by
/// U3 gates on the two qubits involved. `layers` small (≈ number of qubits) gives the
/// "shallow" benchmark circuit; several times that gives the "deep" one.
///
/// # Errors
///
/// Propagates [`crate::CircuitError`] (cannot occur for valid `n >= 2`).
pub fn pqc_qubit_ladder(n: usize, layers: usize) -> Result<QuditCircuit> {
    let mut circ = QuditCircuit::qubits(n);
    let u3 = circ.cache_operation(gates::u3())?;
    let cx = circ.cache_operation(gates::cnot())?;
    for q in 0..n {
        circ.append_ref(u3, vec![q])?;
    }
    for layer in 0..layers {
        let a = layer % (n - 1);
        let b = a + 1;
        circ.append_ref(cx, vec![a, b])?;
        circ.append_ref(u3, vec![a])?;
        circ.append_ref(u3, vec![b])?;
    }
    Ok(circ)
}

/// Builds the qutrit analogue of [`pqc_qubit_ladder`]: general single-qutrit gates on
/// every qutrit, then `layers` blocks of a CSUM followed by single-qutrit gates on the
/// pair (Fig. 5's qutrit benchmark uses CSUM and qutrit phase gates in place of CNOT and
/// U3).
///
/// # Errors
///
/// Propagates [`crate::CircuitError`] (cannot occur for valid `n >= 2`).
pub fn pqc_qutrit_ladder(n: usize, layers: usize) -> Result<QuditCircuit> {
    let mut circ = QuditCircuit::qutrits(n);
    let local = circ.cache_operation(gates::qutrit_u())?;
    let phase = circ.cache_operation(gates::qutrit_phase())?;
    let csum = circ.cache_operation(gates::csum())?;
    for q in 0..n {
        circ.append_ref(local, vec![q])?;
    }
    for layer in 0..layers {
        let a = layer % (n - 1);
        let b = a + 1;
        circ.append_ref(csum, vec![a, b])?;
        circ.append_ref(phase, vec![a])?;
        circ.append_ref(local, vec![b])?;
    }
    Ok(circ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_tensor::C64;

    #[test]
    fn qft_structure_and_unitarity() {
        let c = qft(3).unwrap();
        // 3 Hadamards + 3 controlled phases + 1 swap.
        assert_eq!(c.num_ops(), 7);
        assert_eq!(c.num_params(), 0);
        let u = c.unitary::<f64>(&[]).unwrap();
        assert!(u.is_unitary(1e-12));
        // Compare against the closed-form QFT matrix: U[j][k] = ω^{jk} / √N.
        let n = 8usize;
        let omega = 2.0 * std::f64::consts::PI / n as f64;
        for j in 0..n {
            for k in 0..n {
                let expect = C64::cis(omega * (j * k) as f64).scale(1.0 / (n as f64).sqrt());
                assert!(
                    u.get(j, k).dist(expect) < 1e-10,
                    "QFT element ({j},{k}): {} vs {expect}",
                    u.get(j, k)
                );
            }
        }
    }

    #[test]
    fn qft_op_count_scales_quadratically() {
        let c = qft(10).unwrap();
        // n Hadamards + n(n-1)/2 controlled phases + n/2 swaps.
        assert_eq!(c.num_ops(), 10 + 45 + 5);
        assert_eq!(c.expressions().len(), 3);
    }

    #[test]
    fn dtc_structure() {
        let c = dtc(4).unwrap();
        // Per layer: 4 RX + 4 RZ + 3 RZZ = 11 ops, times 4 layers.
        assert_eq!(c.num_ops(), 44);
        assert_eq!(c.num_params(), 0);
        assert_eq!(c.expressions().len(), 3);
        let u = c.unitary::<f64>(&[]).unwrap();
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn dtc_with_custom_layers() {
        let c = dtc_with_layers(3, 2).unwrap();
        assert_eq!(c.num_ops(), 2 * (3 + 3 + 2));
    }

    #[test]
    fn qubit_ladder_parameters() {
        let shallow = pqc_qubit_ladder(3, 2).unwrap();
        // 3 initial U3 + 2 layers × (CNOT + 2 U3) = 3 + 6 ops of U3 → 9·3 params... count:
        // U3 count = 3 + 2*2 = 7, params = 21.
        assert_eq!(shallow.num_ops(), 3 + 2 * 3);
        assert_eq!(shallow.num_params(), 21);
        let params: Vec<f64> = (0..shallow.num_params()).map(|k| 0.1 * k as f64).collect();
        assert!(shallow.unitary::<f64>(&params).unwrap().is_unitary(1e-10));
    }

    #[test]
    fn qutrit_ladder_parameters() {
        let c = pqc_qutrit_ladder(2, 1).unwrap();
        // 2 QutritU (8 params each) + 1 layer × (CSUM + P3(2) + QutritU(8)).
        assert_eq!(c.num_ops(), 2 + 3);
        assert_eq!(c.num_params(), 16 + 2 + 8);
        assert_eq!(c.dim(), 9);
        let params: Vec<f64> = (0..c.num_params()).map(|k| 0.05 * (k + 1) as f64).collect();
        assert!(c.unitary::<f64>(&params).unwrap().is_unitary(1e-10));
    }

    #[test]
    fn large_construction_is_fast_smoke_test() {
        // Not a benchmark, just a guard that construction stays cheap bookkeeping.
        let c = qft(64).unwrap();
        assert_eq!(c.num_ops(), 64 + 64 * 63 / 2 + 32);
    }
}
