//! Template / layer generation: expanding a candidate circuit by one two-qudit
//! building block at a time over a coupling graph.
//!
//! A candidate is identified by its **block sequence** — the list of coupling-edge
//! indices it entangles, in order. The generator turns block sequences into circuits
//! (via the incremental `qudit-circuit` builder hooks) and into tensor networks (via
//! the incremental `qudit-network` extension API), and enumerates the legal one-block
//! expansions of a node.
//!
//! Building blocks are drawn from a pluggable [`GateSet`] registry — locals keyed by
//! radix, entanglers keyed by (unordered) radix pair — so mixed-radix edges (e.g. a
//! qubit–qutrit `(2, 3)` pair) and user-defined gates flow through the search with no
//! further changes.

use qudit_circuit::{builders, GateSet, QuditCircuit};
use qudit_network::TensorNetwork;

use crate::topology::CouplingGraph;
use crate::SynthesisError;

/// Generates QSearch-style layered templates over a coupling graph.
#[derive(Debug, Clone)]
pub struct LayerGenerator {
    radices: Vec<usize>,
    coupling: CouplingGraph,
    /// The building-block registry, validated up front: every radix has a local and
    /// every coupling edge's radix pair has an entangler.
    gate_set: GateSet,
}

impl LayerGenerator {
    /// Builds a generator over the default gate set for `radices` (U3/CNOT for
    /// qubits, the general qutrit gate/CSUM for qutrits, the embedded controlled
    /// shift for mixed `(2, 3)` edges).
    ///
    /// # Errors
    ///
    /// See [`LayerGenerator::with_gate_set`].
    pub fn new(radices: &[usize], coupling: &CouplingGraph) -> Result<Self, SynthesisError> {
        Self::with_gate_set(radices, coupling, GateSet::default_for(radices))
    }

    /// Builds a generator drawing building blocks from an explicit [`GateSet`],
    /// validating the registry against the system up front.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::UnsupportedRadix`] when a radix has no registered
    /// local gate, and [`SynthesisError::InvalidCoupling`] when an edge's radix pair
    /// has no registered entangler or the graph size disagrees with `radices`.
    pub fn with_gate_set(
        radices: &[usize],
        coupling: &CouplingGraph,
        gate_set: GateSet,
    ) -> Result<Self, SynthesisError> {
        if radices.len() != coupling.num_qudits() {
            return Err(SynthesisError::InvalidCoupling(format!(
                "coupling graph spans {} qudit(s) but {} radices were given",
                coupling.num_qudits(),
                radices.len()
            )));
        }
        for &radix in radices {
            if gate_set.local(radix).is_none() {
                return Err(SynthesisError::UnsupportedRadix(radix));
            }
        }
        for &(a, b) in coupling.edges() {
            let (ra, rb) = (radices[a], radices[b]);
            if gate_set.entangler(ra, rb).is_none() {
                return Err(SynthesisError::InvalidCoupling(format!(
                    "edge ({a}, {b}) needs an entangler registered for radix pair \
                     ({}, {}), but the gate set has none",
                    ra.min(rb),
                    ra.max(rb)
                )));
            }
        }
        Ok(LayerGenerator { radices: radices.to_vec(), coupling: coupling.clone(), gate_set })
    }

    /// The qudit radices.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// The coupling graph expansions draw edges from.
    pub fn coupling(&self) -> &CouplingGraph {
        &self.coupling
    }

    /// The validated building-block registry.
    pub fn gate_set(&self) -> &GateSet {
        &self.gate_set
    }

    /// The edge pairs for a block sequence.
    pub fn edges_of(&self, blocks: &[usize]) -> Vec<(usize, usize)> {
        blocks.iter().map(|&e| self.coupling.edges()[e]).collect()
    }

    /// Builds the circuit for a block sequence: the local-only seed followed by one
    /// building block per entry.
    ///
    /// # Errors
    ///
    /// Propagates [`SynthesisError::Circuit`] (cannot occur for validated generators
    /// and in-range block indices).
    pub fn circuit_for(&self, blocks: &[usize]) -> Result<QuditCircuit, SynthesisError> {
        Ok(builders::pqc_template_with(&self.radices, &self.edges_of(blocks), &self.gate_set)?)
    }

    /// Lowers the local-only seed template to a tensor network.
    ///
    /// # Errors
    ///
    /// Propagates [`SynthesisError::Circuit`] (cannot occur for validated generators).
    pub fn seed_network(&self) -> Result<TensorNetwork, SynthesisError> {
        Ok(TensorNetwork::from_circuit(&builders::pqc_initial_with(&self.radices, &self.gate_set)?))
    }

    /// Extends a node's tensor network by one building block **in place of a full
    /// re-lowering**: clones the parent network and pushes the entangler and the two
    /// local gates — the recompile-on-expansion path. The appended gates allocate
    /// trailing circuit parameters, so the parent's optimized parameter vector remains
    /// a valid warm-start prefix for the child. The entangler's wire order matches its
    /// expression radices, so a `(2, 3)`-registered entangler also serves an edge
    /// whose lower wire is the qutrit.
    pub fn extend_network(&self, parent: &TensorNetwork, edge_index: usize) -> TensorNetwork {
        let (a, b) = self.coupling.edges()[edge_index];
        let (ra, rb) = (self.radices[a], self.radices[b]);
        let entangler = self.gate_set.entangler(ra, rb).expect("validated at construction");
        let local_a = self.gate_set.local(ra).expect("validated at construction");
        let local_b = self.gate_set.local(rb).expect("validated at construction");
        let ent_wires = qudit_circuit::oriented_entangler_wires(entangler, a, b, &self.radices);
        let mut network = parent.clone();
        if entangler.num_params() > 0 {
            network.push_parameterized(entangler, ent_wires);
        } else {
            network.push_constant(entangler, ent_wires, &[]);
        }
        network.push_parameterized(local_a, vec![a]);
        network.push_parameterized(local_b, vec![b]);
        network
    }

    /// The one-block expansions of a node: one child block sequence per coupling edge.
    pub fn expansions(&self, blocks: &[usize]) -> Vec<Vec<usize>> {
        (0..self.coupling.edges().len())
            .map(|edge| {
                let mut child = Vec::with_capacity(blocks.len() + 1);
                child.extend_from_slice(blocks);
                child.push(edge);
                child
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::gates;

    #[test]
    fn expansions_follow_the_coupling_graph() {
        // On a 3-qubit line only (0,1) and (1,2) blocks may ever appear — (0,2) is
        // not coupled and must never be proposed.
        let coupling = CouplingGraph::linear(3);
        let generator = LayerGenerator::new(&[2, 2, 2], &coupling).unwrap();
        let children = generator.expansions(&[]);
        assert_eq!(children, vec![vec![0], vec![1]]);
        for child in &children {
            for (a, b) in generator.edges_of(child) {
                assert!(coupling.contains(a, b), "expansion used uncoupled pair ({a},{b})");
                assert!((a, b) != (0, 2));
            }
        }
        let deeper = generator.expansions(&[1]);
        assert_eq!(deeper, vec![vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn circuit_for_matches_template_shape() {
        let generator = LayerGenerator::new(&[2, 2], &CouplingGraph::linear(2)).unwrap();
        let seed = generator.circuit_for(&[]).unwrap();
        assert_eq!(seed.num_ops(), 2);
        assert_eq!(seed.num_params(), 6);
        let one = generator.circuit_for(&[0]).unwrap();
        assert_eq!(one.num_ops(), 5);
        assert_eq!(one.num_params(), 12);
    }

    #[test]
    fn extend_network_matches_full_lowering() {
        let generator = LayerGenerator::new(&[3, 3], &CouplingGraph::linear(2)).unwrap();
        let seed = generator.seed_network().unwrap();
        let extended = generator.extend_network(&seed, 0);
        let relowered = TensorNetwork::from_circuit(&generator.circuit_for(&[0]).unwrap());
        assert_eq!(extended.num_params(), relowered.num_params());
        assert_eq!(extended.nodes().len(), relowered.nodes().len());
        for (a, b) in extended.nodes().iter().zip(relowered.nodes()) {
            assert_eq!(a.qudits, b.qudits);
            assert_eq!(a.bindings, b.bindings);
        }
    }

    #[test]
    fn mixed_radix_extension_matches_full_lowering() {
        // A qubit–qutrit line is now a first-class template space; the incremental
        // network extension must agree with a from-scratch lowering, in both wire
        // orders (the [3, 2] case applies the entangler with reversed wires).
        for radices in [[2usize, 3], [3, 2]] {
            let generator = LayerGenerator::new(&radices, &CouplingGraph::linear(2)).unwrap();
            let seed = generator.seed_network().unwrap();
            let extended = generator.extend_network(&seed, 0);
            let relowered = TensorNetwork::from_circuit(&generator.circuit_for(&[0]).unwrap());
            assert_eq!(extended.num_params(), relowered.num_params());
            assert_eq!(extended.nodes().len(), relowered.nodes().len());
            for (a, b) in extended.nodes().iter().zip(relowered.nodes()) {
                assert_eq!(a.qudits, b.qudits, "radices {radices:?}");
                assert_eq!(a.bindings, b.bindings, "radices {radices:?}");
            }
        }
    }

    #[test]
    fn rejects_unsupported_radices_and_missing_entanglers() {
        assert!(matches!(
            LayerGenerator::new(&[5, 5], &CouplingGraph::linear(2)),
            Err(SynthesisError::UnsupportedRadix(5))
        ));
        // Mixed (2, 3) edges are supported by the default registry now.
        assert!(LayerGenerator::new(&[2, 3], &CouplingGraph::linear(2)).is_ok());
        assert!(matches!(
            LayerGenerator::new(&[2, 2, 2], &CouplingGraph::linear(2)),
            Err(SynthesisError::InvalidCoupling(_))
        ));
    }

    #[test]
    fn missing_entangler_error_names_the_radix_pair() {
        // The registry lookup key — the normalized radix pair — appears in the error,
        // so a user registering a custom set knows exactly which entry is missing.
        let mut locals_only = GateSet::new();
        locals_only.register_local(gates::u3()).unwrap();
        locals_only.register_local(gates::qutrit_u()).unwrap();
        let err = LayerGenerator::with_gate_set(&[3, 2], &CouplingGraph::linear(2), locals_only)
            .unwrap_err();
        match err {
            SynthesisError::InvalidCoupling(detail) => {
                assert!(detail.contains("edge (0, 1)"), "{detail}");
                assert!(detail.contains("radix pair (2, 3)"), "{detail}");
            }
            other => panic!("expected InvalidCoupling, got {other:?}"),
        }
        // A radix without a local gate reports UnsupportedRadix, and its Display
        // names the radix.
        let err = LayerGenerator::new(&[5, 5], &CouplingGraph::linear(2)).unwrap_err();
        assert_eq!(err.to_string(), "no synthesis gate set registered for radix 5");
    }
}
