//! Template / layer generation: expanding a candidate circuit by one two-qudit
//! building block at a time over a coupling graph.
//!
//! A candidate is identified by its **block sequence** — the list of coupling-edge
//! indices it entangles, in order. The generator turns block sequences into circuits
//! (via the incremental `qudit-circuit` builder hooks) and into tensor networks (via
//! the incremental `qudit-network` extension API), and enumerates the legal one-block
//! expansions of a node.

use std::collections::HashMap;

use qudit_circuit::{builders, QuditCircuit};
use qudit_network::TensorNetwork;
use qudit_qgl::UnitaryExpression;

use crate::topology::CouplingGraph;
use crate::SynthesisError;

/// Generates QSearch-style layered templates over a coupling graph.
#[derive(Debug, Clone)]
pub struct LayerGenerator {
    radices: Vec<usize>,
    coupling: CouplingGraph,
    /// Per-radix `(entangler, local)` building-block gates, resolved once.
    gate_sets: HashMap<usize, (UnitaryExpression, UnitaryExpression)>,
}

impl LayerGenerator {
    /// Builds a generator, resolving the per-radix gate sets up front.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::UnsupportedRadix`] when a radix has no registered
    /// gate set, and [`SynthesisError::InvalidCoupling`] when an edge couples qudits
    /// of different radices (no mixed-radix entangler is registered) or the graph size
    /// disagrees with `radices`.
    pub fn new(radices: &[usize], coupling: &CouplingGraph) -> Result<Self, SynthesisError> {
        if radices.len() != coupling.num_qudits() {
            return Err(SynthesisError::InvalidCoupling(format!(
                "coupling graph spans {} qudit(s) but {} radices were given",
                coupling.num_qudits(),
                radices.len()
            )));
        }
        let mut gate_sets = HashMap::new();
        for &radix in radices {
            if let std::collections::hash_map::Entry::Vacant(entry) = gate_sets.entry(radix) {
                let entangler = builders::synthesis_entangler(radix)
                    .ok_or(SynthesisError::UnsupportedRadix(radix))?;
                let local = builders::synthesis_local(radix)
                    .ok_or(SynthesisError::UnsupportedRadix(radix))?;
                entry.insert((entangler, local));
            }
        }
        for &(a, b) in coupling.edges() {
            if radices[a] != radices[b] {
                return Err(SynthesisError::InvalidCoupling(format!(
                    "edge ({a}, {b}) couples radix {} to radix {}; no mixed-radix \
                     entangler is registered",
                    radices[a], radices[b]
                )));
            }
        }
        Ok(LayerGenerator { radices: radices.to_vec(), coupling: coupling.clone(), gate_sets })
    }

    /// The qudit radices.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// The coupling graph expansions draw edges from.
    pub fn coupling(&self) -> &CouplingGraph {
        &self.coupling
    }

    /// The edge pairs for a block sequence.
    pub fn edges_of(&self, blocks: &[usize]) -> Vec<(usize, usize)> {
        blocks.iter().map(|&e| self.coupling.edges()[e]).collect()
    }

    /// Builds the circuit for a block sequence: the local-only seed followed by one
    /// building block per entry.
    ///
    /// # Errors
    ///
    /// Propagates [`SynthesisError::Circuit`] (cannot occur for validated generators
    /// and in-range block indices).
    pub fn circuit_for(&self, blocks: &[usize]) -> Result<QuditCircuit, SynthesisError> {
        Ok(builders::pqc_template(&self.radices, &self.edges_of(blocks))?)
    }

    /// Lowers the local-only seed template to a tensor network.
    ///
    /// # Errors
    ///
    /// Propagates [`SynthesisError::Circuit`] (cannot occur for validated generators).
    pub fn seed_network(&self) -> Result<TensorNetwork, SynthesisError> {
        Ok(TensorNetwork::from_circuit(&builders::pqc_initial(&self.radices)?))
    }

    /// Extends a node's tensor network by one building block **in place of a full
    /// re-lowering**: clones the parent network and pushes the entangler and the two
    /// local gates — the recompile-on-expansion path. The appended gates allocate
    /// trailing circuit parameters, so the parent's optimized parameter vector remains
    /// a valid warm-start prefix for the child.
    pub fn extend_network(&self, parent: &TensorNetwork, edge_index: usize) -> TensorNetwork {
        let (a, b) = self.coupling.edges()[edge_index];
        let (entangler, local) = &self.gate_sets[&self.radices[a]];
        let mut network = parent.clone();
        if entangler.num_params() > 0 {
            network.push_parameterized(entangler, vec![a, b]);
        } else {
            network.push_constant(entangler, vec![a, b], &[]);
        }
        network.push_parameterized(local, vec![a]);
        network.push_parameterized(local, vec![b]);
        network
    }

    /// The one-block expansions of a node: one child block sequence per coupling edge.
    pub fn expansions(&self, blocks: &[usize]) -> Vec<Vec<usize>> {
        (0..self.coupling.edges().len())
            .map(|edge| {
                let mut child = Vec::with_capacity(blocks.len() + 1);
                child.extend_from_slice(blocks);
                child.push(edge);
                child
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansions_follow_the_coupling_graph() {
        // On a 3-qubit line only (0,1) and (1,2) blocks may ever appear — (0,2) is
        // not coupled and must never be proposed.
        let coupling = CouplingGraph::linear(3);
        let generator = LayerGenerator::new(&[2, 2, 2], &coupling).unwrap();
        let children = generator.expansions(&[]);
        assert_eq!(children, vec![vec![0], vec![1]]);
        for child in &children {
            for (a, b) in generator.edges_of(child) {
                assert!(coupling.contains(a, b), "expansion used uncoupled pair ({a},{b})");
                assert!((a, b) != (0, 2));
            }
        }
        let deeper = generator.expansions(&[1]);
        assert_eq!(deeper, vec![vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn circuit_for_matches_template_shape() {
        let generator = LayerGenerator::new(&[2, 2], &CouplingGraph::linear(2)).unwrap();
        let seed = generator.circuit_for(&[]).unwrap();
        assert_eq!(seed.num_ops(), 2);
        assert_eq!(seed.num_params(), 6);
        let one = generator.circuit_for(&[0]).unwrap();
        assert_eq!(one.num_ops(), 5);
        assert_eq!(one.num_params(), 12);
    }

    #[test]
    fn extend_network_matches_full_lowering() {
        let generator = LayerGenerator::new(&[3, 3], &CouplingGraph::linear(2)).unwrap();
        let seed = generator.seed_network().unwrap();
        let extended = generator.extend_network(&seed, 0);
        let relowered = TensorNetwork::from_circuit(&generator.circuit_for(&[0]).unwrap());
        assert_eq!(extended.num_params(), relowered.num_params());
        assert_eq!(extended.nodes().len(), relowered.nodes().len());
        for (a, b) in extended.nodes().iter().zip(relowered.nodes()) {
            assert_eq!(a.qudits, b.qudits);
            assert_eq!(a.bindings, b.bindings);
        }
    }

    #[test]
    fn rejects_unsupported_and_mixed_radices() {
        assert!(matches!(
            LayerGenerator::new(&[5, 5], &CouplingGraph::linear(2)),
            Err(SynthesisError::UnsupportedRadix(5))
        ));
        assert!(matches!(
            LayerGenerator::new(&[2, 3], &CouplingGraph::linear(2)),
            Err(SynthesisError::InvalidCoupling(_))
        ));
        assert!(matches!(
            LayerGenerator::new(&[2, 2, 2], &CouplingGraph::linear(2)),
            Err(SynthesisError::InvalidCoupling(_))
        ));
    }
}
