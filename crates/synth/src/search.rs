//! The bottom-up A*/beam synthesis search.
//!
//! Starting from a local-gates-only seed template, the search repeatedly pops the most
//! promising node (lowest `f = √infidelity + block_weight · depth`, the QSearch-style
//! heuristic trading solution quality against gate count), expands it by one building
//! block per coupling edge, instantiates all children in parallel, and stops as soon
//! as a child's instantiated Hilbert–Schmidt infidelity drops below the success
//! threshold. The open list is pruned to `beam_width` nodes, turning plain A* into a
//! beam search for large topologies.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use qudit_circuit::{GateSet, QuditCircuit};
use qudit_optimize::{BackendKind, InstantiateConfig, SUCCESS_THRESHOLD};
use qudit_qvm::{CompileOptions, ExpressionCache};
use qudit_tensor::Matrix;
use qudit_trace::TraceRegistry;

use crate::frontier::{evaluate_frontier, Candidate, EvaluatedCandidate};
use crate::layers::LayerGenerator;
use crate::refine::{fold_constants, refine_deletions, FoldConfig, RefineConfig};
use crate::topology::CouplingGraph;
use crate::SynthesisError;

/// Configuration of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// The qudit radices of the target system (e.g. `[2, 2]` for two qubits).
    pub radices: Vec<usize>,
    /// Which pairs may be entangled.
    pub coupling: CouplingGraph,
    /// The building-block registry the search draws from: locals keyed by radix,
    /// entanglers keyed by (unordered) radix pair. Defaults to
    /// [`GateSet::default_for`] the radices; replace it to synthesize over a custom
    /// (e.g. hardware-native) gate set.
    pub gate_set: GateSet,
    /// Maximum number of entangling blocks in a candidate (the search depth bound).
    pub max_blocks: usize,
    /// Open-list cap: after each expansion only the `beam_width` best nodes survive.
    pub beam_width: usize,
    /// Total candidate-instantiation budget across the whole search.
    pub max_nodes: usize,
    /// Infidelity below which a candidate is accepted (early exit).
    pub success_threshold: f64,
    /// Weight of the gate-count term in the A* heuristic
    /// `f = √infidelity + block_weight · blocks`.
    pub block_weight: f64,
    /// Per-candidate instantiation settings. The frontier evaluator owns the thread
    /// budget: candidates are evaluated concurrently, and a candidate's own starts run
    /// in parallel only when the frontier is narrower than the worker pool.
    pub instantiate: InstantiateConfig,
    /// Worker threads for the frontier evaluator (`0` = available parallelism).
    pub threads: usize,
    /// Base seed for all per-candidate deterministic seeds.
    pub seed: u64,
    /// Whether to run the post-synthesis refinement pass (gate deletion and
    /// re-instantiation, then symbolic constant folding) on a successful result.
    pub refine: bool,
    /// Element-wise tolerance for the up-front `target` unitarity validation. Long
    /// mixed-precision pipelines produce targets whose deviation exceeds the strict
    /// default; widen this instead of pre-polishing the matrix.
    pub unitary_tolerance: f64,
    /// The TNVM execution tier every evaluator in the pipeline (frontier workers,
    /// refinement, constant folding) lowers through. Defaults to the process-wide tier
    /// (`OPENQUDIT_TNVM_BACKEND`, else scalar).
    pub backend: BackendKind,
    /// Observability sink threaded through the whole pipeline (search spans and
    /// counters, instantiation counters, kernel-dispatch counts). Disabled by default;
    /// the `qudit-compile` driver installs an enabled registry per compilation.
    pub trace: TraceRegistry,
}

impl SynthesisConfig {
    /// A default configuration for the given radices on a line — the general
    /// constructor behind [`SynthesisConfig::qubits`]/[`SynthesisConfig::qutrits`],
    /// and the entry point for mixed-radix systems (e.g. `vec![2, 3]` for a
    /// qubit–qutrit pair).
    pub fn with_radices(radices: Vec<usize>) -> Self {
        let n = radices.len();
        SynthesisConfig {
            gate_set: GateSet::default_for(&radices),
            radices,
            coupling: CouplingGraph::linear(n),
            max_blocks: 8,
            beam_width: 8,
            max_nodes: 256,
            success_threshold: SUCCESS_THRESHOLD,
            block_weight: 1e-2,
            instantiate: InstantiateConfig { starts: 4, ..Default::default() },
            threads: 0,
            seed: 0,
            refine: true,
            unitary_tolerance: 1e-8,
            backend: BackendKind::default(),
            trace: TraceRegistry::disabled(),
        }
    }

    /// A default configuration for `n` qubits on a line.
    pub fn qubits(n: usize) -> Self {
        SynthesisConfig::with_radices(vec![2; n])
    }

    /// A default configuration for `n` qutrits on a line.
    pub fn qutrits(n: usize) -> Self {
        SynthesisConfig::with_radices(vec![3; n])
    }

    /// The worker-thread count the frontier evaluator will use.
    pub fn effective_threads(&self) -> usize {
        qudit_optimize::resolve_threads(self.threads)
    }

    /// The deterministic instantiation configuration every stage of the pipeline
    /// derives its per-candidate seeds from: the configured instantiation settings with
    /// the success threshold applied and the search seed mixed into the base seed.
    pub fn frontier_instantiate_config(&self) -> InstantiateConfig {
        let mut config = self.instantiate.clone();
        config.success_threshold = self.success_threshold;
        config.seed ^= self.seed;
        config.backend = self.backend;
        config.trace = self.trace.clone();
        config
    }

    /// The refinement (gate-deletion) configuration the default pipeline derives from
    /// this search configuration — exactly the derivation the monolithic
    /// `synthesize_with_cache` entry point has always used, factored out so a
    /// pass-based pipeline reproduces the legacy path byte for byte.
    pub fn refine_config(&self) -> RefineConfig {
        let instantiate = self.frontier_instantiate_config();
        RefineConfig {
            success_threshold: self.success_threshold,
            seed: instantiate.seed ^ 0xcafe_f00d_5eed_0001,
            instantiate,
            gate_set: Some(self.gate_set.clone()),
            ..RefineConfig::default()
        }
    }

    /// The constant-folding configuration the default pipeline derives from this
    /// search configuration. Constification (fully-snapped parameterized gates turned
    /// into constant gates, so the JIT compiles cheaper expressions) is enabled.
    pub fn fold_config(&self) -> FoldConfig {
        FoldConfig {
            success_threshold: self.success_threshold,
            constify: true,
            backend: self.backend,
            ..FoldConfig::default()
        }
    }
}

/// The outcome of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The synthesized template with the chosen building blocks.
    pub circuit: QuditCircuit,
    /// The instantiated parameter values for `circuit`.
    pub params: Vec<f64>,
    /// The Hilbert–Schmidt infidelity of `circuit(params)` against the target.
    pub infidelity: f64,
    /// Number of candidate circuits instantiated during the search.
    pub nodes_expanded: usize,
    /// The coupling-edge pairs of the chosen blocks, in circuit order.
    pub blocks: Vec<(usize, usize)>,
    /// Whether `infidelity` is below the configured success threshold.
    pub success: bool,
    /// Entangling blocks removed by the refinement pass (`0` when refinement did not
    /// run or found nothing to delete). The pre-refine depth is
    /// `blocks.len() + blocks_deleted`.
    pub blocks_deleted: usize,
    /// The infidelity after refinement, `Some` exactly when the refinement pass ran.
    pub refined_infidelity: Option<f64>,
    /// Parameters the refinement pass snapped to exact symbolic constants.
    pub params_folded: usize,
    /// Parameterized gates whose parameters all snapped to symbolic constants and were
    /// converted into constant gate applications (so re-compiling the circuit JITs
    /// cheaper, constant-folded expressions). `0` when constification did not run.
    pub gates_constified: usize,
}

/// One open-list entry. Ordered so that `BinaryHeap` pops the lowest `f` first, with
/// deterministic tie-breaking on depth and then block sequence.
struct OpenNode {
    f: f64,
    blocks: Vec<usize>,
    params: Vec<f64>,
    network: qudit_network::TensorNetwork,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest f on top.
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| other.blocks.len().cmp(&self.blocks.len()))
            .then_with(|| other.blocks.cmp(&self.blocks))
    }
}

/// Synthesizes a circuit implementing `target` over the configured template space,
/// running the full legacy pipeline (search, then gate-deletion refinement and
/// constant folding when [`SynthesisConfig::refine`] is set).
///
/// # Errors
///
/// Returns a [`SynthesisError`] when the configuration is inconsistent (unsupported
/// radices, disconnected or mismatched coupling graph) or the target's dimension does
/// not match the configured radices (or is not unitary).
#[deprecated(
    since = "0.2.0",
    note = "compose passes with qudit-compile's `Compiler` (e.g. \
            `Compiler::default_pipeline()`); this wrapper runs that same pipeline"
)]
pub fn synthesize(
    target: &Matrix<f64>,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    let cache = ExpressionCache::new();
    #[allow(deprecated)]
    synthesize_with_cache(target, config, &cache)
}

/// [`synthesize`] with an externally managed expression cache, so many synthesis calls
/// (e.g. the partitions of a large circuit) share one set of compiled gates.
///
/// This is a thin wrapper over the default pass pipeline: [`run_search`], then —
/// when [`SynthesisConfig::refine`] is set and the search succeeded —
/// [`refine_deletions`] and [`fold_constants`] with the configurations
/// [`SynthesisConfig::refine_config`] / [`SynthesisConfig::fold_config`] derive. A
/// `qudit-compile` `Compiler::default_pipeline()` run is byte-identical at the same
/// seed (pinned by the integration tests).
///
/// **Behavioral change vs. the pre-pipeline monolith:** because the wrapper tracks
/// the default pipeline, its fold stage now also *constifies* gates whose parameters
/// all snapped to symbolic constants — such gates come back as constant operations
/// and their entries leave `params` (see [`SynthesisResult::gates_constified`]).
/// Callers that need the old always-parameterized shape should call [`run_search`] +
/// [`crate::refine`](fn@crate::refine) (whose fold keeps constification off) instead.
///
/// # Errors
///
/// See [`synthesize`].
#[deprecated(
    since = "0.2.0",
    note = "compose passes with qudit-compile's `Compiler` (e.g. \
            `Compiler::default_pipeline()`); this wrapper runs that same pipeline"
)]
pub fn synthesize_with_cache(
    target: &Matrix<f64>,
    config: &SynthesisConfig,
    cache: &ExpressionCache,
) -> Result<SynthesisResult, SynthesisError> {
    let result = run_search(target, config, cache)?;
    if config.refine && result.success {
        let result = refine_deletions(&result, target, &config.refine_config(), cache)?;
        return fold_constants(&result, target, &config.fold_config(), cache);
    }
    Ok(result)
}

/// The bottom-up A*/beam search itself — the engine stage behind `SynthesisPass` in
/// the `qudit-compile` pipeline. Never refines: gate deletion and constant folding are
/// separate pipeline stages ([`refine_deletions`], [`fold_constants`]).
///
/// The search is bottom-up and instantiation-driven: every candidate's quality is the
/// numerically instantiated Hilbert–Schmidt infidelity, produced by the TNVM pipeline
/// with one shared [`ExpressionCache`] for the entire search.
///
/// # Errors
///
/// Returns a [`SynthesisError`] when the configuration is inconsistent (unsupported
/// radices, disconnected or mismatched coupling graph) or the target's dimension does
/// not match the configured radices (or is not unitary).
pub fn run_search(
    target: &Matrix<f64>,
    config: &SynthesisConfig,
    cache: &ExpressionCache,
) -> Result<SynthesisResult, SynthesisError> {
    let generator =
        LayerGenerator::with_gate_set(&config.radices, &config.coupling, config.gate_set.clone())?;
    validate_target(target, config)?;
    let trace = &config.trace;
    let _search_span = trace.span("search");

    // Pre-compile the (tiny) gate set once, so frontier workers never race a cold
    // cache into compiling the same expression twice. The generator validated every
    // lookup, so the registry reads cannot fail; iteration order is deterministic
    // (BTreeSet over radices, then over edge radix pairs) — so the prewarm's lookup
    // outcomes are deterministic and counted directly.
    let seed_network = generator.seed_network()?;
    let options = CompileOptions::with_gradient();
    let gate_set = generator.gate_set();
    let mut prewarm_hits = 0u64;
    let mut prewarm_misses = 0u64;
    let mut prewarm = |hit: bool| {
        if hit {
            prewarm_hits += 1;
        } else {
            prewarm_misses += 1;
        }
    };
    for radix in config.radices.iter().copied().collect::<std::collections::BTreeSet<_>>() {
        let local = gate_set.local(radix).expect("generator validated every radix");
        prewarm(cache.get_or_compile_traced(local, &options).1);
    }
    let edge_pairs: std::collections::BTreeSet<(usize, usize)> = config
        .coupling
        .edges()
        .iter()
        .map(|&(a, b)| {
            let (ra, rb) = (config.radices[a], config.radices[b]);
            (ra.min(rb), ra.max(rb))
        })
        .collect();
    for (ra, rb) in edge_pairs {
        let entangler = gate_set.entangler(ra, rb).expect("generator validated every edge");
        prewarm(cache.get_or_compile_traced(entangler, &options).1);
    }
    if prewarm_hits > 0 {
        trace.add("cache.hits", prewarm_hits);
    }
    if prewarm_misses > 0 {
        trace.add("cache.misses", prewarm_misses);
    }

    let threads = config.effective_threads();
    let frontier_cfg = config.frontier_instantiate_config();

    let mut nodes_expanded = 0usize;

    // Evaluate the root (local gates only) first: single-qudit-equivalent targets
    // synthesize without any entangler.
    let root_candidate =
        Candidate { blocks: Vec::new(), network: seed_network.clone(), warm_start: None };
    let root = evaluate_frontier(target, &[root_candidate], &frontier_cfg, 1, cache, false)
        .pop()
        .expect("root evaluation always returns");
    nodes_expanded += 1;
    trace.add("search.nodes_expanded", 1);

    let finish = |best: &EvaluatedCandidate, nodes_expanded: usize| {
        let circuit = generator.circuit_for(&best.blocks)?;
        Ok(SynthesisResult {
            blocks: generator.edges_of(&best.blocks),
            params: best.params.clone(),
            infidelity: best.infidelity,
            success: best.infidelity < config.success_threshold,
            circuit,
            nodes_expanded,
            blocks_deleted: 0,
            refined_infidelity: None,
            params_folded: 0,
            gates_constified: 0,
        })
    };

    if root.infidelity < config.success_threshold {
        return finish(&root, nodes_expanded);
    }

    let mut best = root.clone();
    let mut open: BinaryHeap<OpenNode> = BinaryHeap::new();
    open.push(OpenNode {
        f: heuristic(root.infidelity, 0, config.block_weight),
        blocks: root.blocks,
        params: root.params,
        network: seed_network,
    });

    while let Some(node) = open.pop() {
        if nodes_expanded >= config.max_nodes {
            break;
        }
        if node.blocks.len() >= config.max_blocks {
            continue;
        }
        // Generate and evaluate every one-block expansion of this node in parallel.
        let candidates: Vec<Candidate> = generator
            .expansions(&node.blocks)
            .into_iter()
            .map(|blocks| {
                let edge = *blocks.last().expect("expansions append one block");
                Candidate {
                    network: generator.extend_network(&node.network, edge),
                    warm_start: Some(node.params.clone()),
                    blocks,
                }
            })
            .take(config.max_nodes.saturating_sub(nodes_expanded))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let evaluated = evaluate_frontier(target, &candidates, &frontier_cfg, threads, cache, true);
        nodes_expanded += evaluated.len();
        trace.add("search.nodes_expanded", evaluated.len() as u64);

        // Deterministic winner selection: the frontier's evaluated set is itself
        // schedule-independent (see `evaluate_frontier`), and when several candidates
        // succeed the winner is chosen by the same total order `OpenNode` uses —
        // `(f, blocks.len(), blocks)` — not by which thread finished first.
        if let Some(winner) = evaluated
            .iter()
            .filter(|child| child.infidelity < config.success_threshold)
            .min_by(|a, b| candidate_order(a, b, config.block_weight))
        {
            return finish(winner, nodes_expanded);
        }
        // Best-effort tracking for the failure path stays infidelity-first (with the
        // same deterministic tie-breaks): a failed search should report the closest
        // approximation it evaluated, not the one the gate-count-penalized heuristic
        // happens to prefer.
        for child in &evaluated {
            if infidelity_order(child, &best) == CmpOrdering::Less {
                best = child.clone();
            }
        }

        // Move each surviving child's network out of its candidate (an early stop may
        // have skipped some candidates, so match by block sequence).
        let mut networks: Vec<(Vec<usize>, qudit_network::TensorNetwork)> =
            candidates.into_iter().map(|c| (c.blocks, c.network)).collect();
        for child in evaluated {
            let at = networks
                .iter()
                .position(|(blocks, _)| *blocks == child.blocks)
                .expect("every evaluated child came from a candidate");
            let (_, network) = networks.swap_remove(at);
            open.push(OpenNode {
                f: heuristic(child.infidelity, child.blocks.len(), config.block_weight),
                network,
                blocks: child.blocks,
                params: child.params,
            });
        }

        // Beam pruning: keep only the best `beam_width` open nodes.
        if config.beam_width > 0 && open.len() > config.beam_width {
            trace.add("search.nodes_pruned", (open.len() - config.beam_width) as u64);
            let mut kept: Vec<OpenNode> = Vec::with_capacity(config.beam_width);
            for _ in 0..config.beam_width {
                kept.push(open.pop().expect("heap holds more than beam_width nodes"));
            }
            open = kept.into_iter().collect();
        }
    }

    finish(&best, nodes_expanded)
}

/// Validates a target against a configuration the way every synthesis front door
/// must: matching dimension, numerical unitarity within the configured tolerance,
/// and a connected coupling graph. Shared by [`run_search`] and the `qudit-compile`
/// partitioning front-end, so wide and narrow targets get identical diagnostics.
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidTarget`] for shape/unitarity violations and
/// [`SynthesisError::InvalidCoupling`] for a disconnected graph.
pub fn validate_target(
    target: &Matrix<f64>,
    config: &SynthesisConfig,
) -> Result<(), SynthesisError> {
    let dim: usize = config.radices.iter().product();
    if target.rows() != dim || target.cols() != dim {
        return Err(SynthesisError::InvalidTarget(format!(
            "target is {}×{} but the radices {:?} require {dim}×{dim}",
            target.rows(),
            target.cols(),
            config.radices
        )));
    }
    // `>` alone would accept a NaN deviation, so compare through is-nan explicitly.
    let deviation = target.unitary_deviation();
    if deviation > config.unitary_tolerance || deviation.is_nan() {
        return Err(SynthesisError::InvalidTarget(format!(
            "target matrix is not unitary: max |U†U − I| element is {deviation:.3e} \
             (tolerance {:.3e})",
            config.unitary_tolerance
        )));
    }
    if config.radices.len() > 1 && !config.coupling.is_connected() {
        return Err(SynthesisError::InvalidCoupling(
            "coupling graph is disconnected; a generic target is unreachable".to_string(),
        ));
    }
    Ok(())
}

/// The QSearch-style A* priority: root-scaled distance plus a gate-count penalty.
fn heuristic(infidelity: f64, blocks: usize, block_weight: f64) -> f64 {
    infidelity.max(0.0).sqrt() + block_weight * blocks as f64
}

/// The deterministic total order over evaluated candidates — the same
/// `(f, blocks.len(), blocks)` ranking [`OpenNode`]'s `Ord` uses, so the candidate a
/// frontier promotes (or, among successes, returns) never depends on thread timing.
fn candidate_order(
    a: &EvaluatedCandidate,
    b: &EvaluatedCandidate,
    block_weight: f64,
) -> CmpOrdering {
    heuristic(a.infidelity, a.blocks.len(), block_weight)
        .total_cmp(&heuristic(b.infidelity, b.blocks.len(), block_weight))
        .then_with(|| a.blocks.len().cmp(&b.blocks.len()))
        .then_with(|| a.blocks.cmp(&b.blocks))
}

/// Deterministic ranking by raw infidelity (ties broken like [`candidate_order`]) —
/// used to track the best-effort answer a failed search returns.
fn infidelity_order(a: &EvaluatedCandidate, b: &EvaluatedCandidate) -> CmpOrdering {
    a.infidelity
        .total_cmp(&b.infidelity)
        .then_with(|| a.blocks.len().cmp(&b.blocks.len()))
        .then_with(|| a.blocks.cmp(&b.blocks))
}

#[cfg(test)]
mod tests {
    // The deprecated wrappers stay pinned by these tests until they are removed.
    #![allow(deprecated)]

    use super::*;
    use qudit_circuit::gates;
    use qudit_optimize::{haar_random_unitary, reachable_target};

    fn quick(mut config: SynthesisConfig) -> SynthesisConfig {
        config.instantiate.starts = 4;
        config.max_nodes = 64;
        config
    }

    #[test]
    fn synthesizes_cnot_with_one_block() {
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let result = synthesize(&target, &quick(SynthesisConfig::qubits(2))).unwrap();
        assert!(result.success, "infidelity {}", result.infidelity);
        assert!(result.infidelity < SUCCESS_THRESHOLD);
        assert_eq!(result.blocks, vec![(0, 1)]);
        assert_eq!(result.params.len(), result.circuit.num_params());
        assert!(result.nodes_expanded >= 2);
    }

    #[test]
    fn synthesizes_single_qubit_target_without_entanglers() {
        // H ⊗ H is a product of locals: the root node must already succeed.
        let mut circuit = QuditCircuit::qubits(2);
        let h = circuit.cache_operation(gates::hadamard()).unwrap();
        circuit.append_ref_constant(h, vec![0], vec![]).unwrap();
        circuit.append_ref_constant(h, vec![1], vec![]).unwrap();
        let target = circuit.unitary::<f64>(&[]).unwrap();
        let result = synthesize(&target, &quick(SynthesisConfig::qubits(2))).unwrap();
        assert!(result.success);
        assert!(result.blocks.is_empty(), "expected no entanglers, got {:?}", result.blocks);
        assert_eq!(result.nodes_expanded, 1);
    }

    #[test]
    fn respects_node_budget_and_reports_failure() {
        // A Haar-random 3-qubit unitary is far out of reach of a 2-block budget.
        let target = haar_random_unitary(8, 99);
        let mut config = SynthesisConfig::qubits(3);
        config.max_blocks = 1;
        config.max_nodes = 8;
        config.instantiate.starts = 1;
        let result = synthesize(&target, &config).unwrap();
        assert!(!result.success);
        assert!(result.infidelity > 1e-3);
        assert!(result.nodes_expanded <= 8);
    }

    #[test]
    fn rejects_bad_targets_and_configs() {
        let config = SynthesisConfig::qubits(2);
        // Wrong dimension.
        assert!(matches!(
            synthesize(&haar_random_unitary(8, 1), &config),
            Err(SynthesisError::InvalidTarget(_))
        ));
        // Non-unitary, with the measured deviation in the message.
        let bad = Matrix::<f64>::zeros(4, 4);
        match synthesize(&bad, &config) {
            Err(SynthesisError::InvalidTarget(message)) => {
                assert!(message.contains("not unitary"), "{message}");
                assert!(message.contains("tolerance"), "{message}");
            }
            other => panic!("expected InvalidTarget, got {other:?}"),
        }
        // A NaN-poisoned target must be rejected, not synthesized to `success`.
        let mut poisoned = Matrix::<f64>::identity(4);
        poisoned.set(0, 0, qudit_tensor::C64::new(f64::NAN, 0.0));
        assert!(matches!(synthesize(&poisoned, &config), Err(SynthesisError::InvalidTarget(_))));
        // Disconnected coupling.
        let mut disconnected = SynthesisConfig::qubits(4);
        disconnected.coupling = CouplingGraph::new(4, [(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            synthesize(&haar_random_unitary(16, 2), &disconnected),
            Err(SynthesisError::InvalidCoupling(_))
        ));
    }

    #[test]
    fn recovers_reachable_two_qutrit_target() {
        let template = qudit_circuit::builders::pqc_template(&[3, 3], &[(0, 1)]).unwrap();
        let target = reachable_target(&template, 12);
        let mut config = quick(SynthesisConfig::qutrits(2));
        config.max_blocks = 2;
        let result = synthesize(&target, &config).unwrap();
        assert!(result.success, "infidelity {}", result.infidelity);
        assert_eq!(result.circuit.radices(), &[3, 3]);
    }
}
