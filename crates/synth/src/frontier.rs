//! The parallel frontier evaluator: instantiates every candidate expansion of a search
//! step concurrently.
//!
//! Workers are scoped threads; each worker owns **one** TNVM-backed evaluator that it
//! re-targets per candidate through the arena-reusing `Tnvm::load` path, and all
//! workers share a single `ExpressionCache`, so each unique gate expression still
//! compiles exactly once per process no matter how many candidates the search visits.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use qudit_network::{compile_network, TensorNetwork};
use qudit_optimize::{instantiate, instantiate_parallel, InstantiateConfig, TnvmEvaluator};
use qudit_qvm::ExpressionCache;
use qudit_tensor::Matrix;
use qudit_tnvm::KernelCounters;
use qudit_trace::TraceRegistry;

/// One candidate circuit awaiting evaluation.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The block sequence identifying the candidate (coupling-edge indices, in order).
    pub blocks: Vec<usize>,
    /// The candidate's tensor network (parent network + one pushed block).
    pub network: TensorNetwork,
    /// Warm-start parameters inherited from the parent node, if any.
    pub warm_start: Option<Vec<f64>>,
}

/// An instantiated candidate.
#[derive(Debug, Clone)]
pub struct EvaluatedCandidate {
    /// The candidate's block sequence.
    pub blocks: Vec<usize>,
    /// Best parameters found.
    pub params: Vec<f64>,
    /// Hilbert–Schmidt infidelity at those parameters.
    pub infidelity: f64,
    /// Total LM iterations spent on this candidate.
    pub iterations: usize,
    /// Multi-start attempts this candidate consumed.
    pub starts: usize,
    /// Kernel-dispatch counters accumulated while instantiating this candidate.
    pub kernels: KernelCounters,
}

/// Derives a per-candidate instantiation seed from the block sequence, so evaluation
/// results do not depend on the order candidates are pulled off the work queue.
///
/// Each round mixes both the block index (offset by one, so edge `0` still perturbs
/// the state) and its position in the sequence (so permutations of the same multiset
/// of blocks hash apart) before the multiply/rotate diffusion step. The function is
/// public so determinism audits can assert collision-freedom over template spaces —
/// see the collision tests here and the proptest in the integration suite.
pub fn candidate_seed(base: u64, blocks: &[usize]) -> u64 {
    let mut seed = base ^ 0x51ed270b7a1c4e6d;
    for (position, &block) in blocks.iter().enumerate() {
        seed ^= (block as u64).wrapping_add(1).wrapping_mul(0x9E3779B97F4A7C15);
        seed ^= (position as u64).wrapping_add(1).rotate_left(32);
        seed = seed.wrapping_mul(0x100000001b3).rotate_left(17);
    }
    seed
}

/// Instantiates all `candidates` against `target` using up to `threads` scoped worker
/// threads (1 falls back to an in-thread loop).
///
/// When `stop_on_success` is set, the early stop is **schedule-independent**: the
/// returned set is exactly the candidates `0..=s`, where `s` is the lowest index whose
/// (deterministic, per-candidate-seeded) instantiation reaches
/// `instantiate_cfg.success_threshold`. Candidate issuance is monotonic, so every
/// index below `s` is always evaluated; higher-indexed candidates that thread timing
/// happened to finish are discarded, so identical runs return identical results and
/// the search layer's winner selection sees the same successes every time.
///
/// Results are returned in candidate order. The thread budget is split across
/// candidates first: a wide frontier runs one serial multi-start per worker (reusing
/// each worker's TNVM arena allocations across candidates), while a frontier narrower
/// than the pool gives each candidate `threads / candidates` workers for its
/// multi-start instead, so a single-edge coupling graph still uses the machine.
pub fn evaluate_frontier(
    target: &Matrix<f64>,
    candidates: &[Candidate],
    instantiate_cfg: &InstantiateConfig,
    threads: usize,
    cache: &ExpressionCache,
    stop_on_success: bool,
) -> Vec<EvaluatedCandidate> {
    let _span = instantiate_cfg.trace.span("frontier");
    let per_candidate_threads = (threads.max(1) / candidates.len().max(1)).max(1);
    let threads = threads.max(1).min(candidates.len().max(1));
    let next = AtomicUsize::new(0);
    // Lowest candidate index that reached the success threshold. Because indices are
    // issued in order and this only decreases, every candidate below the final value
    // is guaranteed to be evaluated — the key to the deterministic early stop.
    let min_success = AtomicUsize::new(usize::MAX);
    let results: Mutex<Vec<(usize, EvaluatedCandidate)>> =
        Mutex::new(Vec::with_capacity(candidates.len()));

    let worker = |evaluator_slot: &mut Option<TnvmEvaluator>| loop {
        // detlint: allow(thread-accumulation) — work-stealing ticket only; results
        // are re-sorted by index at the deterministic join
        let index = next.fetch_add(1, Ordering::Relaxed);
        if index > min_success.load(Ordering::Relaxed) {
            break;
        }
        let Some(candidate) = candidates.get(index) else { break };
        let program = compile_network(&candidate.network);
        // Workers carry a *disabled* trace handle: per-candidate counters ride in the
        // results and are recorded once at the deterministic join below, after the
        // schedule-dependent tail past the early-stop cutoff has been discarded.
        let config = InstantiateConfig {
            warm_start: candidate.warm_start.clone(),
            seed: candidate_seed(instantiate_cfg.seed, &candidate.blocks),
            threads: per_candidate_threads,
            trace: TraceRegistry::disabled(),
            ..instantiate_cfg.clone()
        };
        let outcome = if per_candidate_threads > 1 && config.starts > 1 {
            // Narrow frontier: spend the spare workers on this candidate's starts.
            instantiate_parallel(
                || TnvmEvaluator::from_program_with_backend(&program, cache, config.backend),
                target,
                &config,
            )
        } else {
            let evaluator = match evaluator_slot.as_mut() {
                Some(evaluator) => {
                    evaluator.load_program(&program, cache);
                    evaluator
                }
                None => evaluator_slot.insert(TnvmEvaluator::from_program_with_backend(
                    &program,
                    cache,
                    config.backend,
                )),
            };
            instantiate(evaluator, target, &config)
        };
        if stop_on_success && outcome.infidelity < config.success_threshold {
            // detlint: allow(thread-accumulation) — min is commutative and every
            // candidate below the final value is still evaluated
            min_success.fetch_min(index, Ordering::Relaxed);
        }
        results.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push((
            index,
            EvaluatedCandidate {
                blocks: candidate.blocks.clone(),
                params: outcome.params,
                infidelity: outcome.infidelity,
                iterations: outcome.total_iterations,
                starts: outcome.starts_used,
                kernels: outcome.kernels,
            },
        ));
    };

    if threads == 1 {
        let mut evaluator = None;
        worker(&mut evaluator);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut evaluator = None;
                    worker(&mut evaluator);
                });
            }
        });
    }

    let mut evaluated = results.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Drop completions past the deterministic cutoff: whether they finished depends
    // on thread timing, so they must not leak into the result set.
    let cutoff = min_success.load(Ordering::Relaxed);
    evaluated.retain(|(index, _)| *index <= cutoff);
    evaluated.sort_by_key(|(index, _)| *index);
    let evaluated: Vec<EvaluatedCandidate> =
        evaluated.into_iter().map(|(_, candidate)| candidate).collect();

    // Deterministic join point: everything recorded here is a pure function of the
    // retained (prefix-filtered) candidate set, never of thread scheduling.
    let trace = &instantiate_cfg.trace;
    if trace.enabled() {
        let mut kernels = KernelCounters::default();
        let mut iterations = 0u64;
        let mut starts = 0u64;
        let mut successes = 0u64;
        for candidate in &evaluated {
            kernels.merge(&candidate.kernels);
            iterations += candidate.iterations as u64;
            starts += candidate.starts as u64;
            if candidate.infidelity < instantiate_cfg.success_threshold {
                successes += 1;
            }
        }
        trace.add("frontier.candidates", evaluated.len() as u64);
        trace.add("instantiate.calls", evaluated.len() as u64);
        trace.add("instantiate.starts", starts);
        trace.add("lm.iterations", iterations);
        if successes > 0 {
            trace.add("instantiate.successes", successes);
        }
        kernels.record_into(trace);
    }
    evaluated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerGenerator;
    use crate::topology::CouplingGraph;
    use qudit_optimize::reachable_target;

    #[test]
    fn frontier_evaluates_all_candidates_in_order() {
        let generator = LayerGenerator::new(&[2, 2], &CouplingGraph::linear(2)).unwrap();
        let seed_net = generator.seed_network().unwrap();
        let target = reachable_target(&generator.circuit_for(&[0]).unwrap(), 5);
        let cache = ExpressionCache::new();
        let candidates: Vec<Candidate> = [vec![0], vec![0, 0]]
            .into_iter()
            .map(|blocks| {
                let mut network = seed_net.clone();
                for &edge in &blocks {
                    network = generator.extend_network(&network, edge);
                }
                Candidate { blocks, network, warm_start: None }
            })
            .collect();
        let config = InstantiateConfig { starts: 2, ..Default::default() };
        let evaluated = evaluate_frontier(&target, &candidates, &config, 2, &cache, false);
        assert_eq!(evaluated.len(), 2);
        assert_eq!(evaluated[0].blocks, vec![0]);
        assert_eq!(evaluated[1].blocks, vec![0, 0]);
        for e in &evaluated {
            assert!(e.infidelity.is_finite());
            assert!(e.iterations > 0);
        }
        // The shared cache stores each unique (expression, mode) exactly once — two
        // gates in gradient mode — regardless of how many candidates were evaluated.
        // (Miss *counts* can exceed the entry count here: this test deliberately runs
        // workers against a cold cache; the search pre-warms it instead. Whether the
        // *first* evaluation already scores hits depends on thread timing, so assert
        // sharing on a second, warm evaluation instead.)
        assert_eq!(cache.stats().entries, 2);
        let warm = evaluate_frontier(&target, &candidates, &config, 2, &cache, false);
        assert_eq!(warm.len(), 2);
        assert_eq!(cache.stats().entries, 2, "warm evaluation must not recompile");
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn candidate_seeds_are_order_independent_and_distinct() {
        assert_eq!(candidate_seed(7, &[0, 1]), candidate_seed(7, &[0, 1]));
        assert_ne!(candidate_seed(7, &[0, 1]), candidate_seed(7, &[1, 0]));
        assert_ne!(candidate_seed(7, &[0]), candidate_seed(7, &[0, 0]));
        // Edge 0 in the first round must perturb the state (the regression the
        // `b + 1` mixing fixes): prepending block 0 always changes the seed.
        assert_ne!(candidate_seed(7, &[0]), candidate_seed(7, &[]));
        assert_ne!(candidate_seed(7, &[0, 3]), candidate_seed(7, &[3]));
    }

    #[test]
    fn candidate_seeds_are_collision_free_over_short_sequences() {
        // All block sequences of length ≤ 3 over 8 coupling edges (1 + 8 + 64 + 512
        // sequences) must hash to distinct seeds, for several base seeds.
        for base in [0u64, 7, 0xdead_beef, u64::MAX] {
            let mut seen = std::collections::HashMap::new();
            let mut sequences: Vec<Vec<usize>> = vec![Vec::new()];
            for a in 0..8usize {
                sequences.push(vec![a]);
                for b in 0..8usize {
                    sequences.push(vec![a, b]);
                    for c in 0..8usize {
                        sequences.push(vec![a, b, c]);
                    }
                }
            }
            assert_eq!(sequences.len(), 1 + 8 + 64 + 512);
            for blocks in sequences {
                let seed = candidate_seed(base, &blocks);
                if let Some(previous) = seen.insert(seed, blocks.clone()) {
                    panic!("seed collision under base {base}: {previous:?} vs {blocks:?}");
                }
            }
        }
    }
}
