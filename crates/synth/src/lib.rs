//! # qudit-synth
//!
//! An instantiation-driven, bottom-up synthesis engine in the QSearch style — the
//! workload the rest of the OpenQudit reproduction exists to accelerate: numerical
//! instantiation is fast enough (TNVM evaluation + shared `ExpressionCache`) to sit in
//! the inner loop of a search over circuit templates.
//!
//! The engine has three parts:
//!
//! * [`topology`] — [`CouplingGraph`]: which qudit pairs may be entangled,
//! * [`layers`] — [`LayerGenerator`]: expands a candidate by one two-qudit building
//!   block (entangler + general locals; CNOT/U3 for qubits, CSUM/the general qutrit
//!   gate for qutrits) along a coupling edge, incrementally extending both the circuit
//!   and its tensor network,
//! * [`search`] / [`frontier`] — an A*/beam search whose cost combines instantiated
//!   Hilbert–Schmidt infidelity with gate count, evaluating all candidate expansions
//!   of a node concurrently (one TNVM per worker, re-targeted in place per candidate,
//!   all sharing one expression cache), and exiting as soon as a candidate drops below
//!   the success threshold.
//!
//! # Example
//!
//! Synthesize a CNOT from scratch on a two-qubit line:
//!
//! ```
//! use qudit_circuit::gates;
//! use qudit_synth::{synthesize, SynthesisConfig};
//!
//! let target = gates::cnot().to_matrix::<f64>(&[])?;
//! let result = synthesize(&target, &SynthesisConfig::qubits(2))?;
//! assert!(result.success);
//! assert!(result.infidelity < 1e-8);
//! assert_eq!(result.blocks, vec![(0, 1)]); // one entangling block suffices
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod frontier;
pub mod layers;
pub mod search;
pub mod topology;

pub use frontier::{evaluate_frontier, Candidate, EvaluatedCandidate};
pub use layers::LayerGenerator;
pub use search::{synthesize, synthesize_with_cache, SynthesisConfig, SynthesisResult};
pub use topology::CouplingGraph;

/// Errors produced while configuring or running a synthesis search.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// No synthesis gate set is registered for this radix.
    UnsupportedRadix(usize),
    /// The coupling graph is inconsistent with the radices, disconnected, or empty.
    InvalidCoupling(String),
    /// The target matrix has the wrong shape or is not unitary.
    InvalidTarget(String),
    /// A circuit-construction step failed.
    Circuit(qudit_circuit::CircuitError),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::UnsupportedRadix(radix) => {
                write!(f, "no synthesis gate set registered for radix {radix}")
            }
            SynthesisError::InvalidCoupling(detail) => write!(f, "invalid coupling: {detail}"),
            SynthesisError::InvalidTarget(detail) => write!(f, "invalid target: {detail}"),
            SynthesisError::Circuit(e) => write!(f, "circuit construction failed: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qudit_circuit::CircuitError> for SynthesisError {
    fn from(e: qudit_circuit::CircuitError) -> Self {
        SynthesisError::Circuit(e)
    }
}
