//! # qudit-synth
//!
//! An instantiation-driven, bottom-up synthesis engine in the QSearch style — the
//! workload the rest of the OpenQudit reproduction exists to accelerate: numerical
//! instantiation is fast enough (TNVM evaluation + shared `ExpressionCache`) to sit in
//! the inner loop of a search over circuit templates.
//!
//! The engine is a pipeline: **search → refine**.
//!
//! * [`topology`] — [`CouplingGraph`]: which qudit pairs may be entangled,
//! * [`GateSet`] — the pluggable building-block registry: one general local gate per
//!   radix and one entangler per (unordered) radix pair, each a plain QGL
//!   [`UnitaryExpression`](qudit_qgl::UnitaryExpression) validated at registration
//!   (arity + numerical unitarity). [`GateSet::default_for`] supplies CNOT/U3 for
//!   qubits, CSUM/the general qutrit gate for qutrits, and the embedded
//!   controlled-shift `CSHIFT23` for mixed qubit–qutrit `(2, 3)` edges,
//! * [`layers`] — [`LayerGenerator`]: expands a candidate by one two-qudit building
//!   block (the pair's registered entangler + the per-wire registered locals) along a
//!   coupling edge, incrementally extending both the circuit and its tensor network,
//! * [`search`] / [`frontier`] — an A*/beam search whose cost combines instantiated
//!   Hilbert–Schmidt infidelity with gate count, evaluating all candidate expansions
//!   of a node concurrently (one TNVM per worker, re-targeted in place per candidate,
//!   all sharing one expression cache), and exiting as soon as a candidate drops below
//!   the success threshold,
//! * [`refine`](mod@refine) — a post-synthesis pass over the successful result: entangling blocks
//!   whose instantiated sub-unitary carries (near-)zero entangling content are
//!   speculatively deleted — greedily batched, then one at a time — with the shrunken
//!   template warm-start re-instantiated through exact parameter mappings, and
//!   parameters that landed on symbolic constants (0, ±π/2, ±π, ±2π) are snapped and
//!   e-graph constant-folded. Enabled by default via
//!   [`SynthesisConfig::refine`](search::SynthesisConfig::refine); a deletion is kept
//!   only when the re-instantiated infidelity stays under the success threshold.
//!
//! # Determinism guarantees
//!
//! Two synthesis runs with the same configuration (including `seed`) produce
//! **byte-identical** results — blocks, parameters, and infidelity — regardless of
//! the worker-thread count or scheduling:
//!
//! * every candidate's instantiation seed derives from its block sequence
//!   ([`frontier::candidate_seed`], collision-audited over short sequences), never
//!   from queue order;
//! * multi-start early termination resolves by the lowest successful *start index*
//!   (`qudit-optimize`), so a parallel multi-start equals the serial loop bit for bit;
//! * the frontier's `stop_on_success` truncates to the candidates at or below the
//!   lowest successful *candidate index*, and the search then picks the winner by the
//!   total order `(f, blocks.len(), blocks)` — the same order the open list uses;
//! * the refinement pass orders deletion attempts by a deterministic entangling
//!   residual and seeds each re-instantiation from the surviving block sequence.
//!
//! # Example
//!
//! Synthesize a CNOT from scratch on a two-qubit line. [`run_search`] is the raw
//! engine stage; production callers should compose the stages through
//! `qudit-compile`'s `Compiler` (the `openqudit` prelude re-exports it), which also
//! schedules the [`refine_deletions`] / [`fold_constants`] stages and reports
//! per-pass timings:
//!
//! ```
//! use qudit_circuit::gates;
//! use qudit_qvm::ExpressionCache;
//! use qudit_synth::{run_search, SynthesisConfig};
//!
//! let target = gates::cnot().to_matrix::<f64>(&[])?;
//! let result = run_search(&target, &SynthesisConfig::qubits(2), &ExpressionCache::new())?;
//! assert!(result.success);
//! assert!(result.infidelity < 1e-8);
//! assert_eq!(result.blocks, vec![(0, 1)]); // one entangling block suffices
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Custom gate sets
//!
//! Any QGL unitary expression can serve as a building block — the paper's
//! extensibility claim made concrete. Register it and the whole pipeline
//! (instantiation, JIT compilation, search, refinement) uses it unchanged:
//!
//! ```
//! use qudit_circuit::gates;
//! use qudit_qvm::ExpressionCache;
//! use qudit_synth::{run_search, GateSet, SynthesisConfig};
//!
//! // Synthesize over an RZZ-entangler gate set instead of the default CNOT.
//! let mut gate_set = GateSet::new();
//! gate_set.register_local(gates::u3())?;
//! gate_set.register_entangler(gates::rzz())?;
//!
//! let mut config = SynthesisConfig::qubits(2);
//! config.gate_set = gate_set;
//! let target = gates::cz().to_matrix::<f64>(&[])?;
//! let result = run_search(&target, &config, &ExpressionCache::new())?;
//! assert!(result.success);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Mixed-radix systems work out of the box: `SynthesisConfig::with_radices(vec![2, 3])`
//! registers the embedded controlled-shift entangler for the qubit–qutrit edge, and
//! ququart (radix-4) systems draw on the registered `QuquartU`/`CSUM4` pair.

pub mod frontier;
pub mod layers;
pub mod refine;
pub mod search;
pub mod topology;

pub use frontier::{candidate_seed, evaluate_frontier, Candidate, EvaluatedCandidate};
pub use layers::LayerGenerator;
pub use qudit_circuit::GateSet;
pub use qudit_optimize::BackendKind;
pub use refine::{
    block_unitary, entangling_residual, fold_constants, refine, refine_deletions, FoldConfig,
    RefineConfig,
};
pub use search::{run_search, validate_target, SynthesisConfig, SynthesisResult};
#[allow(deprecated)]
pub use search::{synthesize, synthesize_with_cache};
pub use topology::CouplingGraph;

/// Errors produced while configuring or running a synthesis search.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The gate-set registry has no local gate for this radix.
    UnsupportedRadix(usize),
    /// The coupling graph is inconsistent with the radices, disconnected, or empty —
    /// or an edge's radix pair has no registered entangler (the message names the
    /// registry lookup key).
    InvalidCoupling(String),
    /// The target matrix has the wrong shape or is not unitary.
    InvalidTarget(String),
    /// A circuit-construction step failed.
    Circuit(qudit_circuit::CircuitError),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::UnsupportedRadix(radix) => {
                write!(f, "no synthesis gate set registered for radix {radix}")
            }
            SynthesisError::InvalidCoupling(detail) => write!(f, "invalid coupling: {detail}"),
            SynthesisError::InvalidTarget(detail) => write!(f, "invalid target: {detail}"),
            SynthesisError::Circuit(e) => write!(f, "circuit construction failed: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qudit_circuit::CircuitError> for SynthesisError {
    fn from(e: qudit_circuit::CircuitError) -> Self {
        SynthesisError::Circuit(e)
    }
}
