//! Post-synthesis refinement: speculative gate deletion and re-instantiation.
//!
//! Bottom-up search stops at the first template that reaches the success threshold,
//! and that template frequently carries entangling blocks whose instantiated
//! contribution is (close to) redundant — the QudCom / adaptive-compilation
//! observation that much of the final gate-count win comes from *eliminating*
//! multi-level operations after synthesis, not from the search itself. Because
//! re-instantiation is cheap here (shared [`ExpressionCache`], arena-reusing TNVM,
//! warm starts projected through exact parameter mappings), an aggressive deletion
//! pass is affordable:
//!
//! 1. **Detect** blocks whose instantiated sub-unitary is within tolerance of a
//!    non-entangling operation (its entangling content is the identity): the dominant
//!    operator-Schmidt weight of the block unitary across the pair cut, computed by a
//!    deterministic power iteration — no external SVD needed.
//! 2. **Delete speculatively** — the near-identity set as one greedy batch first, then
//!    blocks one at a time (near-identity first, every block eventually) — rebuilding
//!    the smaller template via [`qudit_circuit::builders::delete_pqc_block`] (shape-
//!    checked against [`LayerGenerator::circuit_for`]) and re-instantiating through
//!    [`qudit_optimize::instantiate_circuit_mapped`] with the surviving parameters as
//!    a warm start. A deletion is kept only when the re-instantiated infidelity stays
//!    under the success threshold.
//! 3. **Fold constants**: parameters that landed on symbolic constants (0, ±π/2, ±π,
//!    ±2π) are snapped via the `qudit-egraph` [`fold`] entry point,
//!    the substituted gate expressions are e-graph-simplified to verify the fold, and
//!    the snapped vector is accepted only if the circuit still meets the threshold.
//!
//! The pass is fully deterministic: candidate order, per-attempt seeds (derived from
//! the surviving block sequence), and the re-instantiation drivers are all
//! schedule-independent, so refinement preserves the engine's reproducibility
//! guarantee.
//!
//! The two stages are exposed separately — [`refine_deletions`] (steps 1–2) and
//! [`fold_constants`] (step 3, optionally also *constifying* fully-snapped
//! parameterized gates into constant gate applications) — so the `qudit-compile`
//! pass pipeline can schedule, time, and replace them independently. [`refine`] is
//! their composition with constification disabled (the historical behavior).

use qudit_circuit::{builders, embed_gate, GateSet, QuditCircuit};
use qudit_egraph::fold;
use qudit_optimize::{
    instantiate_circuit_mapped, BackendKind, GradientEvaluator, InstantiateConfig, TnvmEvaluator,
    SUCCESS_THRESHOLD,
};
use qudit_qvm::ExpressionCache;
use qudit_tensor::{Matrix, C64};

use crate::frontier::candidate_seed;
use crate::layers::LayerGenerator;
use crate::search::SynthesisResult;
use crate::topology::CouplingGraph;
use crate::SynthesisError;

/// Configuration of the refinement pass.
#[derive(Debug, Clone)]
pub struct RefineConfig {
    /// Entangling-residual tolerance below which a block counts as near-identity and
    /// joins the greedy deletion batch (0 disables the batch, leaving only the scan).
    pub identity_threshold: f64,
    /// Whether to speculatively attempt deleting blocks *beyond* the near-identity
    /// set. Re-instantiation is cheap enough that scanning every block usually pays
    /// for itself in deleted gates.
    pub scan_all: bool,
    /// Infidelity bound a deletion (or constant fold) must preserve.
    pub success_threshold: f64,
    /// Snap tolerance for folding parameters onto symbolic constants (0, ±π/2, ±π,
    /// ±2π). Non-positive disables folding.
    pub fold_tolerance: f64,
    /// Per-attempt instantiation settings (the warm start is managed by the pass).
    pub instantiate: InstantiateConfig,
    /// Base seed mixed into every attempt's deterministic instantiation seed.
    pub seed: u64,
    /// The gate-set registry the result's template was built from, used when
    /// rebuilding shrunken templates. `None` (the default) recovers the registry
    /// from the result circuit's own expressions ([`GateSet::from_circuit`]), so
    /// custom-gate-set results refine without further configuration;
    /// [`crate::synthesize`] threads its configured registry through explicitly.
    pub gate_set: Option<GateSet>,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            identity_threshold: 1e-3,
            scan_all: true,
            success_threshold: SUCCESS_THRESHOLD,
            fold_tolerance: 1e-6,
            instantiate: InstantiateConfig { starts: 4, ..Default::default() },
            seed: 0,
            gate_set: None,
        }
    }
}

/// The dominant normalized operator-Schmidt weight deficit of a two-qudit unitary:
/// `0` means `u` is (numerically) a tensor product of single-qudit operations — its
/// entangling content is the identity — while maximally entangling gates approach
/// `1 − 1/min(da², db²)` (a CNOT scores `0.5`).
///
/// Computed as `1 − σ₁²/(da·db)` where `σ₁` is the largest singular value of the
/// realigned matrix `R[(i,j),(k,l)] = U[(i,k),(j,l)]`, obtained by a deterministic
/// power iteration on the (tiny) Gram matrix `R·R†`.
pub fn entangling_residual(u: &Matrix<f64>, da: usize, db: usize) -> f64 {
    let d = da * db;
    assert_eq!(u.rows(), d, "unitary must act on the full pair space");
    assert_eq!(u.cols(), d, "unitary must act on the full pair space");
    let realigned = Matrix::<f64>::from_fn(da * da, db * db, |rc, cc| {
        let (ia, ja) = (rc / da, rc % da);
        let (ib, jb) = (cc / db, cc % db);
        u.get(ia * db + ib, ja * db + jb)
    });
    let gram = realigned.matmul(&realigned.dagger());
    let m = da * da;
    // Deterministic power iteration; the start vector has non-zero overlap with every
    // coordinate direction, and the Gram matrix is PSD with trace d ≥ σ₁² > 0.
    let mut v: Vec<C64> = (0..m).map(|i| C64::new(1.0 + 0.1 * i as f64, 0.0)).collect();
    let norm = v.iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt();
    for entry in v.iter_mut() {
        *entry = entry.scale(1.0 / norm);
    }
    let mut sigma_sq = 0.0;
    for _ in 0..128 {
        let w: Vec<C64> = (0..m)
            .map(|r| {
                let mut acc = C64::zero();
                for (c, value) in v.iter().enumerate() {
                    acc += gram.get(r, c) * *value;
                }
                acc
            })
            .collect();
        let norm = w.iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt();
        if norm <= f64::EPSILON {
            return 1.0;
        }
        sigma_sq = norm;
        v = w.into_iter().map(|c| c.scale(1.0 / norm)).collect();
    }
    (1.0 - (sigma_sq / d as f64).min(1.0)).max(0.0)
}

/// Internal worker: owns everything one refinement run needs.
struct Refiner<'a> {
    target: &'a Matrix<f64>,
    config: &'a RefineConfig,
    cache: &'a ExpressionCache,
    radices: Vec<usize>,
    generator: LayerGenerator,
}

/// One refinement state: a template, its block edges, and its instantiated optimum.
struct State {
    circuit: QuditCircuit,
    edges: Vec<(usize, usize)>,
    params: Vec<f64>,
    infidelity: f64,
}

/// The instantiated sub-unitary of entangling block `block_index` of a
/// template-shaped circuit — the entangler followed by the two trailing locals,
/// embedded in the block's two-qudit pair space (in the entangler op's wire order).
///
/// Refinement scores this matrix's entangling content; the partitioning front-end in
/// `qudit-compile` re-synthesizes it through a nested pipeline.
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidTarget`] when the circuit is not shaped like a
/// `pqc_template` at this block (the ops at `n + 3·block_index..` must be an
/// entangler plus two locals) or a gate fails to evaluate.
pub fn block_unitary(
    circuit: &QuditCircuit,
    params: &[f64],
    block_index: usize,
) -> Result<Matrix<f64>, SynthesisError> {
    let radices = circuit.radices();
    let n = radices.len();
    let first = n + 3 * block_index;
    if first + 3 > circuit.num_ops() || circuit.ops()[first].location.len() != 2 {
        return Err(SynthesisError::InvalidTarget(format!(
            "circuit has no complete entangling block at index {block_index}"
        )));
    }
    let ops = circuit.ops();
    let (a, b) = (ops[first].location[0], ops[first].location[1]);
    let pair = [radices[a], radices[b]];
    let mut unitary = Matrix::<f64>::identity(pair[0] * pair[1]);
    for op in &ops[first..first + 3] {
        let expr = circuit.expression(op.expr)?;
        let values = circuit.op_values(op, params)?;
        let gate = expr.to_matrix::<f64>(&values).map_err(|e| {
            SynthesisError::InvalidTarget(format!("block gate evaluation failed: {e}"))
        })?;
        let location: Vec<usize> = op.location.iter().map(|&q| usize::from(q != a)).collect();
        let embedded = embed_gate(&gate, expr.radices(), &location, &pair);
        unitary = embedded.matmul(&unitary);
    }
    Ok(unitary)
}

impl Refiner<'_> {
    /// Entangling residuals of every block, paired with the block index.
    ///
    /// The Schmidt cut's dimensions follow the *entangler op's* wire order, not the
    /// normalized coupling edge: a mixed-radix entangler registered for `(2, 3)` is
    /// applied with its wires reversed when the lower wire is the qutrit, and
    /// [`Refiner::block_unitary`] builds the pair space in that op order — scoring a
    /// 2×3 cut as 3×2 would realign the wrong matrix.
    fn residuals(&self, state: &State) -> Result<Vec<(usize, f64)>, SynthesisError> {
        let n = self.radices.len();
        (0..state.edges.len())
            .map(|i| {
                let entangler = &state.circuit.ops()[n + 3 * i];
                let (a, b) = (entangler.location[0], entangler.location[1]);
                let unitary = block_unitary(&state.circuit, &state.params, i)?;
                Ok((i, entangling_residual(&unitary, self.radices[a], self.radices[b])))
            })
            .collect()
    }

    /// Attempts to delete the given blocks (indices into `state.edges`, any order):
    /// rebuilds the smaller template, projects the surviving parameters through the
    /// deletion's exact mapping, and re-instantiates warm-started. Returns the new
    /// state when the re-instantiated infidelity stays under the success threshold.
    fn attempt_deletion(&self, state: &State, delete: &[usize]) -> Option<State> {
        let mut trial = state.circuit.clone();
        let mut mapping: Option<Vec<usize>> = None;
        let mut sorted = delete.to_vec();
        sorted.sort_unstable();
        for &block in sorted.iter().rev() {
            let step = builders::delete_pqc_block(&mut trial, block).ok()?;
            mapping = Some(match mapping {
                None => step,
                Some(previous) => step.into_iter().map(|idx| previous[idx]).collect(),
            });
        }
        let mapping = mapping?;
        let edges: Vec<(usize, usize)> = state
            .edges
            .iter()
            .enumerate()
            .filter(|(i, _)| !sorted.contains(i))
            .map(|(_, &e)| e)
            .collect();
        // The in-place deletion must agree with a from-scratch rebuild of the
        // surviving template (LayerGenerator::circuit_for → pqc_template).
        debug_assert_eq!(
            (trial.num_ops(), trial.num_params()),
            self.generator
                .circuit_for(&self.block_indices(&edges))
                .map(|c| (c.num_ops(), c.num_params()))
                .expect("surviving edges come from the validated coupling graph"),
        );
        let seed_blocks: Vec<usize> =
            edges.iter().map(|&(a, b)| a * self.radices.len() + b).collect();
        let config = InstantiateConfig {
            seed: candidate_seed(self.config.seed, &seed_blocks),
            success_threshold: self.config.success_threshold,
            ..self.config.instantiate.clone()
        };
        let outcome = instantiate_circuit_mapped(
            &trial,
            self.target,
            &state.params,
            &mapping,
            &config,
            self.cache,
        );
        if outcome.infidelity < self.config.success_threshold {
            Some(State {
                circuit: trial,
                edges,
                params: outcome.params,
                infidelity: outcome.infidelity,
            })
        } else {
            None
        }
    }

    /// Maps edge pairs back to indices of the refiner's coupling graph.
    fn block_indices(&self, edges: &[(usize, usize)]) -> Vec<usize> {
        let graph_edges = self.generator.coupling().edges();
        edges
            .iter()
            .map(|&(a, b)| {
                let e = (a.min(b), a.max(b));
                graph_edges
                    .iter()
                    .position(|&g| g == e)
                    .expect("every surviving edge came from the result's block list")
            })
            .collect()
    }
}

/// Refines a successful synthesis result by deleting redundant entangling blocks and
/// folding parameters that landed on symbolic constants. See the module docs for the
/// pass structure. Unsuccessful results (infidelity at or above the configured
/// threshold) are returned unchanged — there is no baseline to validate deletions
/// against.
///
/// This is the composition [`refine_deletions`] → [`fold_constants`] with
/// constification disabled; the `qudit-compile` pipeline runs the stages as separate
/// passes instead.
///
/// The returned result describes the refined circuit: `blocks_deleted` counts the
/// removed entangling blocks (the pre-refine depth is `blocks.len() + blocks_deleted`),
/// `refined_infidelity` is `Some` of its final infidelity, and `params_folded` counts
/// parameters snapped to exact symbolic constants.
///
/// # Errors
///
/// See [`refine_deletions`].
pub fn refine(
    result: &SynthesisResult,
    target: &Matrix<f64>,
    config: &RefineConfig,
    cache: &ExpressionCache,
) -> Result<SynthesisResult, SynthesisError> {
    let refined = refine_deletions(result, target, config, cache)?;
    let fold_config = FoldConfig {
        fold_tolerance: config.fold_tolerance,
        success_threshold: config.success_threshold,
        constify: false,
        backend: config.instantiate.backend,
    };
    fold_constants(&refined, target, &fold_config, cache)
}

/// The gate-deletion stage of refinement: speculatively deletes entangling blocks
/// (greedy near-identity batch first, then one at a time) and warm-start
/// re-instantiates the shrunken template, keeping a deletion only when the infidelity
/// stays under the success threshold. Does **not** fold constants — that is
/// [`fold_constants`]' job.
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidTarget`] when `result` is not shaped like a
/// synthesis template (its circuit must be `pqc_initial` + 3 ops per block) or the
/// target's dimension does not match, and propagates coupling-graph errors for
/// malformed block lists.
pub fn refine_deletions(
    result: &SynthesisResult,
    target: &Matrix<f64>,
    config: &RefineConfig,
    cache: &ExpressionCache,
) -> Result<SynthesisResult, SynthesisError> {
    let radices = result.circuit.radices().to_vec();
    let n = radices.len();
    if result.circuit.num_ops() != n + 3 * result.blocks.len() {
        return Err(SynthesisError::InvalidTarget(format!(
            "result circuit has {} op(s), not the {} of a {}-block synthesis template",
            result.circuit.num_ops(),
            n + 3 * result.blocks.len(),
            result.blocks.len()
        )));
    }
    if target.rows() != result.circuit.dim() || target.cols() != result.circuit.dim() {
        return Err(SynthesisError::InvalidTarget(format!(
            "target is {}×{} but the result acts on dimension {}",
            target.rows(),
            target.cols(),
            result.circuit.dim()
        )));
    }
    if result.params.len() != result.circuit.num_params() {
        return Err(SynthesisError::InvalidTarget(format!(
            "result carries {} parameter value(s) for a circuit with {}",
            result.params.len(),
            result.circuit.num_params()
        )));
    }
    // Per-block structure: an entangler on the claimed edge followed by two locals.
    // An op count alone is not enough — block extraction indexes into these
    // locations, so a mismatched circuit must fail here, not panic there.
    for (i, &(a, b)) in result.blocks.iter().enumerate() {
        let ops = result.circuit.ops();
        let entangler = &ops[n + 3 * i];
        let wires: Vec<usize> = entangler.location.clone();
        let pair_ok = wires.len() == 2
            && ((wires[0] == a && wires[1] == b) || (wires[0] == b && wires[1] == a));
        let locals_ok = ops[n + 3 * i + 1].location.len() == 1
            && ops[n + 3 * i + 2].location.len() == 1
            && wires.contains(&ops[n + 3 * i + 1].location[0])
            && wires.contains(&ops[n + 3 * i + 2].location[0]);
        if !pair_ok || !locals_ok {
            return Err(SynthesisError::InvalidTarget(format!(
                "block {i} of the result circuit is not an entangler on ({a}, {b}) \
                 followed by two locals on its wires"
            )));
        }
    }

    let mut refined = result.clone();
    refined.refined_infidelity = Some(result.infidelity);
    if result.infidelity >= config.success_threshold {
        return Ok(refined);
    }

    // Deletion attempts run serially, so the per-attempt counters recorded by
    // `instantiate_circuit_mapped` through this registry are deterministic.
    let trace = &config.instantiate.trace;
    let _span = trace.span("refine");

    let mut state = State {
        circuit: result.circuit.clone(),
        edges: result.blocks.clone(),
        params: result.params.clone(),
        infidelity: result.infidelity,
    };
    let mut blocks_deleted = 0usize;

    if !state.edges.is_empty() {
        let coupling = CouplingGraph::new(n, state.edges.iter().copied())?;
        // Without an explicit registry, recover it from the result's own circuit —
        // falling back to the built-in defaults instead would mis-shape the rebuild
        // check (and reject radices with no built-ins) for custom-gate-set results.
        let gate_set =
            config.gate_set.clone().unwrap_or_else(|| GateSet::from_circuit(&result.circuit));
        let refiner = Refiner {
            target,
            config,
            cache,
            radices: radices.clone(),
            generator: LayerGenerator::with_gate_set(&radices, &coupling, gate_set)?,
        };

        loop {
            // Rank blocks by how little entanglement they contribute; the most
            // identity-like blocks are the best deletion candidates.
            let mut ranked = refiner.residuals(&state)?;
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            let near: Vec<usize> = ranked
                .iter()
                .filter(|&&(_, residual)| residual <= config.identity_threshold)
                .map(|&(i, _)| i)
                .collect();
            let order: Vec<usize> = if config.scan_all {
                ranked.iter().map(|&(i, _)| i).collect()
            } else {
                near.clone()
            };
            if order.is_empty() {
                break;
            }

            // Greedily batch the whole near-identity set first: when several blocks
            // collapsed to (almost) local operations, one re-instantiation usually
            // absorbs them all.
            if near.len() >= 2 {
                if let Some(next) = refiner.attempt_deletion(&state, &near) {
                    blocks_deleted += near.len();
                    state = next;
                    continue;
                }
            }

            // Otherwise one block at a time, most identity-like first.
            let mut deleted = false;
            for &block in &order {
                if let Some(next) = refiner.attempt_deletion(&state, &[block]) {
                    blocks_deleted += 1;
                    state = next;
                    deleted = true;
                    break;
                }
            }
            if !deleted {
                break;
            }
        }
    }

    refined.circuit = state.circuit;
    refined.blocks = state.edges;
    refined.params = state.params;
    refined.infidelity = state.infidelity;
    refined.success = state.infidelity < config.success_threshold;
    refined.blocks_deleted = result.blocks_deleted + blocks_deleted;
    refined.refined_infidelity = Some(state.infidelity);
    if blocks_deleted > 0 {
        trace.add("refine.blocks_deleted", blocks_deleted as u64);
    }
    Ok(refined)
}

/// Configuration of the constant-folding stage ([`fold_constants`]).
#[derive(Debug, Clone)]
pub struct FoldConfig {
    /// Snap tolerance for folding parameters onto symbolic constants (0, ±π/2, ±π,
    /// ±2π). Non-positive disables the stage.
    pub fold_tolerance: f64,
    /// Infidelity bound the snapped (and constified) circuit must preserve.
    pub success_threshold: f64,
    /// Whether to additionally *constify* every parameterized gate whose parameters
    /// all snapped: the operation is rewritten as a constant gate application
    /// ([`QuditCircuit::constify_op`]), removing its entries from the parameter vector
    /// so a re-compile JITs the cheaper, constant-folded expression.
    pub constify: bool,
    /// The TNVM execution tier the verification evaluators lower through.
    pub backend: BackendKind,
}

impl Default for FoldConfig {
    fn default() -> Self {
        FoldConfig {
            fold_tolerance: 1e-6,
            success_threshold: SUCCESS_THRESHOLD,
            constify: false,
            backend: BackendKind::default(),
        }
    }
}

/// The constant-folding stage of refinement: snaps parameters that landed on symbolic
/// constants (0, ±π/2, ±π, ±2π), verifies the substituted gate expressions e-graph
/// fold consistently, and keeps the snapped vector only if the circuit still meets
/// the threshold. With [`FoldConfig::constify`] set, gates whose parameters *all*
/// snapped are then converted into constant gate applications (`gates_constified` in
/// the result), shrinking the free-parameter vector and letting the JIT compile
/// constant-folded expressions for them.
///
/// Unsuccessful results pass through unchanged. Unlike [`refine_deletions`] this
/// stage accepts any circuit shape — it never rebuilds templates.
///
/// # Errors
///
/// Returns [`SynthesisError::InvalidTarget`] when the result's parameter vector or
/// the target's dimension does not match the circuit, and propagates circuit errors
/// from constification (cannot occur for well-formed results).
pub fn fold_constants(
    result: &SynthesisResult,
    target: &Matrix<f64>,
    config: &FoldConfig,
    cache: &ExpressionCache,
) -> Result<SynthesisResult, SynthesisError> {
    if result.params.len() != result.circuit.num_params() {
        return Err(SynthesisError::InvalidTarget(format!(
            "result carries {} parameter value(s) for a circuit with {}",
            result.params.len(),
            result.circuit.num_params()
        )));
    }
    if target.rows() != result.circuit.dim() || target.cols() != result.circuit.dim() {
        return Err(SynthesisError::InvalidTarget(format!(
            "target is {}×{} but the result acts on dimension {}",
            target.rows(),
            target.cols(),
            result.circuit.dim()
        )));
    }
    let mut refined = result.clone();
    if refined.refined_infidelity.is_none() {
        refined.refined_infidelity = Some(result.infidelity);
    }
    if result.infidelity >= config.success_threshold || config.fold_tolerance <= 0.0 {
        return Ok(refined);
    }
    let folded = fold::fold_params(&result.params, config.fold_tolerance);
    if folded.folded == 0 {
        return Ok(refined);
    }
    let mut evaluator = TnvmEvaluator::new_with_backend(&result.circuit, cache, config.backend);
    let (unitary, _) = evaluator.evaluate(&folded.params);
    let snapped_infidelity = qudit_optimize::hs_infidelity(target, &unitary);
    if snapped_infidelity >= config.success_threshold {
        return Ok(refined);
    }
    // E-graph check: every op whose parameters all snapped must fold to expressions
    // that agree with the snapped numeric gate.
    if !fully_snapped_ops_fold(&result.circuit, &folded) {
        return Ok(refined);
    }
    refined.params = folded.params.clone();
    refined.infidelity = snapped_infidelity;
    refined.refined_infidelity = Some(snapped_infidelity);
    refined.success = true;
    refined.params_folded = result.params_folded + folded.folded;

    if config.constify {
        // Every fully-snapped parameterized gate was just verified to fold; bake its
        // values in, threading the parameter vector through each conversion's mapping.
        let mut circuit = result.circuit.clone();
        let mut params = folded.params.clone();
        let targets: Vec<(usize, Vec<f64>)> = circuit
            .ops()
            .iter()
            .enumerate()
            .filter_map(|(index, op)| {
                let qudit_circuit::OpParams::Parameterized { offset } = op.params else {
                    return None;
                };
                let count = circuit.expression(op.expr).ok()?.num_params();
                let fully_snapped =
                    count > 0 && (offset..offset + count).all(|k| folded.symbolic[k].is_some());
                fully_snapped.then(|| (index, folded.params[offset..offset + count].to_vec()))
            })
            .collect();
        if !targets.is_empty() {
            for (index, values) in &targets {
                let mapping = circuit.constify_op(*index, values.clone())?;
                params = mapping.iter().map(|&k| params[k]).collect();
            }
            // The constant path evaluates through a different (cheaper) kernel, so
            // re-verify before committing the rewritten circuit.
            let mut evaluator = TnvmEvaluator::new_with_backend(&circuit, cache, config.backend);
            let (unitary, _) = evaluator.evaluate(&params);
            let const_infidelity = qudit_optimize::hs_infidelity(target, &unitary);
            if const_infidelity < config.success_threshold {
                refined.circuit = circuit;
                refined.params = params;
                refined.infidelity = const_infidelity;
                refined.refined_infidelity = Some(const_infidelity);
                refined.gates_constified = result.gates_constified + targets.len();
            }
        }
    }
    Ok(refined)
}

/// Substitutes each fully-snapped op's symbolic constants into its gate expression,
/// e-graph-folds the elements, and numerically verifies the folded expressions still
/// evaluate to the snapped gate matrix.
fn fully_snapped_ops_fold(circuit: &QuditCircuit, folded: &qudit_egraph::ParamFold) -> bool {
    for op in circuit.ops() {
        let qudit_circuit::OpParams::Parameterized { offset } = op.params else { continue };
        let expr = circuit.expression(op.expr).expect("ops always reference cached expressions");
        let count = expr.num_params();
        if count == 0 || !(offset..offset + count).all(|k| folded.symbolic[k].is_some()) {
            continue;
        }
        let values = &folded.params[offset..offset + count];
        let names: Vec<String> = expr.params().to_vec();
        let mut elements = Vec::new();
        for row in expr.elements() {
            for el in row {
                elements.push(el.re.clone());
                elements.push(el.im.clone());
            }
        }
        // The values are already snapped to exact constants, so any positive snap
        // tolerance re-recognizes them; keep it tight.
        let simplified = fold::fold_elements(&elements, &names, values, 1e-12);
        // Evaluate folded elements against the direct gate matrix at snapped values.
        let gate = match expr.to_matrix::<f64>(values) {
            Ok(gate) => gate,
            Err(_) => return false,
        };
        let dim = expr.dim();
        for (k, folded_expr) in simplified.exprs.iter().enumerate() {
            let (row, col, is_im) = (k / 2 / dim, (k / 2) % dim, k % 2 == 1);
            let reference = if is_im { gate.get(row, col).im } else { gate.get(row, col).re };
            let value = folded_expr.eval_with(&names, values);
            if (value - reference).abs() > 1e-9 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::gates;
    use qudit_optimize::{instantiate_circuit, reachable_target};

    #[test]
    fn entangling_residual_separates_local_from_entangling() {
        // A product of locals has (numerically) zero residual.
        let rx = gates::rx().to_matrix::<f64>(&[0.8]).unwrap();
        let rz = gates::rz().to_matrix::<f64>(&[-1.3]).unwrap();
        let product = rx.kron(&rz);
        assert!(entangling_residual(&product, 2, 2) < 1e-10);

        // CNOT has operator-Schmidt weights {2, 2}: residual 1 − 2/4 = 0.5.
        let cnot = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let residual = entangling_residual(&cnot, 2, 2);
        assert!((residual - 0.5).abs() < 1e-9, "residual {residual}");

        // A qutrit CSUM is also maximally non-local across its cut.
        let csum = gates::csum().to_matrix::<f64>(&[]).unwrap();
        assert!(entangling_residual(&csum, 3, 3) > 0.3);
    }

    fn instantiated_result(
        radices: &[usize],
        blocks: &[(usize, usize)],
        target: &Matrix<f64>,
        cache: &ExpressionCache,
        seed: u64,
    ) -> SynthesisResult {
        let circuit = builders::pqc_template(radices, blocks).unwrap();
        let outcome = instantiate_circuit(
            &circuit,
            target,
            &InstantiateConfig { starts: 8, seed, ..Default::default() },
            cache,
        );
        SynthesisResult {
            blocks: blocks.to_vec(),
            params: outcome.params,
            infidelity: outcome.infidelity,
            success: outcome.success,
            nodes_expanded: 0,
            blocks_deleted: 0,
            refined_infidelity: None,
            params_folded: 0,
            gates_constified: 0,
            circuit,
        }
    }

    #[test]
    fn refine_deletes_padded_blocks() {
        let cache = ExpressionCache::new();
        let lean = builders::pqc_template(&[2, 2], &[(0, 1)]).unwrap();
        let target = reachable_target(&lean, 12);
        let padded = instantiated_result(&[2, 2], &[(0, 1), (0, 1), (0, 1)], &target, &cache, 5);
        assert!(padded.success, "padded instantiation failed: {}", padded.infidelity);

        let refined = refine(&padded, &target, &RefineConfig::default(), &cache).unwrap();
        assert!(refined.blocks_deleted >= 1, "no blocks deleted");
        assert_eq!(refined.blocks.len() + refined.blocks_deleted, 3);
        assert!(refined.infidelity < 1e-8, "refined infidelity {}", refined.infidelity);
        assert_eq!(refined.refined_infidelity, Some(refined.infidelity));
        assert_eq!(refined.params.len(), refined.circuit.num_params());
        assert!(refined.success);
    }

    #[test]
    fn refine_is_a_no_op_on_minimal_results() {
        let cache = ExpressionCache::new();
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let minimal = instantiated_result(&[2, 2], &[(0, 1)], &target, &cache, 3);
        assert!(minimal.success);
        let refined = refine(&minimal, &target, &RefineConfig::default(), &cache).unwrap();
        assert_eq!(refined.blocks_deleted, 0);
        assert_eq!(refined.blocks, minimal.blocks);
        assert_eq!(refined.circuit.num_ops(), minimal.circuit.num_ops());
        assert!(refined.infidelity < 1e-8);
    }

    #[test]
    fn refine_passes_unsuccessful_results_through() {
        let cache = ExpressionCache::new();
        let target = qudit_optimize::haar_random_unitary(4, 77);
        let mut result = instantiated_result(&[2, 2], &[(0, 1)], &target, &cache, 1);
        result.infidelity = result.infidelity.max(1e-3);
        result.success = false;
        let refined = refine(&result, &target, &RefineConfig::default(), &cache).unwrap();
        assert_eq!(refined.blocks_deleted, 0);
        assert_eq!(refined.blocks, result.blocks);
    }

    #[test]
    fn refine_rejects_malformed_results() {
        let cache = ExpressionCache::new();
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let mut result = instantiated_result(&[2, 2], &[(0, 1)], &target, &cache, 3);
        result.blocks = vec![(0, 1), (0, 1)]; // claims one more block than the circuit has
        assert!(matches!(
            refine(&result, &target, &RefineConfig::default(), &cache),
            Err(SynthesisError::InvalidTarget(_))
        ));

        // Wrong parameter-vector length is rejected up front.
        let mut short = instantiated_result(&[2, 2], &[(0, 1)], &target, &cache, 3);
        short.params.pop();
        assert!(matches!(
            refine(&short, &target, &RefineConfig::default(), &cache),
            Err(SynthesisError::InvalidTarget(_))
        ));

        // A circuit with the right op *count* but no entangler at the block position
        // must error, not panic inside block extraction.
        let mut flat = QuditCircuit::qubits(2);
        let u3 = flat.cache_operation(gates::u3()).unwrap();
        for wire in [0usize, 1, 0, 1, 0] {
            flat.append_ref(u3, vec![wire]).unwrap();
        }
        let params = vec![0.1; flat.num_params()];
        let bogus = SynthesisResult {
            blocks: vec![(0, 1)],
            params,
            infidelity: 1e-12,
            success: true,
            nodes_expanded: 0,
            blocks_deleted: 0,
            refined_infidelity: None,
            params_folded: 0,
            gates_constified: 0,
            circuit: flat,
        };
        assert!(matches!(
            refine(&bogus, &target, &RefineConfig::default(), &cache),
            Err(SynthesisError::InvalidTarget(_))
        ));
    }

    #[test]
    fn refine_folds_symbolic_parameters() {
        // A hand-built optimum exactly on symbolic constants, perturbed by 1e-8: the
        // fold must snap the perturbed values back and keep the (tiny) infidelity.
        let cache = ExpressionCache::new();
        let circuit = builders::pqc_template(&[2, 2], &[(0, 1)]).unwrap();
        let exact: Vec<f64> = (0..circuit.num_params())
            .map(|k| match k % 3 {
                0 => 0.0,
                1 => std::f64::consts::PI,
                _ => std::f64::consts::FRAC_PI_2,
            })
            .collect();
        let target = circuit.unitary::<f64>(&exact).unwrap();
        let perturbed: Vec<f64> =
            exact.iter().enumerate().map(|(k, &v)| v + 1e-9 * (k as f64 + 1.0)).collect();
        let result = SynthesisResult {
            blocks: vec![(0, 1)],
            params: perturbed,
            infidelity: 1e-12,
            success: true,
            nodes_expanded: 0,
            blocks_deleted: 0,
            refined_infidelity: None,
            params_folded: 0,
            gates_constified: 0,
            circuit,
        };
        let config = RefineConfig { scan_all: false, ..Default::default() };
        let refined = refine(&result, &target, &config, &cache).unwrap();
        assert_eq!(refined.params_folded, refined.params.len());
        assert_eq!(refined.params, exact);
        assert!(refined.infidelity < 1e-10);
    }
}
