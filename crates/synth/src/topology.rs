//! Coupling graphs: which qudit pairs the synthesis search may entangle.
//!
//! Real devices restrict two-qudit interactions to a hardware coupling map; the layer
//! generator only proposes building blocks along these edges, so every synthesized
//! circuit is executable on the modelled topology without routing.

use crate::SynthesisError;

/// An undirected coupling graph over `num_qudits` wires.
///
/// Edges are stored with their endpoints in ascending order and deduplicated; the
/// stored orientation is also the orientation the building block uses (the general
/// local gates surrounding each entangler absorb the direction, so one orientation per
/// pair spans the same circuit space at half the branching factor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingGraph {
    num_qudits: usize,
    edges: Vec<(usize, usize)>,
}

impl CouplingGraph {
    /// Builds a coupling graph from an explicit edge list.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidCoupling`] for self-loops, out-of-range
    /// endpoints, or an empty edge set on a multi-qudit system.
    pub fn new(
        num_qudits: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, SynthesisError> {
        let mut normalized: Vec<(usize, usize)> = Vec::new();
        for (a, b) in edges {
            if a == b {
                return Err(SynthesisError::InvalidCoupling(format!("self-loop on qudit {a}")));
            }
            if a >= num_qudits || b >= num_qudits {
                return Err(SynthesisError::InvalidCoupling(format!(
                    "edge ({a}, {b}) out of range for {num_qudits} qudit(s)"
                )));
            }
            let e = (a.min(b), a.max(b));
            if !normalized.contains(&e) {
                normalized.push(e);
            }
        }
        if num_qudits > 1 && normalized.is_empty() {
            return Err(SynthesisError::InvalidCoupling(
                "multi-qudit synthesis needs at least one coupling edge".to_string(),
            ));
        }
        Ok(CouplingGraph { num_qudits, edges: normalized })
    }

    /// The nearest-neighbour line `0–1–2–…`.
    pub fn linear(num_qudits: usize) -> Self {
        CouplingGraph {
            num_qudits,
            edges: (0..num_qudits.saturating_sub(1)).map(|q| (q, q + 1)).collect(),
        }
    }

    /// The line closed into a cycle (falls back to [`CouplingGraph::linear`] below
    /// three qudits, where the closing edge would duplicate an existing one).
    pub fn ring(num_qudits: usize) -> Self {
        let mut graph = CouplingGraph::linear(num_qudits);
        if num_qudits >= 3 {
            graph.edges.push((0, num_qudits - 1));
        }
        graph
    }

    /// Every pair coupled.
    pub fn all_to_all(num_qudits: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..num_qudits {
            for b in (a + 1)..num_qudits {
                edges.push((a, b));
            }
        }
        CouplingGraph { num_qudits, edges }
    }

    /// Number of qudits the graph spans.
    pub fn num_qudits(&self) -> usize {
        self.num_qudits
    }

    /// The normalized edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Whether the (undirected) pair is coupled.
    pub fn contains(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Whether every qudit can reach every other through coupling edges. Synthesis of
    /// a generic target is impossible on a disconnected graph, so [`crate::synthesize`]
    /// rejects those up front.
    pub fn is_connected(&self) -> bool {
        if self.num_qudits <= 1 {
            return true;
        }
        let mut reached = vec![false; self.num_qudits];
        let mut stack = vec![0usize];
        reached[0] = true;
        while let Some(q) = stack.pop() {
            for &(a, b) in &self.edges {
                let next = if a == q {
                    b
                } else if b == q {
                    a
                } else {
                    continue;
                };
                if !reached[next] {
                    reached[next] = true;
                    stack.push(next);
                }
            }
        }
        reached.into_iter().all(|r| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_edges() {
        assert_eq!(CouplingGraph::linear(3).edges(), &[(0, 1), (1, 2)]);
        assert_eq!(CouplingGraph::ring(3).edges(), &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(CouplingGraph::ring(2).edges(), &[(0, 1)]);
        assert_eq!(CouplingGraph::all_to_all(3).edges(), &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(CouplingGraph::linear(1).edges(), &[]);
    }

    #[test]
    fn new_normalizes_and_validates() {
        let g = CouplingGraph::new(3, [(2, 0), (0, 2), (1, 2)]).unwrap();
        assert_eq!(g.edges(), &[(0, 2), (1, 2)]);
        assert!(g.contains(2, 0));
        assert!(!g.contains(0, 1));
        assert!(CouplingGraph::new(2, [(0, 0)]).is_err());
        assert!(CouplingGraph::new(2, [(0, 5)]).is_err());
        assert!(CouplingGraph::new(2, std::iter::empty()).is_err());
    }

    #[test]
    fn connectivity() {
        assert!(CouplingGraph::linear(4).is_connected());
        assert!(!CouplingGraph::new(4, [(0, 1), (2, 3)]).unwrap().is_connected());
        assert!(CouplingGraph::linear(1).is_connected());
    }
}
