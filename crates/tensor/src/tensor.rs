//! Dense complex tensors of arbitrary rank.
//!
//! In the tensor-network lowering of a circuit (Sec. IV-A of the paper) every gate
//! becomes a tensor whose rank is twice its arity and whose index cardinalities are the
//! qudit radices on its wires. [`Tensor`] carries the shape metadata needed to reshape,
//! permute, and contract those objects, while the heavy data movement is delegated to
//! the flat-buffer kernels in [`crate::gemm`], [`crate::kron`], and [`crate::permute`].

use crate::complex::{Complex, Float};
use crate::matrix::Matrix;
use crate::{gemm, permute, Result, TensorError};

/// A dense, row-major complex tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T> {
    shape: Vec<usize>,
    data: Vec<Complex<T>>,
}

impl<T: Float> Tensor<T> {
    /// Creates a zero tensor with the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        Tensor { shape, data: vec![Complex::zero(); n] }
    }

    /// Creates a tensor from a shape and a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the element counts disagree.
    pub fn from_vec(shape: Vec<usize>, data: Vec<Complex<T>>) -> Result<Self> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(TensorError::InvalidReshape { from: data.len(), to: n });
        }
        Ok(Tensor { shape, data })
    }

    /// Converts a matrix into a rank-2 tensor.
    pub fn from_matrix(m: Matrix<T>) -> Self {
        let shape = vec![m.rows(), m.cols()];
        Tensor { shape, data: m.into_vec() }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's rank (number of indices).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat buffer.
    #[inline]
    pub fn as_slice(&self) -> &[Complex<T>] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex<T>] {
        &mut self.data
    }

    /// Element accessor by multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid.
    pub fn get(&self, index: &[usize]) -> Result<Complex<T>> {
        let off = self.offset(index)?;
        Ok(self.data[off])
    }

    /// Element mutator by multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid.
    pub fn set(&mut self, index: &[usize], v: Complex<T>) -> Result<()> {
        let off = self.offset(index)?;
        self.data[off] = v;
        Ok(())
    }

    fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len()
            || index.iter().zip(self.shape.iter()).any(|(i, s)| i >= s)
        {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            });
        }
        let strides = permute::strides_for(&self.shape);
        Ok(index.iter().zip(strides.iter()).map(|(i, s)| i * s).sum())
    }

    /// Reinterprets the tensor with a new shape (no data movement).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the element counts disagree.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(TensorError::InvalidReshape { from: self.data.len(), to: n });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Permutes the tensor's indices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] if `perm` is not a permutation of the
    /// axes.
    pub fn permute(&self, perm: &[usize]) -> Result<Self> {
        if !permute::is_permutation(perm, self.rank()) {
            return Err(TensorError::InvalidPermutation { perm: perm.to_vec(), rank: self.rank() });
        }
        let data = permute::permute(&self.data, &self.shape, perm);
        let shape = perm.iter().map(|&p| self.shape[p]).collect();
        Ok(Tensor { shape, data })
    }

    /// Views the tensor as a matrix by splitting its axes at `split`: the first `split`
    /// axes become rows, the remainder become columns.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if `split > rank`.
    pub fn to_matrix(&self, split: usize) -> Result<Matrix<T>> {
        if split > self.rank() {
            return Err(TensorError::InvalidReshape { from: self.rank(), to: split });
        }
        let rows: usize = self.shape[..split].iter().product();
        let cols: usize = self.shape[split..].iter().product();
        Matrix::from_vec(rows, cols, self.data.clone())
    }

    /// Contracts `self` with `other` over the given index pairs using the
    /// transpose–transpose–GEMM–transpose (TTGT) strategy described in the paper.
    ///
    /// `pairs` lists `(axis_in_self, axis_in_other)` index pairs to sum over. The result
    /// keeps the uncontracted axes of `self` (in order) followed by the uncontracted
    /// axes of `other` (in order).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if an axis is repeated, out of range, or the paired
    /// dimensions disagree.
    pub fn contract(&self, other: &Tensor<T>, pairs: &[(usize, usize)]) -> Result<Tensor<T>> {
        // Validate.
        let mut self_contracted = vec![false; self.rank()];
        let mut other_contracted = vec![false; other.rank()];
        for &(a, b) in pairs {
            if a >= self.rank() || b >= other.rank() || self_contracted[a] || other_contracted[b] {
                return Err(TensorError::InvalidPermutation {
                    perm: pairs.iter().map(|p| p.0).collect(),
                    rank: self.rank(),
                });
            }
            if self.shape[a] != other.shape[b] {
                return Err(TensorError::ShapeMismatch {
                    op: "contract",
                    lhs: self.shape.clone(),
                    rhs: other.shape.clone(),
                });
            }
            self_contracted[a] = true;
            other_contracted[b] = true;
        }

        let self_free: Vec<usize> = (0..self.rank()).filter(|&i| !self_contracted[i]).collect();
        let other_free: Vec<usize> = (0..other.rank()).filter(|&i| !other_contracted[i]).collect();

        // T1: permute self so free axes come first, contracted last (in pair order).
        let mut self_perm = self_free.clone();
        self_perm.extend(pairs.iter().map(|p| p.0));
        let a = self.permute(&self_perm)?;

        // T2: permute other so contracted axes come first (in pair order), free last.
        let mut other_perm: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        other_perm.extend(other_free.iter().copied());
        let b = other.permute(&other_perm)?;

        let m: usize = self_free.iter().map(|&i| self.shape[i]).product();
        let k: usize = pairs.iter().map(|&(i, _)| self.shape[i]).product();
        let n: usize = other_free.iter().map(|&i| other.shape[i]).product();

        // GEMM.
        let mut out = vec![Complex::zero(); m * n];
        gemm::matmul_into(a.as_slice(), m, k, b.as_slice(), n, &mut out);

        // Final shape: free(self) ++ free(other). No trailing transpose is required
        // because we chose the output ordering up front (the "T" of TTGT is folded in).
        let mut shape: Vec<usize> = self_free.iter().map(|&i| self.shape[i]).collect();
        shape.extend(other_free.iter().map(|&i| other.shape[i]));
        if shape.is_empty() {
            shape.push(1);
        }
        Tensor::from_vec(shape, out)
    }

    /// Partial trace over a pair of axes of equal dimension.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the axes coincide, are out of range, or have
    /// different dimensions.
    pub fn trace_axes(&self, ax0: usize, ax1: usize) -> Result<Tensor<T>> {
        if ax0 == ax1 || ax0 >= self.rank() || ax1 >= self.rank() {
            return Err(TensorError::InvalidPermutation {
                perm: vec![ax0, ax1],
                rank: self.rank(),
            });
        }
        if self.shape[ax0] != self.shape[ax1] {
            return Err(TensorError::ShapeMismatch {
                op: "trace",
                lhs: vec![self.shape[ax0]],
                rhs: vec![self.shape[ax1]],
            });
        }
        let keep: Vec<usize> = (0..self.rank()).filter(|&i| i != ax0 && i != ax1).collect();
        let out_shape: Vec<usize> =
            if keep.is_empty() { vec![1] } else { keep.iter().map(|&i| self.shape[i]).collect() };
        let mut out = Tensor::zeros(out_shape);
        let strides = permute::strides_for(&self.shape);
        let d = self.shape[ax0];
        let out_len = out.data.len();
        // Iterate over the kept index space.
        let keep_shape: Vec<usize> = keep.iter().map(|&i| self.shape[i]).collect();
        let mut idx = vec![0usize; keep.len()];
        for flat in 0..out_len {
            let mut base = 0usize;
            for (pos, &axis) in keep.iter().enumerate() {
                base += idx[pos] * strides[axis];
            }
            let mut acc = Complex::zero();
            for t in 0..d {
                acc += self.data[base + t * strides[ax0] + t * strides[ax1]];
            }
            out.data[flat] = acc;
            // advance odometer
            for pos in (0..keep.len()).rev() {
                idx[pos] += 1;
                if idx[pos] < keep_shape[pos] {
                    break;
                }
                idx[pos] = 0;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    fn mat(rows: &[Vec<(f64, f64)>]) -> Matrix<f64> {
        Matrix::from_rows(
            &rows
                .iter()
                .map(|r| r.iter().map(|&(re, im)| C64::new(re, im)).collect())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn roundtrip_matrix_tensor() {
        let m = mat(&[vec![(1.0, 0.0), (2.0, 1.0)], vec![(3.0, -1.0), (4.0, 0.0)]]);
        let t = Tensor::from_matrix(m.clone());
        assert_eq!(t.rank(), 2);
        assert_eq!(t.to_matrix(1).unwrap(), m);
    }

    #[test]
    fn reshape_checks_counts() {
        let t = Tensor::<f64>::zeros(vec![2, 3]);
        assert!(t.clone().reshape(vec![3, 2]).is_ok());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::<f64>::zeros(vec![2, 2, 2]);
        t.set(&[1, 0, 1], C64::new(5.0, -1.0)).unwrap();
        assert_eq!(t.get(&[1, 0, 1]).unwrap(), C64::new(5.0, -1.0));
        assert!(t.get(&[2, 0, 0]).is_err());
        assert!(t.get(&[0, 0]).is_err());
    }

    #[test]
    fn contraction_is_matrix_product() {
        let a = mat(&[vec![(1.0, 0.0), (2.0, 0.0)], vec![(3.0, 0.0), (4.0, 0.0)]]);
        let b = mat(&[vec![(0.0, 1.0), (1.0, 0.0)], vec![(1.0, 0.0), (0.0, -1.0)]]);
        let ta = Tensor::from_matrix(a.clone());
        let tb = Tensor::from_matrix(b.clone());
        // Contract a's column index with b's row index.
        let c = ta.contract(&tb, &[(1, 0)]).unwrap();
        let expected = a.matmul(&b);
        assert_eq!(c.to_matrix(1).unwrap(), expected);
    }

    #[test]
    fn contraction_full_inner_product() {
        let a =
            Tensor::from_vec(vec![2, 2], vec![C64::one(), C64::zero(), C64::zero(), C64::one()])
                .unwrap();
        let b = a.clone();
        let c = a.contract(&b, &[(0, 0), (1, 1)]).unwrap();
        assert_eq!(c.shape(), &[1]);
        assert_eq!(c.as_slice()[0], C64::new(2.0, 0.0));
    }

    #[test]
    fn contraction_rejects_mismatched_dims() {
        let a = Tensor::<f64>::zeros(vec![2, 3]);
        let b = Tensor::<f64>::zeros(vec![4, 2]);
        assert!(a.contract(&b, &[(1, 0)]).is_err());
        assert!(a.contract(&b, &[(5, 0)]).is_err());
    }

    #[test]
    fn rank4_gate_contraction_matches_kron_matmul() {
        // Two 1-qubit gates on different wires contracted with a 2-qubit gate
        // reproduce (A ⊗ B) composed with the 2-qubit unitary.
        let x = mat(&[vec![(0.0, 0.0), (1.0, 0.0)], vec![(1.0, 0.0), (0.0, 0.0)]]);
        let h = {
            let s = 1.0 / 2.0_f64.sqrt();
            mat(&[vec![(s, 0.0), (s, 0.0)], vec![(s, 0.0), (-s, 0.0)]])
        };
        let mut cnot = Matrix::<f64>::zeros(4, 4);
        for (r, c) in [(0usize, 0usize), (1, 1), (2, 3), (3, 2)] {
            cnot.set(r, c, C64::one());
        }
        // Tensor forms: 1-qubit gates rank 2 [out,in]; CNOT rank 4 [o0,o1,i0,i1].
        let tx = Tensor::from_matrix(x.clone());
        let th = Tensor::from_matrix(h.clone());
        let tc = Tensor::from_matrix(cnot.clone()).reshape(vec![2, 2, 2, 2]).unwrap();
        // circuit: first (X on q0) ⊗ (H on q1), then CNOT.
        // CNOT input indices contract with single-qubit gate output indices.
        let step = tc.contract(&tx, &[(2, 0)]).unwrap(); // [o0,o1,i1, x_in]
        let full = step.contract(&th, &[(2, 0)]).unwrap(); // [o0,o1,x_in,h_in]
        let u = full.to_matrix(2).unwrap();
        let expected = cnot.matmul(&x.kron(&h));
        assert!(u.max_elementwise_distance(&expected) < 1e-12);
    }

    #[test]
    fn permute_validates() {
        let t = Tensor::<f64>::zeros(vec![2, 3, 4]);
        assert!(t.permute(&[0, 1]).is_err());
        assert!(t.permute(&[0, 1, 1]).is_err());
        let p = t.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.shape(), &[4, 2, 3]);
    }

    #[test]
    fn trace_axes_of_identity() {
        let id = Tensor::from_matrix(Matrix::<f64>::identity(3));
        let tr = id.trace_axes(0, 1).unwrap();
        assert_eq!(tr.as_slice()[0], C64::new(3.0, 0.0));
    }

    #[test]
    fn trace_axes_partial() {
        // shape [2,3,3]: trace over last two axes leaves shape [2].
        let mut t = Tensor::<f64>::zeros(vec![2, 3, 3]);
        for a in 0..2 {
            for i in 0..3 {
                t.set(&[a, i, i], C64::from_real((a + 1) as f64)).unwrap();
            }
        }
        let tr = t.trace_axes(1, 2).unwrap();
        assert_eq!(tr.shape(), &[2]);
        assert_eq!(tr.as_slice()[0], C64::from_real(3.0));
        assert_eq!(tr.as_slice()[1], C64::from_real(6.0));
    }

    #[test]
    fn trace_axes_rejects_bad_axes() {
        let t = Tensor::<f64>::zeros(vec![2, 3]);
        assert!(t.trace_axes(0, 0).is_err());
        assert!(t.trace_axes(0, 1).is_err()); // dims differ
        assert!(t.trace_axes(0, 5).is_err());
    }
}
