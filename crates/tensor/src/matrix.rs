//! Dense, row-major complex matrices.
//!
//! [`Matrix`] is the workhorse value type of the runtime: gate unitaries, gradient
//! components, and every intermediate tensor-network buffer that happens to be a
//! matrix are stored in this representation.

use crate::complex::{Complex, Float};
use crate::{gemm, kron, Result, TensorError};

/// A dense, row-major complex matrix over precision `T`.
///
/// # Example
///
/// ```
/// use qudit_tensor::{Matrix, Complex};
/// let h: Matrix<f64> = Matrix::from_fn(2, 2, |r, c| {
///     let s = 1.0 / 2.0f64.sqrt();
///     if r == 1 && c == 1 { Complex::from_real(-s) } else { Complex::from_real(s) }
/// });
/// assert!(h.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<Complex<T>>,
}

impl<T: Float> Matrix<T> {
    /// Creates a zero-filled matrix with the given dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![Complex::zero(); rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, Complex::one());
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for each element.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> Complex<T>,
    ) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged (different lengths).
    pub fn from_rows(rows: &[Vec<Complex<T>>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: nrows, cols: ncols, data }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex<T>>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidReshape { from: data.len(), to: rows * cols });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the row-major element buffer.
    #[inline]
    pub fn as_slice(&self) -> &[Complex<T>] {
        &self.data
    }

    /// Mutable view of the row-major element buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex<T>] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<Complex<T>> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Complex<T> {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Complex<T>) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree. Use [`Matrix::try_matmul`] for a
    /// fallible variant.
    pub fn matmul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        self.try_matmul(rhs).expect("matmul dimension mismatch")
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Matrix<T>) -> Result<Matrix<T>> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        gemm::matmul_into(&self.data, self.rows, self.cols, &rhs.data, rhs.cols, &mut out.data);
        Ok(out)
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix<T>) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        kron::kron_into(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.rows,
            rhs.cols,
            &mut out.data,
        );
        out
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix<T>) -> Result<Matrix<T>> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "hadamard",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| *a * *b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Conjugate transpose (dagger).
    pub fn dagger(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r).conj())
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|c| c.conj()).collect(),
        }
    }

    /// Matrix trace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex<T> {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Sum of two matrices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn add(&self, rhs: &Matrix<T>) -> Result<Matrix<T>> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| *a + *b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn sub(&self, rhs: &Matrix<T>) -> Result<Matrix<T>> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "sub",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| *a - *b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Scales every element by a complex factor.
    pub fn scale(&self, s: Complex<T>) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|c| *c * s).collect(),
        }
    }

    /// Hilbert–Schmidt inner product `Tr(self† · rhs)`.
    ///
    /// This is the quantity inside the infidelity cost function of Eq. (1) in the paper.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hs_inner(&self, rhs: &Matrix<T>) -> Complex<T> {
        assert_eq!(self.rows, rhs.rows, "hs_inner shape mismatch");
        assert_eq!(self.cols, rhs.cols, "hs_inner shape mismatch");
        self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a.conj() * *b).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data.iter().fold(T::zero(), |acc, c| acc + c.norm_sqr()).sqrt()
    }

    /// Largest element-wise distance to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_elementwise_distance(&self, rhs: &Matrix<T>) -> T {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        self.data.iter().zip(rhs.data.iter()).fold(T::zero(), |acc, (a, b)| acc.max(a.dist(*b)))
    }

    /// `true` if the matrix is the identity to within `tol` element-wise.
    pub fn is_identity(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let tol = T::from_f64(tol);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let expected = if r == c { Complex::one() } else { Complex::zero() };
                if self.get(r, c).dist(expected) > tol {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if `self† · self` is the identity to within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.dagger().matmul(self).is_identity(tol)
    }

    /// The largest element-wise deviation of `self† · self` from the identity — the
    /// quantity [`Matrix::is_unitary`] compares against its tolerance. Non-square
    /// matrices report infinity. Diagnostics use this to say *how far* from unitary a
    /// rejected matrix was, not just that it failed.
    pub fn unitary_deviation(&self) -> T {
        if !self.is_square() {
            return T::from_f64(f64::INFINITY);
        }
        let gram = self.dagger().matmul(self);
        let mut worst = T::zero();
        for r in 0..gram.rows {
            for c in 0..gram.cols {
                let expected = if r == c { Complex::one() } else { Complex::zero() };
                let distance = gram.get(r, c).dist(expected);
                if distance.to_f64().is_nan() {
                    // `max` would silently drop a NaN once a later finite element
                    // compares against it; report it so validation rejects the matrix.
                    return distance;
                }
                worst = worst.max(distance);
            }
        }
        worst
    }

    /// Converts every element to `f64` precision.
    pub fn to_f64(&self) -> Matrix<f64> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|c| c.to_c64()).collect(),
        }
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Complex<T>)> + '_ {
        let cols = self.cols;
        self.data.iter().enumerate().map(move |(i, c)| (i / cols, i % cols, *c))
    }
}

impl<T: Float> std::fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    fn pauli_x() -> Matrix<f64> {
        Matrix::from_rows(&[vec![C64::zero(), C64::one()], vec![C64::one(), C64::zero()]])
    }

    fn pauli_y() -> Matrix<f64> {
        Matrix::from_rows(&[vec![C64::zero(), -C64::i()], vec![C64::i(), C64::zero()]])
    }

    fn pauli_z() -> Matrix<f64> {
        Matrix::from_rows(&[vec![C64::one(), C64::zero()], vec![C64::zero(), -C64::one()]])
    }

    #[test]
    fn unitary_deviation_measures_distance_from_unitarity() {
        assert!(pauli_x().unitary_deviation() < 1e-15);
        let scaled = pauli_x().scale(C64::from_real(1.1));
        let deviation = scaled.unitary_deviation();
        assert!((deviation - 0.21).abs() < 1e-12, "deviation {deviation}");
        assert!(!scaled.is_unitary(0.1));
        assert!(Matrix::<f64>::zeros(2, 3).unitary_deviation().is_infinite());

        // A NaN element must surface as a NaN deviation, not be masked by `max`.
        let mut poisoned = Matrix::<f64>::identity(3);
        poisoned.set(0, 0, C64::new(f64::NAN, 0.0));
        assert!(poisoned.unitary_deviation().is_nan());
    }

    #[test]
    fn identity_is_identity() {
        assert!(Matrix::<f64>::identity(5).is_identity(0.0));
        assert!(Matrix::<f64>::identity(5).is_unitary(1e-14));
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // X·Y = iZ
        let xy = x.matmul(&y);
        assert!(xy.max_elementwise_distance(&z.scale(C64::i())) < 1e-14);
        // X² = I
        assert!(x.matmul(&x).is_identity(1e-14));
        assert!(x.is_unitary(1e-14) && y.is_unitary(1e-14) && z.is_unitary(1e-14));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_fn(2, 3, |r, c| C64::from_real((r * 3 + c) as f64));
        let b = Matrix::from_fn(3, 2, |r, c| C64::from_real((r * 2 + c) as f64));
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), C64::from_real(10.0));
        assert_eq!(c.get(1, 1), C64::from_real(40.0));
    }

    #[test]
    fn try_matmul_rejects_bad_shapes() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(a.try_matmul(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn kron_shapes_and_values() {
        let x = pauli_x();
        let id = Matrix::<f64>::identity(2);
        let cx_ish = id.kron(&x);
        assert_eq!(cx_ish.rows(), 4);
        assert_eq!(cx_ish.get(0, 1), C64::one());
        assert_eq!(cx_ish.get(2, 3), C64::one());
        assert!(cx_ish.is_unitary(1e-14));
    }

    #[test]
    fn kron_of_unitaries_is_unitary() {
        let u = pauli_y().kron(&pauli_z()).kron(&pauli_x());
        assert!(u.is_unitary(1e-12));
        assert_eq!(u.rows(), 8);
    }

    #[test]
    fn hadamard_product() {
        let a = Matrix::from_fn(2, 2, |r, c| C64::from_real((r + c) as f64));
        let b = Matrix::from_fn(2, 2, |_, _| C64::from_real(2.0));
        let h = a.hadamard(&b).unwrap();
        assert_eq!(h.get(1, 1), C64::from_real(4.0));
        let bad = Matrix::<f64>::zeros(3, 3);
        assert!(a.hadamard(&bad).is_err());
    }

    #[test]
    fn dagger_and_trace() {
        let y = pauli_y();
        assert_eq!(y.dagger(), y); // Hermitian
        assert_eq!(y.trace(), C64::zero());
        assert_eq!(Matrix::<f64>::identity(3).trace(), C64::from_real(3.0));
    }

    #[test]
    fn hs_inner_and_norm() {
        let x = pauli_x();
        assert_eq!(x.hs_inner(&x), C64::from_real(2.0));
        assert!((x.frobenius_norm() - 2.0f64.sqrt()).abs() < 1e-14);
        let z = pauli_z();
        assert_eq!(x.hs_inner(&z), C64::zero());
    }

    #[test]
    fn add_sub_scale() {
        let x = pauli_x();
        let two_x = x.add(&x).unwrap();
        assert_eq!(two_x, x.scale(C64::from_real(2.0)));
        assert!(two_x.sub(&x).unwrap().max_elementwise_distance(&x) < 1e-15);
        assert!(x.add(&Matrix::zeros(3, 3)).is_err());
        assert!(x.sub(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::<f64>::from_vec(2, 2, vec![C64::zero(); 3]).is_err());
        assert!(Matrix::<f64>::from_vec(2, 2, vec![C64::zero(); 4]).is_ok());
    }

    #[test]
    fn transpose_vs_dagger() {
        let y = pauli_y();
        // Y is Hermitian: Y† = Y, and therefore Yᵀ = conj(Y).
        assert_eq!(y.dagger(), y);
        assert_eq!(y.transpose(), y.conj());
        assert_eq!(y.transpose().get(0, 1), C64::i());
        assert_eq!(y.dagger().get(0, 1), -C64::i());
    }

    #[test]
    fn display_and_iter() {
        let x = pauli_x();
        assert!(x.to_string().contains('['));
        let count = x.iter().filter(|(_, _, v)| *v == C64::one()).count();
        assert_eq!(count, 2);
    }

    #[test]
    fn f32_matrix_roundtrip() {
        let m: Matrix<f32> = Matrix::identity(4);
        assert!(m.to_f64().is_identity(0.0));
    }
}
