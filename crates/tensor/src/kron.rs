//! Kronecker-product kernels.
//!
//! The KRON bytecode instruction of the TNVM (Table II in the paper) combines the
//! tensors of gates acting on disjoint qudits into a single larger tensor. These kernels
//! operate directly on flat row-major buffers so the virtual machine can run them against
//! its pre-allocated arena without constructing intermediate `Matrix` values.

use crate::complex::{Complex, Float};

/// Computes `out = a ⊗ b` where `a` is `ar×ac`, `b` is `br×bc`, and `out` is
/// `(ar·br)×(ac·bc)`, all row-major.
///
/// # Panics
///
/// Panics if any buffer is smaller than its stated dimensions imply.
pub fn kron_into<T: Float>(
    a: &[Complex<T>],
    ar: usize,
    ac: usize,
    b: &[Complex<T>],
    br: usize,
    bc: usize,
    out: &mut [Complex<T>],
) {
    assert!(a.len() >= ar * ac, "kron lhs buffer too small");
    assert!(b.len() >= br * bc, "kron rhs buffer too small");
    let (or, oc) = (ar * br, ac * bc);
    assert!(out.len() >= or * oc, "kron output buffer too small");
    for i in 0..ar {
        for j in 0..ac {
            let a_ij = a[i * ac + j];
            let row0 = i * br;
            let col0 = j * bc;
            if a_ij.re == T::zero() && a_ij.im == T::zero() {
                for p in 0..br {
                    let orow = (row0 + p) * oc + col0;
                    for q in 0..bc {
                        out[orow + q] = Complex::zero();
                    }
                }
                continue;
            }
            for p in 0..br {
                let brow = p * bc;
                let orow = (row0 + p) * oc + col0;
                for q in 0..bc {
                    out[orow + q] = a_ij * b[brow + q];
                }
            }
        }
    }
}

/// Accumulating Kronecker product `out += a ⊗ b`.
///
/// Used by the product-rule expansion of KRON under forward-mode differentiation.
pub fn kron_acc_into<T: Float>(
    a: &[Complex<T>],
    ar: usize,
    ac: usize,
    b: &[Complex<T>],
    br: usize,
    bc: usize,
    out: &mut [Complex<T>],
) {
    assert!(a.len() >= ar * ac, "kron lhs buffer too small");
    assert!(b.len() >= br * bc, "kron rhs buffer too small");
    let (or, oc) = (ar * br, ac * bc);
    assert!(out.len() >= or * oc, "kron output buffer too small");
    for i in 0..ar {
        for j in 0..ac {
            let a_ij = a[i * ac + j];
            if a_ij.re == T::zero() && a_ij.im == T::zero() {
                continue;
            }
            let row0 = i * br;
            let col0 = j * bc;
            for p in 0..br {
                let brow = p * bc;
                let orow = (row0 + p) * oc + col0;
                for q in 0..bc {
                    out[orow + q] += a_ij * b[brow + q];
                }
            }
        }
    }
}

/// Blocked Kronecker product `out = a ⊗ b`, bit-identical to [`kron_into`].
///
/// The restructured loops drive the innermost copy through slice iterators (no
/// per-element bounds checks) so the compiler can unroll and vectorize the `b`-row
/// scaling. Element values are produced by the exact same `a_ij * b[p][q]` products as
/// the scalar kernel, so the tiers agree bit-for-bit.
///
/// # Panics
///
/// Panics if any buffer is smaller than its stated dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn kron_blocked_into<T: Float>(
    a: &[Complex<T>],
    ar: usize,
    ac: usize,
    b: &[Complex<T>],
    br: usize,
    bc: usize,
    out: &mut [Complex<T>],
) {
    assert!(a.len() >= ar * ac, "kron lhs buffer too small");
    assert!(b.len() >= br * bc, "kron rhs buffer too small");
    let (or, oc) = (ar * br, ac * bc);
    assert!(out.len() >= or * oc, "kron output buffer too small");
    for i in 0..ar {
        let a_row = &a[i * ac..(i + 1) * ac];
        for p in 0..br {
            let b_row = &b[p * bc..(p + 1) * bc];
            let o_row = &mut out[(i * br + p) * oc..(i * br + p) * oc + oc];
            for (j, &a_ij) in a_row.iter().enumerate() {
                let o_block = &mut o_row[j * bc..(j + 1) * bc];
                if a_ij.re == T::zero() && a_ij.im == T::zero() {
                    for o in o_block.iter_mut() {
                        *o = Complex::zero();
                    }
                } else {
                    let (re, im) = (a_ij.re, a_ij.im);
                    for (o, &b_pq) in o_block.iter_mut().zip(b_row.iter()) {
                        *o = Complex {
                            re: re * b_pq.re - im * b_pq.im,
                            im: re * b_pq.im + im * b_pq.re,
                        };
                    }
                }
            }
        }
    }
}

/// Blocked accumulating Kronecker product `out += a ⊗ b`, bit-identical to
/// [`kron_acc_into`].
///
/// # Panics
///
/// Panics if any buffer is smaller than its stated dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn kron_blocked_acc_into<T: Float>(
    a: &[Complex<T>],
    ar: usize,
    ac: usize,
    b: &[Complex<T>],
    br: usize,
    bc: usize,
    out: &mut [Complex<T>],
) {
    assert!(a.len() >= ar * ac, "kron lhs buffer too small");
    assert!(b.len() >= br * bc, "kron rhs buffer too small");
    let (or, oc) = (ar * br, ac * bc);
    assert!(out.len() >= or * oc, "kron output buffer too small");
    for i in 0..ar {
        let a_row = &a[i * ac..(i + 1) * ac];
        for p in 0..br {
            let b_row = &b[p * bc..(p + 1) * bc];
            let o_row = &mut out[(i * br + p) * oc..(i * br + p) * oc + oc];
            for (j, &a_ij) in a_row.iter().enumerate() {
                if a_ij.re == T::zero() && a_ij.im == T::zero() {
                    continue;
                }
                let (re, im) = (a_ij.re, a_ij.im);
                let o_block = &mut o_row[j * bc..(j + 1) * bc];
                for (o, &b_pq) in o_block.iter_mut().zip(b_row.iter()) {
                    o.re += re * b_pq.re - im * b_pq.im;
                    o.im += re * b_pq.im + im * b_pq.re;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, C64};

    #[test]
    fn kron_identity_with_x() {
        let id = Matrix::<f64>::identity(2);
        let x = Matrix::from_rows(&[vec![C64::zero(), C64::one()], vec![C64::one(), C64::zero()]]);
        let k = id.kron(&x);
        // Expected block-diagonal [[X, 0], [0, X]].
        for (r, c, v) in k.iter() {
            let expect =
                if (r / 2 == c / 2) && (r % 2 != c % 2) { C64::one() } else { C64::zero() };
            assert_eq!(v, expect, "element ({r},{c})");
        }
    }

    #[test]
    fn kron_dimensions_multiply() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(4, 5);
        let k = a.kron(&b);
        assert_eq!((k.rows(), k.cols()), (8, 15));
    }

    #[test]
    fn kron_mixed_radix() {
        // Qubit ⊗ qutrit identity = 6-dimensional identity.
        let q2 = Matrix::<f64>::identity(2);
        let q3 = Matrix::<f64>::identity(3);
        assert!(q2.kron(&q3).is_identity(0.0));
    }

    #[test]
    fn kron_scalar_structure() {
        let a = Matrix::from_rows(&[vec![C64::new(2.0, 0.0)]]);
        let b = Matrix::from_rows(&[
            vec![C64::new(1.0, 1.0), C64::zero()],
            vec![C64::zero(), C64::new(0.0, -1.0)],
        ]);
        let k = a.kron(&b);
        assert_eq!(k.get(0, 0), C64::new(2.0, 2.0));
        assert_eq!(k.get(1, 1), C64::new(0.0, -2.0));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = Matrix::from_fn(2, 2, |r, c| C64::new((r + 2 * c) as f64, 1.0));
        let b = Matrix::from_fn(3, 3, |r, c| C64::new(r as f64, c as f64));
        let c = Matrix::from_fn(2, 2, |r, c| C64::new((r * c) as f64, -1.0));
        let d = Matrix::from_fn(3, 3, |r, c| C64::new((r + c) as f64, 0.5));
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.max_elementwise_distance(&rhs) < 1e-10);
    }

    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Vec<C64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        (0..rows * cols)
            .map(|i| if i % 4 == 0 { C64::zero() } else { C64::new(next(), next()) })
            .collect()
    }

    #[test]
    fn blocked_kron_matches_scalar_bitwise() {
        for (ar, ac, br, bc) in [(1, 1, 1, 1), (2, 2, 3, 3), (4, 4, 2, 2), (3, 5, 4, 2)] {
            let a = lcg_matrix(ar, ac, (ar * 7 + ac) as u64);
            let b = lcg_matrix(br, bc, (br * 7 + bc) as u64);
            let n = ar * br * ac * bc;
            let mut scalar = vec![C64::new(0.5, -0.5); n];
            let mut blocked = vec![C64::new(0.5, -0.5); n];
            kron_into(&a, ar, ac, &b, br, bc, &mut scalar);
            kron_blocked_into(&a, ar, ac, &b, br, bc, &mut blocked);
            for (i, (x, y)) in scalar.iter().zip(blocked.iter()).enumerate() {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "into re at {i}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "into im at {i}");
            }
            let mut scalar_acc = scalar.clone();
            let mut blocked_acc = scalar.clone();
            kron_acc_into(&a, ar, ac, &b, br, bc, &mut scalar_acc);
            kron_blocked_acc_into(&a, ar, ac, &b, br, bc, &mut blocked_acc);
            for (i, (x, y)) in scalar_acc.iter().zip(blocked_acc.iter()).enumerate() {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "acc re at {i}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "acc im at {i}");
            }
        }
    }

    #[test]
    fn kron_acc_adds() {
        let a = [C64::one(); 1];
        let b = [C64::one(); 1];
        let mut out = [C64::new(3.0, 0.0)];
        kron_acc_into(&a, 1, 1, &b, 1, 1, &mut out);
        assert_eq!(out[0], C64::new(4.0, 0.0));
    }
}
