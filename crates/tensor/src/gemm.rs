//! General matrix–matrix multiplication kernels.
//!
//! The paper delegates its inner-loop matrix products to `nano-gemm`; this module is the
//! from-scratch stand-in. The kernel is a cache-friendly ikj-ordered loop with a blocked
//! variant for larger operands. Quantum-compilation workloads multiply many *small*
//! matrices (2×2 up to a few hundred square for the PQC benchmarks), so the emphasis is
//! on low constant overhead rather than asymptotic tuning.

use crate::complex::{Complex, Float};

/// Block edge used by the tiled kernel.
const BLOCK: usize = 32;

/// Computes `out = a · b` where `a` is `m×k`, `b` is `k×n` and `out` is `m×n`,
/// all row-major.
///
/// # Panics
///
/// Panics (via debug assertions on slice indexing) if the slices are shorter than the
/// stated dimensions imply. Callers are expected to have validated shapes.
pub fn matmul_into<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    for v in out[..m * n].iter_mut() {
        *v = Complex::zero();
    }
    if m * n * k <= 32 * 32 * 32 {
        matmul_ikj(a, m, k, b, n, out);
    } else {
        matmul_blocked(a, m, k, b, n, out);
    }
}

/// Accumulating product: `out += a · b`.
///
/// Used by the forward-mode AD rules in the TNVM, where a gradient component is a sum of
/// products (product rule).
pub fn matmul_acc_into<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    matmul_ikj(a, m, k, b, n, out);
}

/// Simple ikj-ordered kernel (accumulates into `out`).
fn matmul_ikj<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip.re == T::zero() && a_ip.im == T::zero() {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (j, &b_pj) in b_row.iter().enumerate() {
                out_row[j] += a_ip * b_pj;
            }
        }
    }
}

/// Blocked kernel for larger operands (accumulates into `out`).
fn matmul_blocked<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
) {
    let mut ii = 0;
    while ii < m {
        let i_end = (ii + BLOCK).min(m);
        let mut pp = 0;
        while pp < k {
            let p_end = (pp + BLOCK).min(k);
            let mut jj = 0;
            while jj < n {
                let j_end = (jj + BLOCK).min(n);
                for i in ii..i_end {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * n..(i + 1) * n];
                    for p in pp..p_end {
                        let a_ip = a_row[p];
                        if a_ip.re == T::zero() && a_ip.im == T::zero() {
                            continue;
                        }
                        let b_row = &b[p * n..(p + 1) * n];
                        for j in jj..j_end {
                            out_row[j] += a_ip * b_row[j];
                        }
                    }
                }
                jj = j_end;
            }
            pp = p_end;
        }
        ii = i_end;
    }
}

/// Number of output columns packed per panel by the structure-of-arrays blocked kernels.
pub const SOA_PANEL: usize = 8;

/// Workspace length, in `T` scalars, required by [`matmul_blocked_into`] and
/// [`matmul_blocked_acc_into`] for an inner dimension of `k`.
///
/// The workspace holds one packed B-panel: `SOA_PANEL` columns split into separate
/// real and imaginary planes so the inner loop reads contiguous same-component data.
pub fn blocked_workspace_len(k: usize) -> usize {
    2 * k * SOA_PANEL
}

/// Blocked structure-of-arrays product `out = a · b` (`a` is `m×k`, `b` is `k×n`).
///
/// Packs `b` into panels of [`SOA_PANEL`] columns with separate real/imaginary planes
/// (in `ws`, sized by [`blocked_workspace_len`]) so the inner loop auto-vectorizes.
/// Accumulation order over the inner dimension and the zero-skip condition match the
/// scalar kernels exactly, so results are bit-for-bit identical to [`matmul_into`].
///
/// # Panics
///
/// Panics if any buffer (including `ws`) is smaller than the dimensions imply.
pub fn matmul_blocked_into<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
    ws: &mut [T],
) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    assert!(ws.len() >= blocked_workspace_len(k), "workspace too small");
    if soa_worthwhile(a, m, k) {
        matmul_soa(a, m, k, b, n, out, ws, false);
    } else {
        matmul_into(a, m, k, b, n, out);
    }
}

/// Blocked accumulating product `out += a · b`; bit-identical to [`matmul_acc_into`].
///
/// # Panics
///
/// Panics if any buffer (including `ws`) is smaller than the dimensions imply.
pub fn matmul_blocked_acc_into<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
    ws: &mut [T],
) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    assert!(ws.len() >= blocked_workspace_len(k), "workspace too small");
    if soa_worthwhile(a, m, k) {
        matmul_soa(a, m, k, b, n, out, ws, true);
    } else {
        matmul_acc_into(a, m, k, b, n, out);
    }
}

/// Minimum ratio of nonzero lhs entries to the inner dimension for the SoA path to
/// amortize its panel-packing cost.
const SOA_MIN_NNZ_FACTOR: usize = 3;

/// Whether `a` is dense enough for panel packing to pay off. Both paths share the
/// per-element zero-skip, so a sparse lhs (permutation or diagonal gate matrices)
/// collapses the arithmetic on either path — but only the SoA path still pays to
/// pack `b`. Results are bit-identical either way, so this is purely a speed
/// heuristic; the scan early-exits after a few rows of a dense operand.
fn soa_worthwhile<T: Float>(a: &[Complex<T>], m: usize, k: usize) -> bool {
    let target = SOA_MIN_NNZ_FACTOR * k;
    let mut nnz = 0usize;
    for v in &a[..m * k] {
        if v.re != T::zero() || v.im != T::zero() {
            nnz += 1;
            if nnz >= target {
                return true;
            }
        }
    }
    false
}

/// Shared panel-packed structure-of-arrays kernel.
///
/// Per output element the inner dimension is traversed in ascending order with the same
/// zero-skip and the same `(ar·br − ai·bi, ar·bi + ai·br)` expansion as the scalar
/// kernels — the floating-point operation sequence per element is unchanged, only the
/// memory layout differs, which is what keeps the tiers bit-identical.
#[allow(clippy::too_many_arguments)]
fn matmul_soa<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
    ws: &mut [T],
    accumulate: bool,
) {
    let (bre, bim) = ws.split_at_mut(k * SOA_PANEL);
    let mut j0 = 0;
    while j0 < n {
        let w = SOA_PANEL.min(n - j0);
        // Pack the panel: w columns of b, split into real/imaginary planes with a
        // compact row stride of w.
        for p in 0..k {
            let b_row = &b[p * n + j0..p * n + j0 + w];
            let dst = p * w;
            for (jj, v) in b_row.iter().enumerate() {
                bre[dst + jj] = v.re;
                bim[dst + jj] = v.im;
            }
        }
        // Full-width panels take the const-width path so the compiler sees a
        // fixed trip count and keeps the 8-wide accumulators fully vectorized;
        // the ragged tail panel (at most one per call) runs the dynamic loop.
        if w == SOA_PANEL {
            soa_panel::<T, SOA_PANEL>(a, m, k, bre, bim, out, n, j0, accumulate);
        } else {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n + j0..i * n + j0 + w];
                let mut acc_re = [T::zero(); SOA_PANEL];
                let mut acc_im = [T::zero(); SOA_PANEL];
                if accumulate {
                    for (jj, v) in out_row.iter().enumerate() {
                        acc_re[jj] = v.re;
                        acc_im[jj] = v.im;
                    }
                }
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip.re == T::zero() && a_ip.im == T::zero() {
                        continue;
                    }
                    let (ar, ai) = (a_ip.re, a_ip.im);
                    let p_re = &bre[p * w..p * w + w];
                    let p_im = &bim[p * w..p * w + w];
                    for jj in 0..w {
                        let br_v = p_re[jj];
                        let bi_v = p_im[jj];
                        acc_re[jj] += ar * br_v - ai * bi_v;
                        acc_im[jj] += ar * bi_v + ai * br_v;
                    }
                }
                for (jj, o) in out_row.iter_mut().enumerate() {
                    *o = Complex { re: acc_re[jj], im: acc_im[jj] };
                }
            }
        }
        j0 += w;
    }
}

/// One full-width SoA panel with a compile-time column count, so the inner loops
/// unroll and vectorize with no runtime trip-count checks. Identical floating-point
/// operation sequence to the dynamic tail loop in [`matmul_soa`].
#[allow(clippy::too_many_arguments)]
fn soa_panel<T: Float, const W: usize>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    bre: &[T],
    bim: &[T],
    out: &mut [Complex<T>],
    n: usize,
    j0: usize,
    accumulate: bool,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n + j0..i * n + j0 + W];
        let mut acc_re = [T::zero(); W];
        let mut acc_im = [T::zero(); W];
        if accumulate {
            for (jj, v) in out_row.iter().enumerate() {
                acc_re[jj] = v.re;
                acc_im[jj] = v.im;
            }
        }
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip.re == T::zero() && a_ip.im == T::zero() {
                continue;
            }
            let (ar, ai) = (a_ip.re, a_ip.im);
            let p_re: &[T; W] = bre[p * W..(p + 1) * W].try_into().expect("panel width");
            let p_im: &[T; W] = bim[p * W..(p + 1) * W].try_into().expect("panel width");
            for jj in 0..W {
                let br_v = p_re[jj];
                let bi_v = p_im[jj];
                acc_re[jj] += ar * br_v - ai * bi_v;
                acc_im[jj] += ar * bi_v + ai * br_v;
            }
        }
        for (jj, o) in out_row.iter_mut().enumerate() {
            *o = Complex { re: acc_re[jj], im: acc_im[jj] };
        }
    }
}

/// Element-wise (Hadamard) product `out[i] = a[i] * b[i]`.
pub fn hadamard_into<T: Float>(a: &[Complex<T>], b: &[Complex<T>], out: &mut [Complex<T>]) {
    assert_eq!(a.len(), b.len(), "hadamard operand length mismatch");
    assert!(out.len() >= a.len(), "hadamard output too small");
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x * y;
    }
}

/// Accumulating element-wise product `out[i] += a[i] * b[i]`.
pub fn hadamard_acc_into<T: Float>(a: &[Complex<T>], b: &[Complex<T>], out: &mut [Complex<T>]) {
    assert_eq!(a.len(), b.len(), "hadamard operand length mismatch");
    assert!(out.len() >= a.len(), "hadamard output too small");
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o += x * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, C64};

    fn naive(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = C64::zero();
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        // Small deterministic LCG so the kernel tests do not depend on `rand`.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        Matrix::from_fn(rows, cols, |_, _| C64::new(next(), next()))
    }

    #[test]
    fn small_kernel_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (4, 4, 4), (5, 2, 7)] {
            let a = random_matrix(m, k, (m * 100 + k) as u64);
            let b = random_matrix(k, n, (k * 100 + n) as u64);
            let fast = a.matmul(&b);
            let slow = naive(&a, &b);
            assert!(fast.max_elementwise_distance(&slow) < 1e-12, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_kernel_matches_naive() {
        let a = random_matrix(48, 40, 1);
        let b = random_matrix(40, 56, 2);
        let fast = a.matmul(&b);
        let slow = naive(&a, &b);
        assert!(fast.max_elementwise_distance(&slow) < 1e-10);
    }

    #[test]
    fn accumulating_matmul_adds() {
        let a = random_matrix(3, 3, 7);
        let b = random_matrix(3, 3, 8);
        let mut out = vec![C64::one(); 9];
        matmul_acc_into(a.as_slice(), 3, 3, b.as_slice(), 3, &mut out);
        let expected = naive(&a, &b);
        for (i, v) in out.iter().enumerate() {
            let e = expected.as_slice()[i] + C64::one();
            assert!(v.dist(e) < 1e-12);
        }
    }

    #[test]
    fn hadamard_kernels() {
        let a = [C64::new(1.0, 1.0), C64::new(2.0, 0.0)];
        let b = [C64::new(0.0, 1.0), C64::new(3.0, 0.0)];
        let mut out = [C64::zero(); 2];
        hadamard_into(&a, &b, &mut out);
        assert_eq!(out[0], C64::new(-1.0, 1.0));
        assert_eq!(out[1], C64::new(6.0, 0.0));
        hadamard_acc_into(&a, &b, &mut out);
        assert_eq!(out[1], C64::new(12.0, 0.0));
    }

    /// Matrix with a sprinkling of exact zeros so the zero-skip path is exercised.
    fn sparse_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let dense = random_matrix(rows, cols, seed);
        Matrix::from_fn(rows, cols, |r, c| {
            if (r + 2 * c + seed as usize).is_multiple_of(3) {
                C64::zero()
            } else {
                dense.get(r, c)
            }
        })
    }

    fn assert_bits_equal(a: &[C64], b: &[C64], what: &str) {
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re differs at {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im differs at {i}");
        }
    }

    #[test]
    fn blocked_soa_matches_scalar_bitwise() {
        for (m, k, n) in [(1, 1, 1), (2, 2, 2), (3, 4, 5), (8, 8, 8), (9, 16, 12), (17, 33, 7)] {
            let a = sparse_matrix(m, k, (m * 31 + k) as u64);
            let b = sparse_matrix(k, n, (k * 31 + n) as u64);
            let mut scalar = vec![C64::zero(); m * n];
            let mut blocked = vec![C64::zero(); m * n];
            let mut ws = vec![0.0f64; blocked_workspace_len(k)];
            matmul_into(a.as_slice(), m, k, b.as_slice(), n, &mut scalar);
            matmul_blocked_into(a.as_slice(), m, k, b.as_slice(), n, &mut blocked, &mut ws);
            assert_bits_equal(&scalar, &blocked, &format!("into {m}x{k}x{n}"));

            // Accumulating variant, starting from a non-trivial output.
            let init = random_matrix(m, n, 77);
            let mut scalar_acc = init.as_slice().to_vec();
            let mut blocked_acc = init.as_slice().to_vec();
            matmul_acc_into(a.as_slice(), m, k, b.as_slice(), n, &mut scalar_acc);
            matmul_blocked_acc_into(a.as_slice(), m, k, b.as_slice(), n, &mut blocked_acc, &mut ws);
            assert_bits_equal(&scalar_acc, &blocked_acc, &format!("acc {m}x{k}x{n}"));
        }
    }

    #[test]
    #[should_panic(expected = "workspace too small")]
    fn blocked_workspace_too_small_panics() {
        let a = [C64::one(); 4];
        let b = [C64::one(); 4];
        let mut out = [C64::zero(); 4];
        let mut ws = [0.0f64; 1];
        matmul_blocked_into(&a, 2, 2, &b, 2, &mut out, &mut ws);
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn output_too_small_panics() {
        let a = [C64::one(); 4];
        let b = [C64::one(); 4];
        let mut out = [C64::zero(); 2];
        matmul_into(&a, 2, 2, &b, 2, &mut out);
    }
}
