//! General matrix–matrix multiplication kernels.
//!
//! The paper delegates its inner-loop matrix products to `nano-gemm`; this module is the
//! from-scratch stand-in. The kernel is a cache-friendly ikj-ordered loop with a blocked
//! variant for larger operands. Quantum-compilation workloads multiply many *small*
//! matrices (2×2 up to a few hundred square for the PQC benchmarks), so the emphasis is
//! on low constant overhead rather than asymptotic tuning.

use crate::complex::{Complex, Float};

/// Block edge used by the tiled kernel.
const BLOCK: usize = 32;

/// Computes `out = a · b` where `a` is `m×k`, `b` is `k×n` and `out` is `m×n`,
/// all row-major.
///
/// # Panics
///
/// Panics (via debug assertions on slice indexing) if the slices are shorter than the
/// stated dimensions imply. Callers are expected to have validated shapes.
pub fn matmul_into<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    for v in out[..m * n].iter_mut() {
        *v = Complex::zero();
    }
    if m * n * k <= 32 * 32 * 32 {
        matmul_ikj(a, m, k, b, n, out);
    } else {
        matmul_blocked(a, m, k, b, n, out);
    }
}

/// Accumulating product: `out += a · b`.
///
/// Used by the forward-mode AD rules in the TNVM, where a gradient component is a sum of
/// products (product rule).
pub fn matmul_acc_into<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    matmul_ikj(a, m, k, b, n, out);
}

/// Simple ikj-ordered kernel (accumulates into `out`).
fn matmul_ikj<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip.re == T::zero() && a_ip.im == T::zero() {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (j, &b_pj) in b_row.iter().enumerate() {
                out_row[j] += a_ip * b_pj;
            }
        }
    }
}

/// Blocked kernel for larger operands (accumulates into `out`).
fn matmul_blocked<T: Float>(
    a: &[Complex<T>],
    m: usize,
    k: usize,
    b: &[Complex<T>],
    n: usize,
    out: &mut [Complex<T>],
) {
    let mut ii = 0;
    while ii < m {
        let i_end = (ii + BLOCK).min(m);
        let mut pp = 0;
        while pp < k {
            let p_end = (pp + BLOCK).min(k);
            let mut jj = 0;
            while jj < n {
                let j_end = (jj + BLOCK).min(n);
                for i in ii..i_end {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * n..(i + 1) * n];
                    for p in pp..p_end {
                        let a_ip = a_row[p];
                        if a_ip.re == T::zero() && a_ip.im == T::zero() {
                            continue;
                        }
                        let b_row = &b[p * n..(p + 1) * n];
                        for j in jj..j_end {
                            out_row[j] += a_ip * b_row[j];
                        }
                    }
                }
                jj = j_end;
            }
            pp = p_end;
        }
        ii = i_end;
    }
}

/// Element-wise (Hadamard) product `out[i] = a[i] * b[i]`.
pub fn hadamard_into<T: Float>(a: &[Complex<T>], b: &[Complex<T>], out: &mut [Complex<T>]) {
    assert_eq!(a.len(), b.len(), "hadamard operand length mismatch");
    assert!(out.len() >= a.len(), "hadamard output too small");
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x * y;
    }
}

/// Accumulating element-wise product `out[i] += a[i] * b[i]`.
pub fn hadamard_acc_into<T: Float>(a: &[Complex<T>], b: &[Complex<T>], out: &mut [Complex<T>]) {
    assert_eq!(a.len(), b.len(), "hadamard operand length mismatch");
    assert!(out.len() >= a.len(), "hadamard output too small");
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o += x * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, C64};

    fn naive(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = C64::zero();
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        // Small deterministic LCG so the kernel tests do not depend on `rand`.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        Matrix::from_fn(rows, cols, |_, _| C64::new(next(), next()))
    }

    #[test]
    fn small_kernel_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (4, 4, 4), (5, 2, 7)] {
            let a = random_matrix(m, k, (m * 100 + k) as u64);
            let b = random_matrix(k, n, (k * 100 + n) as u64);
            let fast = a.matmul(&b);
            let slow = naive(&a, &b);
            assert!(fast.max_elementwise_distance(&slow) < 1e-12, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_kernel_matches_naive() {
        let a = random_matrix(48, 40, 1);
        let b = random_matrix(40, 56, 2);
        let fast = a.matmul(&b);
        let slow = naive(&a, &b);
        assert!(fast.max_elementwise_distance(&slow) < 1e-10);
    }

    #[test]
    fn accumulating_matmul_adds() {
        let a = random_matrix(3, 3, 7);
        let b = random_matrix(3, 3, 8);
        let mut out = vec![C64::one(); 9];
        matmul_acc_into(a.as_slice(), 3, 3, b.as_slice(), 3, &mut out);
        let expected = naive(&a, &b);
        for (i, v) in out.iter().enumerate() {
            let e = expected.as_slice()[i] + C64::one();
            assert!(v.dist(e) < 1e-12);
        }
    }

    #[test]
    fn hadamard_kernels() {
        let a = [C64::new(1.0, 1.0), C64::new(2.0, 0.0)];
        let b = [C64::new(0.0, 1.0), C64::new(3.0, 0.0)];
        let mut out = [C64::zero(); 2];
        hadamard_into(&a, &b, &mut out);
        assert_eq!(out[0], C64::new(-1.0, 1.0));
        assert_eq!(out[1], C64::new(6.0, 0.0));
        hadamard_acc_into(&a, &b, &mut out);
        assert_eq!(out[1], C64::new(12.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn output_too_small_panics() {
        let a = [C64::one(); 4];
        let b = [C64::one(); 4];
        let mut out = [C64::zero(); 2];
        matmul_into(&a, 2, 2, &b, 2, &mut out);
    }
}
