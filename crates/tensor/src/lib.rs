//! # qudit-tensor
//!
//! Dense complex linear-algebra substrate for the OpenQudit reproduction.
//!
//! The paper relies on `faer`, `nano-gemm`, and custom transpose routines for its
//! numerical kernels; this crate provides the equivalent functionality from scratch:
//!
//! * [`Complex`] — a minimal complex scalar generic over [`Float`] (`f32`/`f64`),
//! * [`Matrix`] — a dense, row-major complex matrix with the operations the tensor
//!   network virtual machine needs (GEMM, Kronecker product, Hadamard product,
//!   conjugate transpose, Hilbert–Schmidt inner products, unitarity checks),
//! * [`Tensor`] — a dense complex tensor with shape/stride metadata and the
//!   reshape–permute–reshape machinery used by the TTGT contraction strategy.
//!
//! # Example
//!
//! ```
//! use qudit_tensor::{Matrix, Complex};
//!
//! let x: Matrix<f64> = Matrix::from_rows(&[
//!     vec![Complex::zero(), Complex::one()],
//!     vec![Complex::one(), Complex::zero()],
//! ]);
//! let id = x.matmul(&x);
//! assert!(id.is_identity(1e-12));
//! ```

pub mod complex;
pub mod gemm;
pub mod kron;
pub mod matrix;
pub mod permute;
pub mod tensor;

pub use complex::{Complex, Float, C32, C64};
pub use matrix::Matrix;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by shape-checked tensor and matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The shapes of the operands are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: Vec<usize>,
        /// Shape of the right/second operand (empty when not applicable).
        rhs: Vec<usize>,
    },
    /// A reshape was requested whose element count does not match the source.
    InvalidReshape {
        /// Number of elements in the source tensor.
        from: usize,
        /// Number of elements implied by the requested shape.
        to: usize,
    },
    /// A permutation vector was not a permutation of `0..rank`.
    InvalidPermutation {
        /// The offending permutation.
        perm: Vec<usize>,
        /// The rank of the tensor being permuted.
        rank: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The shape of the tensor being indexed.
        shape: Vec<usize>,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?}, rhs {rhs:?}")
            }
            TensorError::InvalidReshape { from, to } => {
                write!(f, "invalid reshape: source has {from} elements, target implies {to}")
            }
            TensorError::InvalidPermutation { perm, rank } => {
                write!(f, "invalid permutation {perm:?} for rank-{rank} tensor")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = TensorError::ShapeMismatch { op: "matmul", lhs: vec![2, 2], rhs: vec![3, 3] };
        assert!(!e.to_string().is_empty());
        let e = TensorError::InvalidReshape { from: 4, to: 5 };
        assert!(e.to_string().contains("reshape"));
        let e = TensorError::InvalidPermutation { perm: vec![0, 0], rank: 2 };
        assert!(e.to_string().contains("permutation"));
        let e = TensorError::IndexOutOfBounds { index: vec![5], shape: vec![2] };
        assert!(e.to_string().contains("out of bounds"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
    }
}
