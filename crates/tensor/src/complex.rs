//! Complex scalar arithmetic generic over the floating-point precision.
//!
//! The TNVM in the paper is generic over `f32`/`f64` (Sec. VI-C); the [`Float`] trait
//! is the abstraction that makes that genericity possible throughout this workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Real scalar types usable as the precision parameter of the numerical pipeline.
///
/// Implemented for `f32` and `f64`. This trait is sealed in spirit: downstream crates
/// are not expected to implement it, but it is left open so tests can use wrappers.
pub trait Float:
    Copy
    + Clone
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Convert from `f64` (used to materialize symbolic constants).
    fn from_f64(v: f64) -> Self;
    /// Convert to `f64` (used for reporting and error measurement).
    fn to_f64(self) -> f64;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Tangent.
    fn tan(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Raise to a real power.
    fn powf(self, e: Self) -> Self;
    /// Two-argument arctangent.
    fn atan2(self, other: Self) -> Self;
    /// Machine epsilon for the type.
    fn epsilon() -> Self;
    /// The constant π.
    fn pi() -> Self {
        Self::from_f64(std::f64::consts::PI)
    }
    /// Returns `true` if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
    /// Maximum of two values (NaN-propagating is acceptable).
    fn max(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }
    /// Minimum of two values.
    fn min(self, other: Self) -> Self {
        if self < other {
            self
        } else {
            other
        }
    }
}

macro_rules! impl_float {
    ($t:ty) => {
        impl Float for $t {
            #[inline]
            fn zero() -> Self {
                0.0
            }
            #[inline]
            fn one() -> Self {
                1.0
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline]
            fn tan(self) -> Self {
                self.tan()
            }
            #[inline]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn powf(self, e: Self) -> Self {
                self.powf(e)
            }
            #[inline]
            fn atan2(self, other: Self) -> Self {
                self.atan2(other)
            }
            #[inline]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
            #[inline]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
        }
    };
}

impl_float!(f32);
impl_float!(f64);

/// A complex number `re + i·im` over the real scalar type `T`.
///
/// # Example
///
/// ```
/// use qudit_tensor::Complex;
/// let a = Complex::new(1.0_f64, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex number.
pub type C32 = Complex<f32>;
/// Double-precision complex number.
pub type C64 = Complex<f64>;

impl<T: Float> Complex<T> {
    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }

    /// The additive identity `0 + 0i`.
    #[inline]
    pub fn zero() -> Self {
        Complex { re: T::zero(), im: T::zero() }
    }

    /// The multiplicative identity `1 + 0i`.
    #[inline]
    pub fn one() -> Self {
        Complex { re: T::one(), im: T::zero() }
    }

    /// The imaginary unit `0 + 1i`.
    #[inline]
    pub fn i() -> Self {
        Complex { re: T::zero(), im: T::one() }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub fn from_real(re: T) -> Self {
        Complex { re, im: T::zero() }
    }

    /// Creates a complex number from `f64` parts, converting to the target precision.
    #[inline]
    pub fn from_f64(re: f64, im: f64) -> Self {
        Complex { re: T::from_f64(re), im: T::from_f64(im) }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `sqrt(re² + im²)`.
    #[inline]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> T {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Returns non-finite components when `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex { re: self.re / d, im: -self.im / d }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: T) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// Complex exponential `e^self`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex { re: r * self.im.cos(), im: r * self.im.sin() }
    }

    /// `e^{iθ} = cos θ + i sin θ` for a real angle θ.
    #[inline]
    pub fn cis(theta: T) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Converts the components to `f64` precision.
    #[inline]
    pub fn to_c64(self) -> Complex<f64> {
        Complex { re: self.re.to_f64(), im: self.im.to_f64() }
    }

    /// Distance to another complex number.
    #[inline]
    pub fn dist(self, other: Self) -> T {
        (self - other).abs()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add: `self * b + c`.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        self * b + c
    }
}

impl<T: Float> Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl<T: Float> Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl<T: Float> Mul for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl<T: Float> Div for Complex<T> {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w⁻¹
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl<T: Float> Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Complex { re: -self.re, im: -self.im }
    }
}

impl<T: Float> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Float> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Float> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Float> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Float> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex::zero(), |a, b| a + b)
    }
}

impl<T: Float> From<T> for Complex<T> {
    fn from(re: T) -> Self {
        Complex::from_real(re)
    }
}

impl<T: Float> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= T::zero() {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        a.dist(b) < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.5, -2.0);
        assert_eq!(a + C64::zero(), a);
        assert_eq!(a * C64::one(), a);
        assert!(close(a * a.recip(), C64::one()));
        assert_eq!(-(-a), a);
        assert_eq!(a - a, C64::zero());
    }

    #[test]
    fn multiplication_matches_formula() {
        let a = C64::new(2.0, 3.0);
        let b = C64::new(-1.0, 4.0);
        assert_eq!(a * b, C64::new(-14.0, 5.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(0.3, -0.7);
        let b = C64::new(2.0, 1.0);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::i() * C64::i(), C64::new(-1.0, 0.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = C64::new(3.0, 4.0);
        assert_eq!(a.conj(), C64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), C64::from_real(25.0)));
    }

    #[test]
    fn euler_identity() {
        let e_ipi = C64::cis(std::f64::consts::PI);
        assert!(close(e_ipi, C64::new(-1.0, 0.0)));
        let e = C64::new(0.0, std::f64::consts::FRAC_PI_2).exp();
        assert!(close(e, C64::i()));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn f32_precision_roundtrip() {
        let a = C32::from_f64(0.5, -0.25);
        assert_eq!(a.to_c64(), C64::new(0.5, -0.25));
    }

    #[test]
    fn sum_of_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(total, C64::new(6.0, 4.0));
    }

    #[test]
    fn float_trait_consts() {
        assert_eq!(<f64 as Float>::pi(), std::f64::consts::PI);
        assert_eq!(<f64 as Float>::one(), 1.0);
        assert!(<f64 as Float>::epsilon() > 0.0);
        assert_eq!(2.0f64.max(3.0), 3.0);
        assert_eq!(Float::min(2.0f64, 3.0), 2.0);
    }

    #[test]
    fn arg_and_cis_roundtrip() {
        let theta = 0.73;
        let z = C64::cis(theta);
        assert!((z.arg() - theta).abs() < 1e-12);
        assert!((z.abs() - 1.0).abs() < 1e-12);
    }
}
