//! Index-permutation kernels (the "transpose" half of the TTGT contraction strategy).
//!
//! The TNVM's `TRANSPOSE` instruction (Table II in the paper) fuses three operations:
//! reshape a matrix buffer into a multi-index tensor, permute the indices, and reshape
//! back into a matrix. Because the data is stored contiguously in row-major order, the
//! reshape steps are free; only the permutation moves data. This module provides that
//! data movement over flat buffers.

use crate::complex::{Complex, Float};

/// Computes row-major strides for `shape`.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Returns `true` if `perm` is a permutation of `0..rank`.
pub fn is_permutation(perm: &[usize], rank: usize) -> bool {
    if perm.len() != rank {
        return false;
    }
    let mut seen = vec![false; rank];
    for &p in perm {
        if p >= rank || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Permutes the axes of a row-major tensor stored in `src` with the given `shape`,
/// writing the result (also row-major, with shape `perm.map(|p| shape[p])`) into `dst`.
///
/// # Panics
///
/// Panics if `perm` is not a valid permutation of the axes, or if the buffers are too
/// small for `shape`.
pub fn permute_into<T: Float>(
    src: &[Complex<T>],
    shape: &[usize],
    perm: &[usize],
    dst: &mut [Complex<T>],
) {
    let rank = shape.len();
    assert!(is_permutation(perm, rank), "invalid permutation {perm:?} for rank {rank}");
    let total: usize = shape.iter().product();
    assert!(src.len() >= total, "permute source buffer too small");
    assert!(dst.len() >= total, "permute destination buffer too small");

    if total == 0 {
        return;
    }

    // Identity permutation: straight copy.
    if perm.iter().enumerate().all(|(i, &p)| i == p) {
        dst[..total].copy_from_slice(&src[..total]);
        return;
    }

    let src_strides = strides_for(shape);
    let out_shape: Vec<usize> = perm.iter().map(|&p| shape[p]).collect();
    let out_strides = strides_for(&out_shape);

    // For each output axis, the stride to advance in the source buffer.
    let src_stride_for_out: Vec<usize> = perm.iter().map(|&p| src_strides[p]).collect();

    // Odometer walk over the output index space.
    let mut idx = vec![0usize; rank];
    let mut src_off = 0usize;
    for dst_val in dst.iter_mut().take(total) {
        *dst_val = src[src_off];
        // Increment the odometer (last axis fastest, matching row-major dst_off order).
        for axis in (0..rank).rev() {
            idx[axis] += 1;
            src_off += src_stride_for_out[axis];
            if idx[axis] < out_shape[axis] {
                break;
            }
            src_off -= src_stride_for_out[axis] * out_shape[axis];
            idx[axis] = 0;
        }
        let _ = out_strides; // strides kept for documentation symmetry
    }
}

/// Convenience wrapper allocating the destination buffer.
pub fn permute<T: Float>(src: &[Complex<T>], shape: &[usize], perm: &[usize]) -> Vec<Complex<T>> {
    let total: usize = shape.iter().product();
    let mut dst = vec![Complex::zero(); total];
    permute_into(src, shape, perm, &mut dst);
    dst
}

/// Plain 2-D matrix transpose over flat buffers: `dst[c][r] = src[r][c]`.
pub fn transpose_into<T: Float>(
    src: &[Complex<T>],
    rows: usize,
    cols: usize,
    dst: &mut [Complex<T>],
) {
    permute_into(src, &[rows, cols], &[1, 0], dst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    fn seq(n: usize) -> Vec<C64> {
        (0..n).map(|i| C64::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn permutation_validation() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 0], 2));
        assert!(!is_permutation(&[0, 2], 2));
        assert!(!is_permutation(&[0], 2));
    }

    #[test]
    fn transpose_2x3() {
        let src = seq(6); // [[0,1,2],[3,4,5]]
        let mut dst = vec![C64::zero(); 6];
        transpose_into(&src, 2, 3, &mut dst);
        let expected: Vec<f64> = vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0];
        for (d, e) in dst.iter().zip(expected) {
            assert_eq!(d.re, e);
        }
    }

    #[test]
    fn identity_permutation_is_copy() {
        let src = seq(24);
        let out = permute(&src, &[2, 3, 4], &[0, 1, 2]);
        assert_eq!(out, src);
    }

    #[test]
    fn rank3_permutation() {
        // shape [2,3,4], permute to [4,2,3] via perm [2,0,1]
        let src = seq(24);
        let out = permute(&src, &[2, 3, 4], &[2, 0, 1]);
        // out[k][i][j] = src[i][j][k]
        let src_at = |i: usize, j: usize, k: usize| src[i * 12 + j * 4 + k];
        for k in 0..4 {
            for i in 0..2 {
                for j in 0..3 {
                    assert_eq!(out[k * 6 + i * 3 + j], src_at(i, j, k));
                }
            }
        }
    }

    #[test]
    fn double_permutation_roundtrips() {
        let src = seq(2 * 3 * 5);
        let perm = [1, 2, 0];
        let once = permute(&src, &[2, 3, 5], &perm);
        // Inverse of [1,2,0] is [2,0,1].
        let back = permute(&once, &[3, 5, 2], &[2, 0, 1]);
        assert_eq!(back, src);
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn invalid_permutation_panics() {
        let src = seq(4);
        let mut dst = vec![C64::zero(); 4];
        permute_into(&src, &[2, 2], &[0, 0], &mut dst);
    }

    #[test]
    fn swap_qubit_wires_of_unitary() {
        // Permuting tensor indices [out0,out1,in0,in1] with the wire swap
        // [1,0,3,2] on a CNOT(control=0) yields CNOT(control=1).
        let mut cnot = vec![C64::zero(); 16];
        for (r, c) in [(0usize, 0usize), (1, 1), (2, 3), (3, 2)] {
            cnot[r * 4 + c] = C64::one();
        }
        let swapped = permute(&cnot, &[2, 2, 2, 2], &[1, 0, 3, 2]);
        let mut expected = vec![C64::zero(); 16];
        for (r, c) in [(0usize, 0usize), (2, 2), (1, 3), (3, 1)] {
            expected[r * 4 + c] = C64::one();
        }
        assert_eq!(swapped, expected);
    }
}
