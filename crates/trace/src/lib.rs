//! # qudit-trace
//!
//! The observability substrate of the OpenQudit reproduction: hierarchical wall-clock
//! **spans**, deterministic monotone **counters** (plus last-write-wins **gauges**), and
//! a shareable **registry** with structured export — a JSON counter snapshot and a
//! Chrome `trace_event` file loadable in `about://tracing`/Perfetto.
//!
//! ## Determinism contract
//!
//! The two primitive families sit on opposite sides of the CI byte-diff line:
//!
//! - **Counters** are pure event counts — never derived from timing, scheduling, or
//!   iteration order. Every instrumentation site in the workspace records counters at
//!   a *deterministic join point* (after schedule-independent early-stop filtering),
//!   so two same-seed runs produce byte-identical [`TraceRegistry::counters_json`]
//!   snapshots and the snapshot joins the `report_synthesis` determinism diff.
//! - **Spans and gauges** carry wall-clock and environment-dependent values. They are
//!   exported separately ([`TraceRegistry::chrome_trace_json`]) and stripped from any
//!   pinned output under the [`omit_timing`] discipline.
//!
//! ## Handles
//!
//! [`TraceRegistry`] is a cheap cloneable handle; [`TraceRegistry::default`] is a
//! **disabled** no-op handle (so configs can carry one at zero cost), while
//! [`TraceRegistry::new`] creates an enabled recording instance. All clones of an
//! enabled registry share the same storage, which is how one registry threads from the
//! compiler driver down through search, instantiation, and the TNVM kernel dispatch.
//!
//! ```
//! use qudit_trace::TraceRegistry;
//!
//! let trace = TraceRegistry::new();
//! {
//!     let _pass = trace.span("synthesis");
//!     trace.add("search.nodes_expanded", 3);
//!     let _inner = trace.span("frontier");
//!     trace.incr("frontier.rounds");
//! }
//! assert_eq!(trace.counters()["search.nodes_expanded"], 3);
//! let events = trace.span_events();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[1].depth, 1); // "frontier" nested under "synthesis"
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

use parking_lot::Mutex;

/// One closed span: a named wall-clock interval on one thread, with its nesting
/// position (depth and parent index) as recorded by the per-thread span stacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (e.g. a pass name).
    pub name: String,
    /// Small dense thread id (assigned in first-use order per registry).
    pub tid: u64,
    /// Start offset from the registry's origin, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth on its thread at open time (0 = top level).
    pub depth: usize,
    /// Index into the event log of the enclosing span on the same thread, if any.
    pub parent: Option<usize>,
}

/// Per-thread bookkeeping: the dense thread id and the stack of open span indices.
#[derive(Debug, Default)]
struct ThreadState {
    tid: u64,
    stack: Vec<usize>,
}

/// The span log: events plus the per-thread stacks they are threaded through. One
/// mutex guards both so parent/depth assignment is consistent under contention.
#[derive(Debug, Default)]
struct SpanLog {
    events: Vec<SpanEvent>,
    threads: HashMap<ThreadId, ThreadState>,
    next_tid: u64,
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    spans: Mutex<SpanLog>,
}

/// A cheap cloneable handle to shared trace storage — or a disabled no-op.
///
/// See the crate docs for the determinism contract. Every recording method is a no-op
/// on a disabled handle, so instrumented code never branches on an `Option`.
#[derive(Debug, Clone, Default)]
pub struct TraceRegistry {
    inner: Option<Arc<Inner>>,
}

impl TraceRegistry {
    /// Creates a new enabled registry with empty storage.
    pub fn new() -> Self {
        TraceRegistry {
            inner: Some(Arc::new(Inner {
                // detlint: allow(wall-clock) — span timestamps are relative to this
                // origin and are dropped from artifacts by the omit-timing gate
                origin: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(SpanLog::default()),
            })),
        }
    }

    /// The disabled no-op handle (identical to [`Default`]).
    pub fn disabled() -> Self {
        TraceRegistry::default()
    }

    /// The process-wide registry (enabled, created on first use). Library code should
    /// prefer an explicitly threaded registry; this exists for tools that want one
    /// ambient sink (e.g. a future `qudit-serve` metrics endpoint).
    pub fn global() -> TraceRegistry {
        static GLOBAL: OnceLock<TraceRegistry> = OnceLock::new();
        GLOBAL.get_or_init(TraceRegistry::new).clone()
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `value` to the monotone counter `name` (creating it at zero).
    ///
    /// Counters are the *deterministic* primitive: callers must only record pure
    /// counts at schedule-independent join points.
    pub fn add(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            *inner.counters.lock().entry(name.to_string()).or_insert(0) += value;
        }
    }

    /// Increments the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    ///
    /// Gauges may carry nondeterministic values (sizes that depend on thread count,
    /// high-water marks); they are excluded from [`counters_json`](Self::counters_json)
    /// and therefore from pinned CI output.
    pub fn gauge(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.gauges.lock().insert(name.to_string(), value);
        }
    }

    /// Opens a span named `name`, closed when the returned guard drops.
    ///
    /// Nesting is tracked per thread: a span opened while another span from the same
    /// registry is live on the same thread records it as its parent.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { registry: None, index: 0 };
        };
        let start_us = inner.origin.elapsed().as_micros() as u64;
        let mut log = inner.spans.lock();
        let next_tid = log.next_tid;
        let state = log
            .threads
            .entry(std::thread::current().id())
            .or_insert_with(|| ThreadState { tid: next_tid, stack: Vec::new() });
        if state.tid == next_tid {
            log.next_tid += 1;
        }
        let state = log.threads.get_mut(&std::thread::current().id()).expect("just inserted");
        let tid = state.tid;
        let depth = state.stack.len();
        let parent = state.stack.last().copied();
        let index = log.events.len();
        log.threads.get_mut(&std::thread::current().id()).expect("just inserted").stack.push(index);
        log.events.push(SpanEvent {
            name: name.to_string(),
            tid,
            start_us,
            dur_us: 0,
            depth,
            parent,
        });
        Span { registry: self.inner.clone().map(|i| TraceRegistry { inner: Some(i) }), index }
    }

    /// Adds every counter of `other` into this registry.
    ///
    /// This is the process-level aggregation primitive: a long-lived service folds
    /// each compilation's per-request registry into one process-wide sink (the
    /// `qudit-serve` `/metrics` endpoint), so the sink's totals cover every request
    /// ever served while each request's own snapshot stays isolated. Only counters
    /// transfer — spans and gauges describe one registry's own timeline and stay put.
    pub fn absorb_counters(&self, other: &TraceRegistry) {
        if !self.enabled() {
            return;
        }
        for (name, value) in other.counters() {
            self.add(&name, value);
        }
    }

    /// A sorted copy of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            Some(inner) => inner.counters.lock().clone(),
            None => BTreeMap::new(),
        }
    }

    /// A sorted copy of all gauges.
    pub fn gauges(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            Some(inner) => inner.gauges.lock().clone(),
            None => BTreeMap::new(),
        }
    }

    /// All spans closed so far, in open order (open spans are omitted).
    pub fn span_events(&self) -> Vec<SpanEvent> {
        match &self.inner {
            Some(inner) => {
                let log = inner.spans.lock();
                let open: Vec<usize> =
                    // detlint: allow(unsorted-map-iter) — membership filter only; the
                    // result order comes from `log.events`, not from this walk
                    log.threads.values().flat_map(|s| s.stack.iter().copied()).collect();
                log.events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !open.contains(i))
                    .map(|(_, e)| e.clone())
                    .collect()
            }
            None => Vec::new(),
        }
    }

    /// The deterministic counter snapshot as a compact JSON object (sorted keys).
    ///
    /// This string is byte-identical across same-seed runs and is the form folded
    /// into the CI determinism diff. Gauges and spans are deliberately excluded.
    pub fn counters_json(&self) -> String {
        counters_to_json(&self.counters())
    }

    /// The span log in Chrome `trace_event` JSON array format ("X" complete events),
    /// loadable in `about://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("[");
        for (i, event) in self.span_events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": {}}}",
                json_escape(&event.name),
                event.start_us,
                event.dur_us,
                event.tid
            ));
        }
        out.push_str("\n]");
        out
    }
}

/// Renders a counter map as a compact JSON object with sorted keys.
pub fn counters_to_json(counters: &BTreeMap<String, u64>) -> String {
    let body: Vec<String> =
        counters.iter().map(|(k, v)| format!("\"{}\": {v}", json_escape(k))).collect();
    format!("{{{}}}", body.join(", "))
}

/// Minimal JSON string escaping (names are plain identifiers in practice).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// RAII guard returned by [`TraceRegistry::span`]; closes the span on drop.
#[must_use = "a span records its duration when the guard drops"]
#[derive(Debug)]
pub struct Span {
    registry: Option<TraceRegistry>,
    index: usize,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(registry) = &self.registry else { return };
        let Some(inner) = &registry.inner else { return };
        let end_us = inner.origin.elapsed().as_micros() as u64;
        let mut log = inner.spans.lock();
        if let Some(state) = log.threads.get_mut(&std::thread::current().id()) {
            if state.stack.last() == Some(&self.index) {
                state.stack.pop();
            } else {
                // Out-of-order drop (e.g. a guard moved across an early return);
                // remove it from wherever it sits so nesting stays well-formed.
                state.stack.retain(|&i| i != self.index);
            }
        }
        if let Some(event) = log.events.get_mut(self.index) {
            event.dur_us = end_us.saturating_sub(event.start_us);
        }
    }
}

/// Whether pinned output should strip all nondeterministic (timing/span/gauge)
/// fields: the `OPENQUDIT_SYNTH_OMIT_TIMING` discipline, centralized here so every
/// report gates on one parse of one env var.
pub fn omit_timing() -> bool {
    std::env::var("OPENQUDIT_SYNTH_OMIT_TIMING")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

/// Name of the timing-omission environment variable (for docs and reports).
pub const OMIT_TIMING_ENV_VAR: &str = "OPENQUDIT_SYNTH_OMIT_TIMING";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let trace = TraceRegistry::disabled();
        assert!(!trace.enabled());
        trace.add("x", 5);
        trace.gauge("g", 7);
        let _span = trace.span("nothing");
        assert!(trace.counters().is_empty());
        assert!(trace.gauges().is_empty());
        assert!(trace.span_events().is_empty());
        assert_eq!(trace.counters_json(), "{}");
        assert_eq!(trace.chrome_trace_json(), "[\n]");
    }

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let trace = TraceRegistry::new();
        trace.add("b.two", 2);
        trace.incr("a.one");
        trace.incr("a.one");
        assert_eq!(trace.counters_json(), "{\"a.one\": 2, \"b.two\": 2}");
    }

    #[test]
    fn clones_share_storage() {
        let trace = TraceRegistry::new();
        let clone = trace.clone();
        clone.add("shared", 1);
        assert_eq!(trace.counters()["shared"], 1);
    }

    #[test]
    fn absorb_counters_aggregates_across_registries() {
        let sink = TraceRegistry::new();
        sink.add("serve.requests", 1);
        let request_a = TraceRegistry::new();
        request_a.add("search.nodes_expanded", 5);
        request_a.add("cache.misses", 2);
        let request_b = TraceRegistry::new();
        request_b.add("search.nodes_expanded", 3);
        sink.absorb_counters(&request_a);
        sink.absorb_counters(&request_b);
        let counters = sink.counters();
        assert_eq!(counters["search.nodes_expanded"], 8);
        assert_eq!(counters["cache.misses"], 2);
        assert_eq!(counters["serve.requests"], 1);
        // Source registries are untouched, and disabled sinks stay no-ops.
        assert_eq!(request_a.counters()["search.nodes_expanded"], 5);
        let disabled = TraceRegistry::disabled();
        disabled.absorb_counters(&request_a);
        assert!(disabled.counters().is_empty());
    }

    #[test]
    fn gauges_are_last_write_wins_and_separate_from_counters() {
        let trace = TraceRegistry::new();
        trace.gauge("cache.entries", 4);
        trace.gauge("cache.entries", 9);
        assert_eq!(trace.gauges()["cache.entries"], 9);
        assert!(!trace.counters_json().contains("cache.entries"));
    }

    #[test]
    fn spans_nest_per_thread() {
        let trace = TraceRegistry::new();
        {
            let _outer = trace.span("outer");
            {
                let _inner = trace.span("inner");
            }
            let _sibling = trace.span("sibling");
        }
        let events = trace.span_events();
        assert_eq!(events.len(), 3);
        let outer = events.iter().position(|e| e.name == "outer").unwrap();
        let inner = &events[events.iter().position(|e| e.name == "inner").unwrap()];
        let sibling = &events[events.iter().position(|e| e.name == "sibling").unwrap()];
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent, Some(outer));
        assert_eq!(sibling.depth, 1);
        assert_eq!(sibling.parent, Some(outer));
        assert_eq!(events[outer].depth, 0);
        assert_eq!(events[outer].parent, None);
    }

    #[test]
    fn open_spans_are_excluded_from_the_log() {
        let trace = TraceRegistry::new();
        let _open = trace.span("still-open");
        {
            let _closed = trace.span("closed");
        }
        let events = trace.span_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "closed");
    }

    #[test]
    fn threads_get_distinct_tids() {
        let trace = TraceRegistry::new();
        {
            let _main = trace.span("main-thread");
        }
        let clone = trace.clone();
        std::thread::spawn(move || {
            let _worker = clone.span("worker-thread");
        })
        .join()
        .unwrap();
        let events = trace.span_events();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let trace = TraceRegistry::new();
        {
            let _s = trace.span("pass \"quoted\"");
        }
        let json = trace.chrome_trace_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("pass \\\"quoted\\\""));
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let trace = TraceRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let trace = trace.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        trace.incr("hits");
                    }
                });
            }
        });
        assert_eq!(trace.counters()["hits"], 4000);
    }
}
