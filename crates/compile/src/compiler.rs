//! The [`Compiler`]: an ordered pipeline of [`Pass`]es sharing one expression cache.

use std::collections::BTreeMap;
use std::time::Instant;

use qudit_analyze::{OptimizeLevel, VerifyLevel};
use qudit_qvm::ExpressionCache;
use qudit_synth::{BackendKind, SynthesisResult};
use qudit_trace::TraceRegistry;

use crate::cancel::CancelToken;
use crate::error::CompileError;
use crate::optimize::optimize_task;
use crate::partition::PartitionPass;
use crate::pass::{Pass, PassContext, PassTiming};
use crate::passes::{FoldPass, RefinePass, SynthesisPass};
use crate::task::{CompilationTask, PassData};
use crate::verify::verify_task;

/// The outcome of one [`Compiler::compile`] run: the final circuit, per-pass
/// wall-clock timings, and the task's [`PassData`] blackboard (per-pass metrics).
#[derive(Debug, Clone)]
pub struct CompilationReport {
    /// The compiled circuit with its instantiated parameters and quality metrics.
    pub result: SynthesisResult,
    /// Wall-clock time of every pass, in pipeline order.
    pub timings: Vec<PassTiming>,
    /// The blackboard as the last pass left it (metrics keyed `"<pass>.<metric>"`).
    pub data: PassData,
    /// Final snapshot of the compilation's deterministic counters (same seed, same
    /// machine-independent counts — see `qudit-trace` for the determinism contract).
    /// `tnvm.*` keys are execution-tier-variant; everything else is tier-invariant.
    pub metrics: BTreeMap<String, u64>,
    /// The observability registry the compilation recorded into: counters (the
    /// `metrics` snapshot above), gauges, and hierarchical spans exportable as a
    /// Chrome `trace_event` profile via [`TraceRegistry::chrome_trace_json`].
    pub trace: TraceRegistry,
}

/// An ordered, composable compilation pipeline.
///
/// The compiler owns the [`ExpressionCache`] its passes compile through (by default
/// the process-wide [`qudit_qvm::global_cache`], so independent compilations amortize
/// JIT work) and an optional worker-thread budget, and executes its passes in order
/// over a [`CompilationTask`]. Each pass's wall-clock time and blackboard metrics are
/// collected into a [`CompilationReport`].
///
/// ```
/// use qudit_circuit::gates;
/// use qudit_compile::{CompilationTask, Compiler};
/// use qudit_qvm::ExpressionCache;
///
/// let target = gates::cnot().to_matrix::<f64>(&[])?;
/// let compiler = Compiler::with_cache(ExpressionCache::new()).default_passes();
/// let report = compiler.compile(CompilationTask::with_radices(target, vec![2, 2]))?;
/// assert!(report.result.success);
/// assert_eq!(report.timings.len(), 3); // synthesis, refine, fold
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Compiler {
    cache: ExpressionCache,
    threads: usize,
    backend: Option<BackendKind>,
    trace: Option<TraceRegistry>,
    verify: VerifyLevel,
    optimize: OptimizeLevel,
    passes: Vec<Box<dyn Pass>>,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

impl Compiler {
    /// An empty pipeline over the process-wide shared cache
    /// ([`qudit_qvm::global_cache`]). Add passes with [`Compiler::add_pass`] or the
    /// [`Compiler::default_passes`] / [`Compiler::partitioned_passes`] shorthands.
    pub fn new() -> Self {
        Compiler::with_cache(qudit_qvm::global_cache())
    }

    /// An empty pipeline over an explicit cache (cloning an [`ExpressionCache`]
    /// shares its storage, so several compilers can deliberately share one).
    ///
    /// The interleaved verification level defaults to the `OPENQUDIT_VERIFY`
    /// environment variable ([`VerifyLevel::from_env`]): off unless set, so release
    /// binaries pay nothing while CI exports `full` — override per compiler with
    /// [`Compiler::verify`].
    pub fn with_cache(cache: ExpressionCache) -> Self {
        Compiler {
            cache,
            threads: 0,
            backend: None,
            trace: None,
            verify: VerifyLevel::from_env(),
            optimize: OptimizeLevel::from_env(),
            passes: Vec::new(),
        }
    }

    /// The standard pipeline — `SynthesisPass → RefinePass → FoldPass` — over the
    /// process-wide cache. At the same seed this reproduces the deprecated
    /// `qudit_synth::synthesize_with_cache` byte for byte (pinned by the integration
    /// tests).
    pub fn default_pipeline() -> Self {
        Compiler::new().default_passes()
    }

    /// The width-aware pipeline — `PartitionPass → SynthesisPass → RefinePass →
    /// FoldPass` — over the process-wide cache. Targets wider than the partition
    /// threshold are split along a coupling cut and compiled partition-first; narrow
    /// targets fall through to the standard pipeline unchanged.
    pub fn partitioned_pipeline() -> Self {
        Compiler::new().partitioned_passes()
    }

    /// Appends the standard `SynthesisPass → RefinePass → FoldPass` sequence.
    #[must_use]
    pub fn default_passes(self) -> Self {
        self.add_pass(SynthesisPass).add_pass(RefinePass::default()).add_pass(FoldPass::default())
    }

    /// Appends `PartitionPass` followed by the standard sequence.
    #[must_use]
    pub fn partitioned_passes(self) -> Self {
        self.add_pass(PartitionPass::default()).default_passes()
    }

    /// Appends a pass to the pipeline (builder style).
    #[must_use]
    pub fn add_pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Overrides the worker-thread budget of every pass (`0`, the default, lets each
    /// stage resolve the machine's available parallelism). Applied by writing the
    /// task configuration's thread fields before the first pass runs.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the TNVM execution tier of every pass (by default each task keeps
    /// the tier its `SynthesisConfig` carries — the process-wide
    /// `OPENQUDIT_TNVM_BACKEND` default unless set explicitly). Applied by writing the
    /// task configuration's backend fields before the first pass runs.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Overrides the observability registry compilations record into. By default
    /// every [`Compiler::compile`] call creates a fresh enabled registry (so the
    /// report's counters describe exactly one compilation); installing a registry
    /// here makes all compilations share it — the partition pass threads the outer
    /// registry into its nested per-block pipelines this way.
    #[must_use]
    pub fn trace(mut self, trace: TraceRegistry) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Sets the interleaved static-verification level. At any enabled level the
    /// compiler re-runs the `qudit-analyze` verifier over the circuit-in-progress
    /// after every pass (see [`crate::verify::verify_task`]), failing the
    /// compilation with [`CompileError::Verify`] — naming the pass and the offending
    /// instruction — on the first rejected artifact. Verification adds no
    /// [`PassTiming`] entries; what it checked lands in the `analyze.*` counters.
    #[must_use]
    pub fn verify(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// The interleaved static-verification level compilations run under.
    pub fn verify_level(&self) -> VerifyLevel {
        self.verify
    }

    /// Sets the verified bytecode-optimization level, mirroring
    /// [`Compiler::verify`]. At any enabled level the compiler runs the
    /// translation-validated optimizer (`qudit-analyze`: DCE + CSE, plus buffer
    /// coalescing at [`OptimizeLevel::Full`]) over the final circuit's TNVM
    /// bytecode after the last pass (see [`crate::optimize::optimize_task`]).
    /// The default comes from the `OPENQUDIT_OPTIMIZE` environment variable
    /// ([`OptimizeLevel::from_env`]); a task's
    /// [`CompilationTask::optimize`](crate::CompilationTask) field overrides it
    /// per compilation.
    #[must_use]
    pub fn optimize(mut self, level: OptimizeLevel) -> Self {
        self.optimize = level;
        self
    }

    /// The verified bytecode-optimization level compilations run under.
    pub fn optimize_level(&self) -> OptimizeLevel {
        self.optimize
    }

    /// The compiler's shared expression cache.
    pub fn cache(&self) -> &ExpressionCache {
        &self.cache
    }

    /// The pipeline's pass names, in execution order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order over `task` and returns the report.
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure, and returns [`CompileError::NoResult`] when
    /// the pipeline finishes without any pass having produced a circuit.
    pub fn compile(&self, task: CompilationTask) -> Result<CompilationReport, CompileError> {
        self.compile_with_cancel(task, &CancelToken::none())
    }

    /// [`Compiler::compile`] under a cooperative [`CancelToken`].
    ///
    /// The token is checked at every pass boundary (before the first pass and after
    /// each one), and handed to each pass through
    /// [`PassContext::cancel`](crate::PassContext::cancel) so long passes can poll
    /// it at their own internal checkpoints. Cancellation is deliberate and typed:
    /// the compilation stops with [`CompileError::Cancelled`] naming the checkpoint
    /// that observed it — this is how a serving front-end bounds a request's
    /// latency without killing the worker running it.
    ///
    /// # Errors
    ///
    /// Everything [`Compiler::compile`] returns, plus [`CompileError::Cancelled`]
    /// once `cancel` reports cancellation or an expired deadline.
    pub fn compile_with_cancel(
        &self,
        task: CompilationTask,
        cancel: &CancelToken,
    ) -> Result<CompilationReport, CompileError> {
        let mut task = task;
        if self.threads != 0 {
            task.config.threads = self.threads;
            task.config.instantiate.threads = self.threads;
        }
        if let Some(backend) = self.backend {
            task.config.backend = backend;
            task.config.instantiate.backend = backend;
        }
        // Install the observability registry everywhere the pipeline can reach:
        // the synthesis config (search, frontier, refine derive from it), the
        // instantiate config (direct instantiation paths), and each PassContext.
        // (`TraceRegistry::default()` is the *disabled* handle — the fallback must
        // be an enabled `new()` so every compile records a snapshot.)
        let trace = match &self.trace {
            Some(trace) => trace.clone(),
            None => TraceRegistry::new(),
        };
        task.config.trace = trace.clone();
        task.config.instantiate.trace = trace.clone();
        let backend = task.config.backend;
        let mut timings = Vec::with_capacity(self.passes.len());
        // The boundary checkpoints: cancellation observed before any pass reports
        // "start"; between passes it reports the last completed pass.
        let mut last_checkpoint = "start".to_string();
        for pass in &self.passes {
            cancel.check().map_err(|reason| CompileError::Cancelled {
                after: last_checkpoint.clone(),
                reason,
            })?;
            let mut ctx = PassContext::new(&self.cache)
                .with_backend(backend)
                .with_trace(trace.clone())
                .with_cancel(cancel.clone());
            // detlint: allow(wall-clock) — pass timings land only in the report's
            // timing block, which the determinism diff scrubs via the omit-timing gate
            let started = Instant::now();
            let span = trace.span(pass.name());
            pass.run(&mut task, &mut ctx)?;
            drop(span);
            timings.push(PassTiming {
                pass: pass.name().to_string(),
                duration: started.elapsed(),
                backend: backend.name(),
            });
            // Interleaved verification: every pass output is untrusted until the
            // static verifier accepts it. Deliberately outside the timed region and
            // without a timings entry, so enabling it never shifts pass timings.
            if self.verify.is_enabled() {
                let vspan = trace.span("verify");
                let verdict = verify_task(&task, self.verify, &trace);
                drop(vspan);
                verdict.map_err(|violation| CompileError::Verify {
                    after: pass.name().to_string(),
                    violation,
                })?;
            }
            last_checkpoint = pass.name().to_string();
        }
        // Verified bytecode optimization runs once, after the whole pipeline (and
        // its verification): the artifact worth optimizing is the final circuit's
        // bytecode. Untimed, like verification, so enabling it never shifts pass
        // timings; a rejected candidate is a counter bump, never a failure.
        if self.optimize.is_enabled() || task.optimize.is_some() {
            let ospan = trace.span("optimize");
            optimize_task(&mut task, self.optimize, &self.cache, &trace)?;
            drop(ospan);
        }
        // Cache occupancy is a gauge, not a counter: under the process-wide shared
        // cache it depends on what compiled before, so it stays out of the
        // deterministic counter snapshot.
        trace.gauge("cache.entries", self.cache.stats().entries as u64);
        let result = task.result.ok_or(CompileError::NoResult)?;
        let metrics = trace.counters();
        Ok(CompilationReport { result, timings, data: task.data, metrics, trace })
    }
}

impl std::fmt::Debug for Compiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiler")
            .field("threads", &self.threads)
            .field("verify", &self.verify)
            .field("optimize", &self.optimize)
            .field("passes", &self.pass_names())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::gates;
    use qudit_synth::SynthesisConfig;

    #[test]
    fn empty_pipeline_reports_no_result() {
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let task = CompilationTask::new(target, SynthesisConfig::qubits(2));
        let err = Compiler::with_cache(ExpressionCache::new()).compile(task).unwrap_err();
        assert_eq!(err, CompileError::NoResult);
    }

    #[test]
    fn default_pipeline_compiles_a_cnot_with_timings_and_metrics() {
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let compiler = Compiler::with_cache(ExpressionCache::new()).default_passes();
        assert_eq!(compiler.pass_names(), vec!["synthesis", "refine", "fold"]);
        let report =
            compiler.compile(CompilationTask::new(target, SynthesisConfig::qubits(2))).unwrap();
        assert!(report.result.success, "infidelity {}", report.result.infidelity);
        assert_eq!(report.result.blocks, vec![(0, 1)]);
        assert_eq!(report.timings.len(), 3);
        assert!(report.data.get_usize("synthesis.nodes_expanded").unwrap() >= 2);
        assert!(report.data.get_usize("refine.blocks_deleted").is_some());
    }

    #[test]
    fn reports_carry_a_deterministic_metrics_snapshot() {
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let run = || {
            Compiler::with_cache(ExpressionCache::new())
                .default_passes()
                .compile(CompilationTask::new(target.clone(), SynthesisConfig::qubits(2)))
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert!(a.metrics.get("search.nodes_expanded").copied().unwrap_or(0) >= 2);
        assert!(a.metrics.contains_key("lm.iterations"));
        assert!(a.metrics.contains_key("instantiate.calls"));
        assert!(a.metrics.contains_key("cache.misses"), "{:?}", a.metrics);
        assert!(a.metrics.keys().any(|k| k.starts_with("tnvm.dispatch.")), "{:?}", a.metrics);
        // Same seed, fresh caches: the counter snapshot is byte-identical.
        assert_eq!(a.trace.counters_json(), b.trace.counters_json());
        // Spans cover every pass, and the export is non-empty valid-looking JSON.
        let names: Vec<String> = a.trace.span_events().iter().map(|s| s.name.clone()).collect();
        for pass in ["synthesis", "refine", "fold"] {
            assert!(names.iter().any(|n| n == pass), "missing span {pass} in {names:?}");
        }
        let chrome = a.trace.chrome_trace_json();
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
        assert!(chrome.contains("\"ph\": \"X\""));
    }

    #[test]
    fn optimize_knob_runs_the_verified_optimizer_and_records_outcomes() {
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let report = Compiler::with_cache(ExpressionCache::new())
            .default_passes()
            .optimize(OptimizeLevel::Full)
            .compile(CompilationTask::new(target.clone(), SynthesisConfig::qubits(2)))
            .unwrap();
        assert_eq!(report.data.get("optimize.level").unwrap().to_string(), "full");
        assert!(report.data.get_usize("optimize.instructions_before").is_some());
        assert!(report.data.get("optimize.rejected").is_none(), "{:?}", report.data);
        // The rejection counter exists (at zero) whenever the optimizer ran.
        assert_eq!(report.metrics.get("analyze.optimize.rejected"), Some(&0));
        assert_eq!(report.metrics.get("analyze.optimize.programs"), Some(&1));
        // A per-task override beats the compiler's (off) level.
        let mut task = CompilationTask::new(target, SynthesisConfig::qubits(2));
        task.optimize = Some(OptimizeLevel::Instructions);
        let report =
            Compiler::with_cache(ExpressionCache::new()).default_passes().compile(task).unwrap();
        assert_eq!(report.data.get("optimize.level").unwrap().to_string(), "instructions");
    }

    #[test]
    fn pre_cancelled_token_aborts_at_the_start_checkpoint() {
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let task = CompilationTask::new(target, SynthesisConfig::qubits(2));
        let token = CancelToken::new();
        token.cancel();
        let err = Compiler::with_cache(ExpressionCache::new())
            .default_passes()
            .compile_with_cancel(task, &token)
            .unwrap_err();
        assert_eq!(
            err,
            CompileError::Cancelled {
                after: "start".to_string(),
                reason: crate::cancel::CancelReason::Cancelled
            }
        );
    }

    #[test]
    fn expired_deadline_aborts_between_passes_naming_the_last_pass() {
        // A pass that cancels the token mid-pipeline: the boundary check before the
        // *next* pass observes it and names the last completed pass as checkpoint.
        struct CancelAfterMe;
        impl crate::Pass for CancelAfterMe {
            fn name(&self) -> &str {
                "cancel-after-me"
            }
            fn run(
                &self,
                _task: &mut CompilationTask,
                ctx: &mut crate::PassContext<'_>,
            ) -> Result<(), CompileError> {
                ctx.cancel().cancel();
                Ok(())
            }
        }
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let task = CompilationTask::new(target, SynthesisConfig::qubits(2));
        let token = CancelToken::new();
        let err = Compiler::with_cache(ExpressionCache::new())
            .add_pass(CancelAfterMe)
            .add_pass(crate::SynthesisPass)
            .compile_with_cancel(task, &token)
            .unwrap_err();
        assert_eq!(
            err,
            CompileError::Cancelled {
                after: "cancel-after-me".to_string(),
                reason: crate::cancel::CancelReason::Cancelled
            }
        );
    }

    #[test]
    fn zero_budget_deadline_reports_deadline_exceeded() {
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let task = CompilationTask::new(target, SynthesisConfig::qubits(2));
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let err = Compiler::with_cache(ExpressionCache::new())
            .default_passes()
            .compile_with_cancel(task, &token)
            .unwrap_err();
        assert_eq!(
            err,
            CompileError::Cancelled {
                after: "start".to_string(),
                reason: crate::cancel::CancelReason::DeadlineExceeded
            }
        );
    }

    #[test]
    fn thread_override_reaches_the_task_config() {
        // A threads(1) compiler forces the serial path; the result must still be
        // byte-identical to the parallel default (the determinism guarantee).
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let cache = ExpressionCache::new();
        let parallel = Compiler::with_cache(cache.clone())
            .default_passes()
            .compile(CompilationTask::new(target.clone(), SynthesisConfig::qubits(2)))
            .unwrap();
        let serial = Compiler::with_cache(cache)
            .threads(1)
            .default_passes()
            .compile(CompilationTask::new(target, SynthesisConfig::qubits(2)))
            .unwrap();
        assert_eq!(parallel.result.blocks, serial.result.blocks);
        assert_eq!(parallel.result.infidelity.to_bits(), serial.result.infidelity.to_bits());
        let a: Vec<u64> = parallel.result.params.iter().map(|p| p.to_bits()).collect();
        let b: Vec<u64> = serial.result.params.iter().map(|p| p.to_bits()).collect();
        assert_eq!(a, b);
    }
}
